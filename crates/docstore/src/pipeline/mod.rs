//! Aggregation-pipeline AST and JSON parsing.

pub mod exec;
pub mod expr;
pub mod optimizer;

use crate::error::{DocError, Result};
use expr::MongoExpr;
use polyframe_datamodel::{parse_json, Value};

/// `$group` `_id` specification.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupId {
    /// `"_id": {}` — one group for the whole input.
    Empty,
    /// `"_id": {"k": "$k", ...}` — grouped by key document.
    Keys(Vec<(String, MongoExpr)>),
}

/// `$group` accumulators.
#[derive(Debug, Clone, PartialEq)]
pub enum Accum {
    /// `{"$sum": 1}` or `{"$sum": "$f"}`
    Sum(MongoExpr),
    /// `{"$min": "$f"}`
    Min(MongoExpr),
    /// `{"$max": "$f"}`
    Max(MongoExpr),
    /// `{"$avg": "$f"}`
    Avg(MongoExpr),
    /// `{"$stdDevPop": "$f"}`
    StdDevPop(MongoExpr),
    /// `{"$count": "$f"}` — counts documents where the value is present.
    Count(MongoExpr),
}

/// One `$project` entry (order preserved).
#[derive(Debug, Clone, PartialEq)]
pub enum ProjectItem {
    /// `"f": 1`
    Include(String),
    /// `"f": 0` (only `_id` exclusion is meaningful in this subset)
    Exclude(String),
    /// `"alias": {expr}`
    Computed(String, MongoExpr),
}

/// A pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub enum Stage {
    /// `{"$match": {}}` (None) or a predicate.
    Match(Option<MongoExpr>),
    /// `{"$project": {...}}`
    Project(Vec<ProjectItem>),
    /// `{"$addFields": {...}}`
    AddFields(Vec<(String, MongoExpr)>),
    /// `{"$group": {"_id": ..., ...accs}}`
    Group {
        /// Group key specification.
        id: GroupId,
        /// Output accumulators `(name, accumulator)`.
        accs: Vec<(String, Accum)>,
    },
    /// `{"$sort": {"f": 1 | -1}}`
    Sort(Vec<(String, bool)>),
    /// `{"$limit": n}`
    Limit(u64),
    /// `{"$count": "name"}` — NB: emits zero documents on empty input,
    /// exactly like MongoDB.
    Count(String),
    /// `{"$lookup": {...}}` with `let` + sub-pipeline.
    Lookup {
        /// Source collection of the inner side.
        from: String,
        /// Output array field.
        as_field: String,
        /// `let` variable bindings (evaluated per outer document).
        let_vars: Vec<(String, MongoExpr)>,
        /// Inner pipeline (may reference `$$var`).
        pipeline: Vec<Stage>,
    },
    /// `{"$unwind": {"path": "$f", "preserveNullAndEmptyArrays": bool}}`
    Unwind {
        /// Array field path (without the `$`).
        path: String,
        /// Keep documents whose array is empty/missing.
        preserve_empty: bool,
    },
    /// `{"$out": "collection"}`
    Out(String),
}

/// Parse a JSON pipeline text (`[stage, stage, ...]`).
pub fn parse_pipeline(text: &str) -> Result<Vec<Stage>> {
    let v = parse_json(text).map_err(|e| DocError::Pipeline(e.to_string()))?;
    let arr = v
        .as_array()
        .ok_or_else(|| DocError::Pipeline("pipeline must be a JSON array".to_string()))?;
    arr.iter().map(parse_stage).collect()
}

/// Parse one stage document.
pub fn parse_stage(v: &Value) -> Result<Stage> {
    let obj = v
        .as_obj()
        .ok_or_else(|| DocError::Pipeline("stage must be an object".to_string()))?;
    if obj.len() != 1 {
        return Err(DocError::Pipeline(
            "stage must have exactly one operator".to_string(),
        ));
    }
    let (op, body) = obj.iter().next().unwrap();
    match op {
        "$match" => {
            let m = body
                .as_obj()
                .ok_or_else(|| DocError::Pipeline("$match takes an object".to_string()))?;
            if m.is_empty() {
                return Ok(Stage::Match(None));
            }
            // `$expr` or direct field equality; multiple fields AND together.
            let mut conjuncts = Vec::new();
            for (k, val) in m.iter() {
                if k == "$expr" {
                    conjuncts.push(expr::parse_expr(val)?);
                } else {
                    conjuncts.push(MongoExpr::Cmp(
                        expr::CmpOp::Eq,
                        Box::new(MongoExpr::FieldRef(split_path(k))),
                        Box::new(MongoExpr::Lit(val.clone())),
                    ));
                }
            }
            let pred = conjuncts
                .into_iter()
                .reduce(|a, b| MongoExpr::And(vec![a, b]))
                .unwrap();
            Ok(Stage::Match(Some(pred)))
        }
        "$project" => {
            let m = body
                .as_obj()
                .ok_or_else(|| DocError::Pipeline("$project takes an object".to_string()))?;
            let mut items = Vec::new();
            for (k, val) in m.iter() {
                match val {
                    Value::Int(1) | Value::Bool(true) => {
                        items.push(ProjectItem::Include(k.to_string()))
                    }
                    Value::Int(0) | Value::Bool(false) => {
                        items.push(ProjectItem::Exclude(k.to_string()))
                    }
                    other => items.push(ProjectItem::Computed(
                        k.to_string(),
                        expr::parse_expr(other)?,
                    )),
                }
            }
            Ok(Stage::Project(items))
        }
        "$addFields" | "$set" => {
            let m = body
                .as_obj()
                .ok_or_else(|| DocError::Pipeline("$addFields takes an object".to_string()))?;
            let mut fields = Vec::new();
            for (k, val) in m.iter() {
                fields.push((k.to_string(), expr::parse_expr(val)?));
            }
            Ok(Stage::AddFields(fields))
        }
        "$group" => {
            let m = body
                .as_obj()
                .ok_or_else(|| DocError::Pipeline("$group takes an object".to_string()))?;
            let id_val = m
                .get("_id")
                .ok_or_else(|| DocError::Pipeline("$group requires _id".to_string()))?;
            let id = match id_val {
                Value::Obj(keys) if keys.is_empty() => GroupId::Empty,
                Value::Null => GroupId::Empty,
                Value::Obj(keys) => {
                    let mut out = Vec::new();
                    for (k, v) in keys.iter() {
                        out.push((k.to_string(), expr::parse_expr(v)?));
                    }
                    GroupId::Keys(out)
                }
                other => {
                    return Err(DocError::Pipeline(format!(
                        "unsupported $group _id: {other}"
                    )))
                }
            };
            let mut accs = Vec::new();
            for (k, v) in m.iter() {
                if k == "_id" {
                    continue;
                }
                accs.push((k.to_string(), parse_accum(v)?));
            }
            Ok(Stage::Group { id, accs })
        }
        "$sort" => {
            let m = body
                .as_obj()
                .ok_or_else(|| DocError::Pipeline("$sort takes an object".to_string()))?;
            let mut keys = Vec::new();
            for (k, v) in m.iter() {
                match v.as_i64() {
                    Some(1) => keys.push((k.to_string(), false)),
                    Some(-1) => keys.push((k.to_string(), true)),
                    _ => {
                        return Err(DocError::Pipeline(
                            "$sort directions must be 1 or -1".to_string(),
                        ))
                    }
                }
            }
            Ok(Stage::Sort(keys))
        }
        "$limit" => match body.as_i64() {
            Some(n) if n >= 0 => Ok(Stage::Limit(n as u64)),
            _ => Err(DocError::Pipeline(
                "$limit takes a non-negative integer".to_string(),
            )),
        },
        "$count" => match body.as_str() {
            Some(name) => Ok(Stage::Count(name.to_string())),
            None => Err(DocError::Pipeline("$count takes a field name".to_string())),
        },
        "$lookup" => {
            let m = body
                .as_obj()
                .ok_or_else(|| DocError::Pipeline("$lookup takes an object".to_string()))?;
            let from = m
                .get("from")
                .and_then(Value::as_str)
                .ok_or_else(|| DocError::Pipeline("$lookup requires from".to_string()))?
                .to_string();
            let as_field = m
                .get("as")
                .and_then(Value::as_str)
                .ok_or_else(|| DocError::Pipeline("$lookup requires as".to_string()))?
                .to_string();
            let mut let_vars = Vec::new();
            if let Some(Value::Obj(lets)) = m.get("let") {
                for (k, v) in lets.iter() {
                    let_vars.push((k.to_string(), expr::parse_expr(v)?));
                }
            }
            let pipeline = match m.get("pipeline") {
                Some(Value::Array(stages)) => {
                    stages.iter().map(parse_stage).collect::<Result<Vec<_>>>()?
                }
                _ => Vec::new(),
            };
            Ok(Stage::Lookup {
                from,
                as_field,
                let_vars,
                pipeline,
            })
        }
        "$unwind" => match body {
            Value::Str(path) => Ok(Stage::Unwind {
                path: strip_dollar(path)?,
                preserve_empty: false,
            }),
            Value::Obj(m) => {
                let path = m
                    .get("path")
                    .and_then(Value::as_str)
                    .ok_or_else(|| DocError::Pipeline("$unwind requires path".to_string()))?;
                let preserve = m
                    .get("preserveNullAndEmptyArrays")
                    .and_then(Value::as_bool)
                    .unwrap_or(false);
                Ok(Stage::Unwind {
                    path: strip_dollar(path)?,
                    preserve_empty: preserve,
                })
            }
            _ => Err(DocError::Pipeline("bad $unwind".to_string())),
        },
        "$out" => match body.as_str() {
            Some(name) => Ok(Stage::Out(name.to_string())),
            None => Err(DocError::Pipeline(
                "$out takes a collection name".to_string(),
            )),
        },
        other => Err(DocError::Pipeline(format!("unsupported stage {other}"))),
    }
}

fn parse_accum(v: &Value) -> Result<Accum> {
    let obj = v
        .as_obj()
        .ok_or_else(|| DocError::Pipeline("accumulator must be an object".to_string()))?;
    if obj.len() != 1 {
        return Err(DocError::Pipeline(
            "accumulator must have one operator".to_string(),
        ));
    }
    let (op, body) = obj.iter().next().unwrap();
    let e = expr::parse_expr(body)?;
    match op {
        "$sum" => Ok(Accum::Sum(e)),
        "$min" => Ok(Accum::Min(e)),
        "$max" => Ok(Accum::Max(e)),
        "$avg" => Ok(Accum::Avg(e)),
        "$stdDevPop" => Ok(Accum::StdDevPop(e)),
        "$count" => Ok(Accum::Count(e)),
        other => Err(DocError::Pipeline(format!(
            "unsupported accumulator {other}"
        ))),
    }
}

pub(crate) fn split_path(s: &str) -> Vec<String> {
    s.split('.').map(str::to_string).collect()
}

fn strip_dollar(s: &str) -> Result<String> {
    s.strip_prefix('$')
        .map(str::to_string)
        .ok_or_else(|| DocError::Pipeline(format!("expected $-prefixed path, got {s}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use expr::CmpOp;

    #[test]
    fn parses_the_papers_figure4_pipeline() {
        let stages = parse_pipeline(
            r#"[
                {"$match":{}},
                {"$match":{"$expr":{"$eq":["$lang","en"]}}},
                {"$project":{"name": 1, "address": 1}},
                {"$project":{"_id": 0}},
                {"$limit":10}
            ]"#,
        )
        .unwrap();
        assert_eq!(stages.len(), 5);
        assert_eq!(stages[0], Stage::Match(None));
        assert!(matches!(
            &stages[1],
            Stage::Match(Some(MongoExpr::Cmp(CmpOp::Eq, _, _)))
        ));
        assert_eq!(
            stages[2],
            Stage::Project(vec![
                ProjectItem::Include("name".into()),
                ProjectItem::Include("address".into())
            ])
        );
        assert_eq!(
            stages[3],
            Stage::Project(vec![ProjectItem::Exclude("_id".into())])
        );
        assert_eq!(stages[4], Stage::Limit(10));
    }

    #[test]
    fn parses_group_with_keys() {
        let stages = parse_pipeline(
            r#"[
                {"$group": {"_id": {"twenty": "$twenty"}, "max": {"$max": "$four"}}},
                {"$addFields": {"twenty": "$_id.twenty"}},
                {"$project": {"_id": 0}}
            ]"#,
        )
        .unwrap();
        match &stages[0] {
            Stage::Group { id, accs } => {
                assert!(matches!(id, GroupId::Keys(k) if k.len() == 1));
                assert!(matches!(&accs[0].1, Accum::Max(_)));
            }
            _ => panic!(),
        }
        match &stages[1] {
            Stage::AddFields(fields) => {
                assert_eq!(fields[0].0, "twenty");
                assert_eq!(
                    fields[0].1,
                    MongoExpr::FieldRef(vec!["_id".into(), "twenty".into()])
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_lookup_unwind_count() {
        let stages = parse_pipeline(
            r#"[
                {"$lookup":{"from":"collection2","as":"collection2",
                    "let":{"left":"$unique1"},
                    "pipeline": [{"$match":{}},
                        {"$match":{"$expr":{"$eq":["$unique1","$$left"]}}}]}},
                {"$unwind":{"path":"$collection2","preserveNullAndEmptyArrays":false}},
                {"$count":"count"}
            ]"#,
        )
        .unwrap();
        match &stages[0] {
            Stage::Lookup {
                from,
                as_field,
                let_vars,
                pipeline,
            } => {
                assert_eq!(from, "collection2");
                assert_eq!(as_field, "collection2");
                assert_eq!(let_vars[0].0, "left");
                assert_eq!(pipeline.len(), 2);
            }
            _ => panic!(),
        }
        assert_eq!(
            stages[1],
            Stage::Unwind {
                path: "collection2".into(),
                preserve_empty: false
            }
        );
        assert_eq!(stages[2], Stage::Count("count".into()));
    }

    #[test]
    fn sort_directions() {
        let stages = parse_pipeline(r#"[{"$sort": {"unique1": -1}}, {"$limit": 5}]"#).unwrap();
        assert_eq!(stages[0], Stage::Sort(vec![("unique1".into(), true)]));
    }

    #[test]
    fn errors() {
        assert!(parse_pipeline("{}").is_err());
        assert!(parse_pipeline(r#"[{"$bogus": 1}]"#).is_err());
        assert!(parse_pipeline(r#"[{"$sort": {"a": 2}}]"#).is_err());
        assert!(parse_pipeline(r#"[{"$group": {"x": {"$sum": 1}}}]"#).is_err());
        assert!(parse_pipeline(r#"[{"$limit": -1}]"#).is_err());
    }

    #[test]
    fn direct_equality_match() {
        let stages = parse_pipeline(r#"[{"$match": {"lang": "en"}}]"#).unwrap();
        assert!(matches!(
            &stages[0],
            Stage::Match(Some(MongoExpr::Cmp(CmpOp::Eq, _, _)))
        ));
    }
}
