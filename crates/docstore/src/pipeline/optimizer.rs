//! Pipeline optimization: stage normalization and index-access selection.
//!
//! MongoDB's pipeline optimizer can only use indexes for stages at the very
//! head of a pipeline — which is exactly why the paper's PolyFrame-on-
//! MongoDB cannot benefit from the fast metadata count (the `$match{}`
//! prefix keeps the pipeline shape, and `$count` at the end of a pipeline
//! never consults collection metadata).

use crate::pipeline::expr::{CmpOp, MongoExpr};
use crate::pipeline::Stage;
use polyframe_datamodel::Value;
use polyframe_storage::KeyBound;

/// How the executor will produce the initial document stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// Full collection scan.
    CollScan,
    /// Index equality probe.
    IndexEq {
        /// Indexed field.
        attr: String,
        /// Probe key.
        value: Value,
    },
    /// Index range scan.
    IndexRange {
        /// Indexed field.
        attr: String,
        /// Lower bound.
        lo: KeyBound,
        /// Upper bound.
        hi: KeyBound,
    },
    /// Index-ordered scan (forward or backward) with an early-exit limit.
    IndexOrdered {
        /// Indexed field.
        attr: String,
        /// Descending?
        desc: bool,
        /// Early-exit budget.
        limit: Option<u64>,
    },
}

/// An optimized pipeline: a source plus the remaining stages.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPipeline {
    /// Document source.
    pub source: Source,
    /// Stages applied on top of the source.
    pub stages: Vec<Stage>,
}

impl PhysicalPipeline {
    /// EXPLAIN-style description (used in tests and the harness).
    pub fn describe(&self) -> String {
        let src = match &self.source {
            Source::CollScan => "COLLSCAN".to_string(),
            Source::IndexEq { attr, .. } => format!("IXSCAN eq({attr})"),
            Source::IndexRange { attr, .. } => format!("IXSCAN range({attr})"),
            Source::IndexOrdered { attr, desc, limit } => format!(
                "IXSCAN ordered({attr}{}){}",
                if *desc { " desc" } else { "" },
                limit.map(|n| format!(" limit={n}")).unwrap_or_default()
            ),
        };
        format!("{src} + {} stages", self.stages.len())
    }
}

/// Information the optimizer needs about one index: whether it exists and
/// whether it covers every document (no skipped unknown keys).
pub type IndexProbe<'a> = &'a dyn Fn(&str) -> Option<bool>;

/// Optimize a parsed pipeline. `index_info(attr)` returns `Some(complete)`
/// when an index on `attr` exists, and `use_indexes` is the ablation master
/// switch.
pub fn optimize(
    stages: &[Stage],
    index_info: IndexProbe<'_>,
    use_indexes: bool,
) -> PhysicalPipeline {
    let mut stages = normalize(stages);
    let mut source = Source::CollScan;

    if use_indexes {
        // Index access from a leading $match.
        if let Some(Stage::Match(Some(pred))) = stages.first() {
            if let Some((src, residual)) = match_to_index(pred, index_info) {
                source = src;
                match residual {
                    Some(pred) => stages[0] = Stage::Match(Some(pred)),
                    None => {
                        stages.remove(0);
                    }
                }
            }
        }
        // Index-ordered scan from a leading $sort with a downstream $limit.
        if source == Source::CollScan {
            if let Some(Stage::Sort(keys)) = stages.first() {
                if keys.len() == 1 {
                    let (attr, desc) = (&keys[0].0, keys[0].1);
                    if index_info(attr) == Some(true) {
                        if let Some(limit) = find_downstream_limit(&stages[1..]) {
                            source = Source::IndexOrdered {
                                attr: attr.clone(),
                                desc,
                                limit: Some(limit),
                            };
                            stages.remove(0);
                        }
                    }
                }
            }
        }
    }

    PhysicalPipeline { source, stages }
}

/// Drop `$match {}` stages and merge consecutive `$match` predicates.
fn normalize(stages: &[Stage]) -> Vec<Stage> {
    let mut out: Vec<Stage> = Vec::with_capacity(stages.len());
    for stage in stages {
        match stage {
            Stage::Match(None) => {}
            Stage::Match(Some(pred)) => match out.last_mut() {
                Some(Stage::Match(Some(prev))) => {
                    *prev = MongoExpr::And(vec![prev.clone(), pred.clone()]);
                }
                _ => out.push(stage.clone()),
            },
            other => out.push(other.clone()),
        }
    }
    out
}

/// A `$limit` reachable through row-count-preserving stages.
fn find_downstream_limit(stages: &[Stage]) -> Option<u64> {
    for stage in stages {
        match stage {
            Stage::Limit(n) => return Some(*n),
            Stage::Project(_) | Stage::AddFields(_) => continue,
            _ => return None,
        }
    }
    None
}

/// Try to turn a predicate into an index access. Returns the source and the
/// residual predicate (if any conjunct was not absorbed).
fn match_to_index(
    pred: &MongoExpr,
    index_info: IndexProbe<'_>,
) -> Option<(Source, Option<MongoExpr>)> {
    let mut conjuncts = Vec::new();
    flatten_and(pred, &mut conjuncts);

    // Equality first.
    if let Some(pos) = conjuncts.iter().position(|c| {
        eq_field_lit(c).is_some_and(|(f, v)| !v.is_unknown() && index_info(f).is_some())
    }) {
        let (f, v) = eq_field_lit(&conjuncts[pos]).unwrap();
        let source = Source::IndexEq {
            attr: f.to_string(),
            value: v.clone(),
        };
        conjuncts.remove(pos);
        return Some((source, rebuild_and(conjuncts)));
    }

    // Range bounds on a single indexed field.
    for i in 0..conjuncts.len() {
        let Some((f, _, _)) = range_field_lit(&conjuncts[i]) else {
            continue;
        };
        if index_info(f).is_none() {
            continue;
        }
        let field = f.to_string();
        let mut lo = KeyBound::Unbounded;
        let mut hi = KeyBound::Unbounded;
        let mut used = Vec::new();
        for (j, c) in conjuncts.iter().enumerate() {
            if let Some((f2, op, v)) = range_field_lit(c) {
                if f2 == field && !v.is_unknown() {
                    match op {
                        CmpOp::Ge => lo = KeyBound::Included(v.clone()),
                        CmpOp::Gt => lo = KeyBound::Excluded(v.clone()),
                        CmpOp::Le => hi = KeyBound::Included(v.clone()),
                        CmpOp::Lt => hi = KeyBound::Excluded(v.clone()),
                        _ => continue,
                    }
                    used.push(j);
                }
            }
        }
        if used.is_empty() {
            continue;
        }
        let residual: Vec<MongoExpr> = conjuncts
            .iter()
            .enumerate()
            .filter(|(j, _)| !used.contains(j))
            .map(|(_, c)| c.clone())
            .collect();
        return Some((
            Source::IndexRange {
                attr: field,
                lo,
                hi,
            },
            rebuild_and(residual),
        ));
    }
    None
}

fn flatten_and(e: &MongoExpr, out: &mut Vec<MongoExpr>) {
    match e {
        MongoExpr::And(items) => {
            for item in items {
                flatten_and(item, out);
            }
        }
        other => out.push(other.clone()),
    }
}

fn rebuild_and(conjuncts: Vec<MongoExpr>) -> Option<MongoExpr> {
    match conjuncts.len() {
        0 => None,
        1 => Some(conjuncts.into_iter().next().unwrap()),
        _ => Some(MongoExpr::And(conjuncts)),
    }
}

fn eq_field_lit(e: &MongoExpr) -> Option<(&str, &Value)> {
    if let MongoExpr::Cmp(CmpOp::Eq, a, b) = e {
        match (a.as_ref(), b.as_ref()) {
            (MongoExpr::FieldRef(path), MongoExpr::Lit(v)) if path.len() == 1 => {
                Some((path[0].as_str(), v))
            }
            (MongoExpr::Lit(v), MongoExpr::FieldRef(path)) if path.len() == 1 => {
                Some((path[0].as_str(), v))
            }
            _ => None,
        }
    } else {
        None
    }
}

fn range_field_lit(e: &MongoExpr) -> Option<(&str, CmpOp, &Value)> {
    if let MongoExpr::Cmp(op @ (CmpOp::Ge | CmpOp::Gt | CmpOp::Le | CmpOp::Lt), a, b) = e {
        match (a.as_ref(), b.as_ref()) {
            (MongoExpr::FieldRef(path), MongoExpr::Lit(v)) if path.len() == 1 => {
                Some((path[0].as_str(), *op, v))
            }
            (MongoExpr::Lit(v), MongoExpr::FieldRef(path)) if path.len() == 1 => {
                // Flip the operator: `lit < field` is `field > lit`.
                let flipped = match op {
                    CmpOp::Ge => CmpOp::Le,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Lt => CmpOp::Gt,
                    _ => unreachable!(),
                };
                Some((path[0].as_str(), flipped, v))
            }
            _ => None,
        }
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::parse_pipeline;

    fn probe_all_complete(attr: &str) -> Option<bool> {
        matches!(attr, "ten" | "unique1" | "onePercent").then_some(true)
    }

    #[test]
    fn match_all_stages_vanish() {
        let stages = parse_pipeline(r#"[{"$match":{}},{"$match":{}},{"$limit":5}]"#).unwrap();
        let phys = optimize(&stages, &probe_all_complete, true);
        assert_eq!(phys.source, Source::CollScan);
        assert_eq!(phys.stages, vec![Stage::Limit(5)]);
    }

    #[test]
    fn eq_match_becomes_index_probe() {
        let stages = parse_pipeline(
            r#"[{"$match":{}},{"$match":{"$expr":{"$eq":["$ten",3]}}},{"$limit":5}]"#,
        )
        .unwrap();
        let phys = optimize(&stages, &probe_all_complete, true);
        assert_eq!(
            phys.source,
            Source::IndexEq {
                attr: "ten".into(),
                value: Value::Int(3)
            }
        );
        assert_eq!(phys.stages, vec![Stage::Limit(5)]);
    }

    #[test]
    fn residual_predicate_survives() {
        let stages = parse_pipeline(
            r#"[{"$match":{"$expr":{"$and":[{"$eq":["$ten",3]},{"$eq":["$two",1]}]}}}]"#,
        )
        .unwrap();
        let phys = optimize(&stages, &probe_all_complete, true);
        assert!(matches!(phys.source, Source::IndexEq { .. }));
        assert_eq!(phys.stages.len(), 1);
        assert!(matches!(&phys.stages[0], Stage::Match(Some(_))));
    }

    #[test]
    fn range_pair_becomes_index_range() {
        let stages = parse_pipeline(
            r#"[{"$match":{"$expr":{"$and":[{"$gte":["$onePercent",10]},{"$lte":["$onePercent",20]}]}}},{"$count":"count"}]"#,
        )
        .unwrap();
        let phys = optimize(&stages, &probe_all_complete, true);
        match &phys.source {
            Source::IndexRange { attr, lo, hi } => {
                assert_eq!(attr, "onePercent");
                assert_eq!(lo, &KeyBound::Included(Value::Int(10)));
                assert_eq!(hi, &KeyBound::Included(Value::Int(20)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(phys.stages, vec![Stage::Count("count".into())]);
    }

    #[test]
    fn sort_limit_uses_ordered_index() {
        let stages = parse_pipeline(
            r#"[{"$match":{}},{"$sort":{"unique1":-1}},{"$project":{"_id":0}},{"$limit":5}]"#,
        )
        .unwrap();
        let phys = optimize(&stages, &probe_all_complete, true);
        assert_eq!(
            phys.source,
            Source::IndexOrdered {
                attr: "unique1".into(),
                desc: true,
                limit: Some(5)
            }
        );
        // Sort removed; project and limit remain.
        assert_eq!(phys.stages.len(), 2);
    }

    #[test]
    fn sort_without_limit_stays_blocking() {
        let stages = parse_pipeline(r#"[{"$sort":{"unique1":-1}}]"#).unwrap();
        let phys = optimize(&stages, &probe_all_complete, true);
        assert_eq!(phys.source, Source::CollScan);
        assert_eq!(phys.stages.len(), 1);
    }

    #[test]
    fn unindexed_field_stays_collscan() {
        let stages =
            parse_pipeline(r#"[{"$match":{"$expr":{"$eq":["$stringu1","AAA"]}}}]"#).unwrap();
        let phys = optimize(&stages, &probe_all_complete, true);
        assert_eq!(phys.source, Source::CollScan);
    }

    #[test]
    fn ablation_switch_disables_indexes() {
        let stages = parse_pipeline(r#"[{"$match":{"$expr":{"$eq":["$ten",3]}}}]"#).unwrap();
        let phys = optimize(&stages, &probe_all_complete, false);
        assert_eq!(phys.source, Source::CollScan);
    }

    #[test]
    fn unknown_key_eq_is_not_indexable() {
        // SkipNulls indexes cannot answer equality with null.
        let stages = parse_pipeline(r#"[{"$match":{"$expr":{"$eq":["$ten",null]}}}]"#).unwrap();
        let phys = optimize(&stages, &probe_all_complete, true);
        assert_eq!(phys.source, Source::CollScan);
    }
}
