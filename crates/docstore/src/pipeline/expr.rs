//! Aggregation expression parsing and evaluation.
//!
//! MongoDB expression semantics differ from SQL in two load-bearing ways:
//!
//! * comparisons use the **BSON total order** (missing < null < numbers <
//!   strings < ...), so `{"$lt": ["$f", null]}` is the canonical "field is
//!   missing" test the paper's expression 13 uses;
//! * `$and`/`$or` use truthiness (null/missing/0/false are falsy) rather
//!   than three-valued logic.

use crate::error::{DocError, Result};
use polyframe_datamodel::{cmp_total, Value};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `$eq`
    Eq,
    /// `$ne`
    Ne,
    /// `$gt`
    Gt,
    /// `$gte`
    Ge,
    /// `$lt`
    Lt,
    /// `$lte`
    Le,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `$add`
    Add,
    /// `$subtract`
    Sub,
    /// `$multiply`
    Mul,
    /// `$divide`
    Div,
    /// `$mod`
    Mod,
}

/// A parsed aggregation expression.
#[derive(Debug, Clone, PartialEq)]
pub enum MongoExpr {
    /// Literal value.
    Lit(Value),
    /// `"$a.b"` — document field path.
    FieldRef(Vec<String>),
    /// `"$$var"` — pipeline variable (from `$lookup` `let`).
    VarRef(String),
    /// `{"$eq": [a, b]}` etc.
    Cmp(CmpOp, Box<MongoExpr>, Box<MongoExpr>),
    /// `{"$and": [...]}`
    And(Vec<MongoExpr>),
    /// `{"$or": [...]}`
    Or(Vec<MongoExpr>),
    /// `{"$not": [a]}`
    Not(Box<MongoExpr>),
    /// `{"$add": [a, b]}` etc.
    Arith(ArithOp, Box<MongoExpr>, Box<MongoExpr>),
    /// `{"$toUpper": a}`
    ToUpper(Box<MongoExpr>),
    /// `{"$toLower": a}`
    ToLower(Box<MongoExpr>),
    /// `{"$toInt": a}`
    ToInt(Box<MongoExpr>),
    /// `{"$toString": a}`
    ToString(Box<MongoExpr>),
    /// `{"$abs": a}`
    Abs(Box<MongoExpr>),
}

/// Parse an expression from its JSON representation.
pub fn parse_expr(v: &Value) -> Result<MongoExpr> {
    match v {
        Value::Str(s) if s.starts_with("$$") => Ok(MongoExpr::VarRef(s[2..].to_string())),
        Value::Str(s) if s.starts_with('$') => Ok(MongoExpr::FieldRef(super::split_path(&s[1..]))),
        Value::Obj(obj) if obj.len() == 1 => {
            let (op, body) = obj.iter().next().unwrap();
            match op {
                "$eq" => binary_cmp(CmpOp::Eq, body),
                "$ne" => binary_cmp(CmpOp::Ne, body),
                "$gt" => binary_cmp(CmpOp::Gt, body),
                "$gte" => binary_cmp(CmpOp::Ge, body),
                "$lt" => binary_cmp(CmpOp::Lt, body),
                "$lte" => binary_cmp(CmpOp::Le, body),
                "$and" => Ok(MongoExpr::And(parse_list(body)?)),
                "$or" => Ok(MongoExpr::Or(parse_list(body)?)),
                "$not" => {
                    let args = parse_list(body)?;
                    let inner = args
                        .into_iter()
                        .next()
                        .ok_or_else(|| DocError::Pipeline("$not needs an argument".to_string()))?;
                    Ok(MongoExpr::Not(Box::new(inner)))
                }
                "$add" => binary_arith(ArithOp::Add, body),
                "$subtract" => binary_arith(ArithOp::Sub, body),
                "$multiply" => binary_arith(ArithOp::Mul, body),
                "$divide" => binary_arith(ArithOp::Div, body),
                "$mod" => binary_arith(ArithOp::Mod, body),
                "$toUpper" => Ok(MongoExpr::ToUpper(Box::new(parse_expr(body)?))),
                "$toLower" => Ok(MongoExpr::ToLower(Box::new(parse_expr(body)?))),
                "$toInt" => Ok(MongoExpr::ToInt(Box::new(parse_expr(body)?))),
                "$toString" => Ok(MongoExpr::ToString(Box::new(parse_expr(body)?))),
                "$abs" => Ok(MongoExpr::Abs(Box::new(parse_expr(body)?))),
                other => Err(DocError::Pipeline(format!("unsupported operator {other}"))),
            }
        }
        // Any other value (including multi-key objects treated as literals).
        other => Ok(MongoExpr::Lit(other.clone())),
    }
}

fn parse_list(v: &Value) -> Result<Vec<MongoExpr>> {
    match v {
        Value::Array(items) => items.iter().map(parse_expr).collect(),
        single => Ok(vec![parse_expr(single)?]),
    }
}

fn binary_cmp(op: CmpOp, body: &Value) -> Result<MongoExpr> {
    let args = parse_list(body)?;
    if args.len() != 2 {
        return Err(DocError::Pipeline(format!(
            "comparison takes two operands, got {}",
            args.len()
        )));
    }
    let mut it = args.into_iter();
    Ok(MongoExpr::Cmp(
        op,
        Box::new(it.next().unwrap()),
        Box::new(it.next().unwrap()),
    ))
}

fn binary_arith(op: ArithOp, body: &Value) -> Result<MongoExpr> {
    let args = parse_list(body)?;
    if args.len() != 2 {
        return Err(DocError::Pipeline(format!(
            "arithmetic takes two operands, got {}",
            args.len()
        )));
    }
    let mut it = args.into_iter();
    Ok(MongoExpr::Arith(
        op,
        Box::new(it.next().unwrap()),
        Box::new(it.next().unwrap()),
    ))
}

/// Variable bindings available during evaluation (`$lookup` `let`).
pub type Vars = HashMap<String, Value>;

/// Evaluate an expression against one document.
pub fn eval(expr: &MongoExpr, doc: &Value, vars: &Vars) -> Result<Value> {
    match expr {
        MongoExpr::Lit(v) => Ok(v.clone()),
        MongoExpr::FieldRef(path) => {
            let mut cur = doc.clone();
            for part in path {
                cur = cur.get_path(part);
            }
            Ok(cur)
        }
        MongoExpr::VarRef(name) => vars
            .get(name)
            .cloned()
            .ok_or_else(|| DocError::Exec(format!("undefined variable $${name}"))),
        MongoExpr::Cmp(op, a, b) => {
            let (x, y) = (eval(a, doc, vars)?, eval(b, doc, vars)?);
            let ord = cmp_total(&x, &y);
            let r = match op {
                CmpOp::Eq => ord == Ordering::Equal,
                CmpOp::Ne => ord != Ordering::Equal,
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Ge => ord != Ordering::Less,
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Le => ord != Ordering::Greater,
            };
            Ok(Value::Bool(r))
        }
        MongoExpr::And(items) => {
            for item in items {
                if !truthy(&eval(item, doc, vars)?) {
                    return Ok(Value::Bool(false));
                }
            }
            Ok(Value::Bool(true))
        }
        MongoExpr::Or(items) => {
            for item in items {
                if truthy(&eval(item, doc, vars)?) {
                    return Ok(Value::Bool(true));
                }
            }
            Ok(Value::Bool(false))
        }
        MongoExpr::Not(inner) => Ok(Value::Bool(!truthy(&eval(inner, doc, vars)?))),
        MongoExpr::Arith(op, a, b) => {
            let (x, y) = (eval(a, doc, vars)?, eval(b, doc, vars)?);
            if x.is_unknown() || y.is_unknown() {
                return Ok(Value::Null);
            }
            let (Some(xf), Some(yf)) = (x.as_f64(), y.as_f64()) else {
                return Err(DocError::Exec(format!(
                    "arithmetic over non-numeric values ({}, {})",
                    x.type_name(),
                    y.type_name()
                )));
            };
            let both_int = matches!((&x, &y), (Value::Int(_), Value::Int(_)));
            let r = match op {
                ArithOp::Add => xf + yf,
                ArithOp::Sub => xf - yf,
                ArithOp::Mul => xf * yf,
                ArithOp::Div => {
                    if yf == 0.0 {
                        return Ok(Value::Null);
                    }
                    return Ok(Value::Double(xf / yf));
                }
                ArithOp::Mod => {
                    if yf == 0.0 {
                        return Ok(Value::Null);
                    }
                    xf % yf
                }
            };
            if both_int && r.fract() == 0.0 {
                Ok(Value::Int(r as i64))
            } else {
                Ok(Value::Double(r))
            }
        }
        MongoExpr::ToUpper(a) => {
            let v = eval(a, doc, vars)?;
            // MongoDB: $toUpper of null/missing is "".
            Ok(Value::Str(match v {
                Value::Str(s) => s.to_uppercase(),
                Value::Missing | Value::Null => String::new(),
                other => other.to_string().to_uppercase(),
            }))
        }
        MongoExpr::ToLower(a) => {
            let v = eval(a, doc, vars)?;
            Ok(Value::Str(match v {
                Value::Str(s) => s.to_lowercase(),
                Value::Missing | Value::Null => String::new(),
                other => other.to_string().to_lowercase(),
            }))
        }
        MongoExpr::ToInt(a) => {
            let v = eval(a, doc, vars)?;
            if v.is_unknown() {
                return Ok(Value::Null);
            }
            match v {
                Value::Int(i) => Ok(Value::Int(i)),
                Value::Double(d) => Ok(Value::Int(d as i64)),
                Value::Bool(b) => Ok(Value::Int(i64::from(b))),
                Value::Str(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| DocError::Exec(format!("cannot convert {s:?} to int"))),
                other => Err(DocError::Exec(format!(
                    "cannot convert {} to int",
                    other.type_name()
                ))),
            }
        }
        MongoExpr::ToString(a) => {
            let v = eval(a, doc, vars)?;
            if v.is_unknown() {
                return Ok(Value::Null);
            }
            Ok(Value::Str(match v {
                Value::Str(s) => s,
                other => other.to_string(),
            }))
        }
        MongoExpr::Abs(a) => {
            let v = eval(a, doc, vars)?;
            match v {
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Double(d) => Ok(Value::Double(d.abs())),
                Value::Missing | Value::Null => Ok(Value::Null),
                other => Err(DocError::Exec(format!("$abs over {}", other.type_name()))),
            }
        }
    }
}

/// MongoDB truthiness: false, 0, null and missing are falsy.
pub fn truthy(v: &Value) -> bool {
    match v {
        Value::Bool(b) => *b,
        Value::Missing | Value::Null => false,
        Value::Int(i) => *i != 0,
        Value::Double(d) => *d != 0.0,
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyframe_datamodel::{parse_json, record};

    fn doc() -> Value {
        Value::Obj(
            record! {"a" => 5i64, "s" => "abc", "nested" => Value::Obj(record!{"x" => 1i64})},
        )
    }

    fn ev(json: &str) -> Value {
        let e = parse_expr(&parse_json(json).unwrap()).unwrap();
        eval(&e, &doc(), &Vars::new()).unwrap()
    }

    #[test]
    fn field_refs_and_paths() {
        assert_eq!(ev(r#""$a""#), Value::Int(5));
        assert_eq!(ev(r#""$nested.x""#), Value::Int(1));
        assert_eq!(ev(r#""$gone""#), Value::Missing);
    }

    #[test]
    fn total_order_comparisons() {
        assert_eq!(ev(r#"{"$eq": ["$a", 5]}"#), Value::Bool(true));
        // The paper's missing-value idiom: missing < null in BSON order.
        assert_eq!(ev(r#"{"$lt": ["$gone", null]}"#), Value::Bool(true));
        assert_eq!(ev(r#"{"$lt": ["$a", null]}"#), Value::Bool(false));
        assert_eq!(ev(r#"{"$gt": ["$s", 100]}"#), Value::Bool(true)); // strings > numbers
    }

    #[test]
    fn logic_truthiness() {
        assert_eq!(
            ev(r#"{"$and": [{"$eq": ["$a", 5]}, {"$gt": ["$a", 1]}]}"#),
            Value::Bool(true)
        );
        assert_eq!(
            ev(r#"{"$or": ["$gone", {"$eq": ["$a", 5]}]}"#),
            Value::Bool(true)
        );
        assert_eq!(ev(r#"{"$not": ["$gone"]}"#), Value::Bool(true));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ev(r#"{"$add": ["$a", 2]}"#), Value::Int(7));
        assert_eq!(ev(r#"{"$divide": ["$a", 2]}"#), Value::Double(2.5));
        assert_eq!(ev(r#"{"$mod": ["$a", 2]}"#), Value::Int(1));
        assert_eq!(ev(r#"{"$divide": ["$a", 0]}"#), Value::Null);
        assert_eq!(ev(r#"{"$add": ["$gone", 2]}"#), Value::Null);
    }

    #[test]
    fn string_ops() {
        assert_eq!(ev(r#"{"$toUpper": "$s"}"#), Value::str("ABC"));
        assert_eq!(ev(r#"{"$toUpper": "$gone"}"#), Value::str(""));
        assert_eq!(ev(r#"{"$toString": "$a"}"#), Value::str("5"));
        assert_eq!(ev(r#"{"$toInt": "7"}"#), Value::Int(7));
        assert_eq!(ev(r#"{"$abs": -3}"#), Value::Int(3));
    }

    #[test]
    fn vars() {
        let e = parse_expr(&parse_json(r#"{"$eq": ["$a", "$$left"]}"#).unwrap()).unwrap();
        let mut vars = Vars::new();
        vars.insert("left".to_string(), Value::Int(5));
        assert_eq!(eval(&e, &doc(), &vars).unwrap(), Value::Bool(true));
        assert!(eval(&e, &doc(), &Vars::new()).is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_expr(&parse_json(r#"{"$eq": [1]}"#).unwrap()).is_err());
        assert!(parse_expr(&parse_json(r#"{"$frob": [1, 2]}"#).unwrap()).is_err());
    }
}
