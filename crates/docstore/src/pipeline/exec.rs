//! Pipeline execution.
//!
//! Streaming stages (match/project/addFields/limit/unwind/lookup) compose as
//! iterators so a trailing `$limit` stops the collection scan early; `$group`
//! and `$sort` materialize.

use crate::error::{DocError, Result};
use crate::pipeline::expr::{self, truthy, CmpOp, MongoExpr, Vars};
use crate::pipeline::optimizer::{PhysicalPipeline, Source};
use crate::pipeline::{Accum, GroupId, ProjectItem, Stage};
use polyframe_datamodel::{cmp_total, Record, Value};
use polyframe_storage::{Direction, ScanRange, Table};
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};

/// Document stream.
pub type DocIter<'b> = Box<dyn Iterator<Item = Result<Value>> + 'b>;

/// Run an optimized pipeline against `collection`. `collections` is the full
/// catalog (visible to `$lookup`).
pub fn run_pipeline<'b>(
    collections: &'b HashMap<String, Table>,
    collection: &str,
    pipeline: &'b PhysicalPipeline,
    vars: &'b Vars,
) -> Result<Vec<Value>> {
    let table = collections
        .get(collection)
        .ok_or_else(|| DocError::UnknownCollection(collection.to_string()))?;
    let mut stream = source_stream(table, &pipeline.source)?;
    for stage in &pipeline.stages {
        stream = apply_stage(collections, stream, stage, vars)?;
    }
    stream.collect()
}

fn source_stream<'b>(table: &'b Table, source: &'b Source) -> Result<DocIter<'b>> {
    match source {
        Source::CollScan => Ok(Box::new(
            table.heap().scan().map(|(_, d)| Ok(Value::Obj(d.clone()))),
        )),
        Source::IndexEq { attr, value } => {
            let ix = table
                .index_on(attr)
                .ok_or_else(|| DocError::Exec(format!("no index on {attr}")))?;
            Ok(Box::new(
                ix.scan(&ScanRange::eq(value.clone()), Direction::Forward)
                    .map(move |(_, rid)| {
                        table
                            .get(rid)
                            .map(|d| Value::Obj(d.clone()))
                            .ok_or_else(|| DocError::Exec("dangling index entry".into()))
                    }),
            ))
        }
        Source::IndexRange { attr, lo, hi } => {
            let ix = table
                .index_on(attr)
                .ok_or_else(|| DocError::Exec(format!("no index on {attr}")))?;
            let range = ScanRange {
                lo: lo.clone(),
                hi: hi.clone(),
            };
            Ok(Box::new(ix.scan(&range, Direction::Forward).map(
                move |(_, rid)| {
                    table
                        .get(rid)
                        .map(|d| Value::Obj(d.clone()))
                        .ok_or_else(|| DocError::Exec("dangling index entry".into()))
                },
            )))
        }
        Source::IndexOrdered { attr, desc, limit } => {
            let ix = table
                .index_on(attr)
                .ok_or_else(|| DocError::Exec(format!("no index on {attr}")))?;
            let dir = if *desc {
                Direction::Backward
            } else {
                Direction::Forward
            };
            let iter = ix.scan(&ScanRange::all(), dir).map(move |(_, rid)| {
                table
                    .get(rid)
                    .map(|d| Value::Obj(d.clone()))
                    .ok_or_else(|| DocError::Exec("dangling index entry".into()))
            });
            match limit {
                Some(n) => Ok(Box::new(iter.take(*n as usize))),
                None => Ok(Box::new(iter)),
            }
        }
    }
}

pub(crate) fn apply_stage<'b>(
    collections: &'b HashMap<String, Table>,
    stream: DocIter<'b>,
    stage: &'b Stage,
    vars: &'b Vars,
) -> Result<DocIter<'b>> {
    match stage {
        Stage::Match(None) => Ok(stream),
        Stage::Match(Some(pred)) => Ok(Box::new(stream.filter_map(move |doc| match doc {
            Ok(doc) => match expr::eval(pred, &doc, vars) {
                Ok(v) => truthy(&v).then_some(Ok(doc)),
                Err(e) => Some(Err(e)),
            },
            Err(e) => Some(Err(e)),
        }))),
        Stage::Project(items) => Ok(Box::new(stream.map(move |doc| {
            let doc = doc?;
            project_doc(items, &doc, vars)
        }))),
        Stage::AddFields(fields) => Ok(Box::new(stream.map(move |doc| {
            let doc = doc?;
            let mut rec = match doc {
                Value::Obj(r) => r,
                other => {
                    return Err(DocError::Exec(format!(
                        "$addFields over non-document ({})",
                        other.type_name()
                    )))
                }
            };
            for (name, e) in fields {
                let v = expr::eval(e, &Value::Obj(rec.clone()), vars)?;
                rec.insert(name.clone(), v);
            }
            Ok(Value::Obj(rec))
        }))),
        Stage::Group { id, accs } => {
            let out = run_group(stream, id, accs, vars)?;
            Ok(Box::new(out.into_iter().map(Ok)))
        }
        Stage::Sort(keys) => {
            let docs: Result<Vec<Value>> = stream.collect();
            let mut docs = docs?;
            docs.sort_by(|a, b| {
                for (field, desc) in keys {
                    let ord = cmp_total(&a.get_path(field), &b.get_path(field));
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
            Ok(Box::new(docs.into_iter().map(Ok)))
        }
        Stage::Limit(n) => Ok(Box::new(stream.take(*n as usize))),
        Stage::Count(name) => {
            let mut n = 0usize;
            for doc in stream {
                doc?;
                n += 1;
            }
            // MongoDB quirk: $count emits nothing at all on empty input.
            if n == 0 {
                Ok(Box::new(std::iter::empty()))
            } else {
                let mut rec = Record::new();
                rec.insert(name.clone(), Value::Int(n as i64));
                Ok(Box::new(std::iter::once(Ok(Value::Obj(rec)))))
            }
        }
        Stage::Lookup {
            from,
            as_field,
            let_vars,
            pipeline,
        } => {
            let inner_table = collections
                .get(from)
                .ok_or_else(|| DocError::UnknownCollection(from.to_string()))?;
            // Index-probe fast path: the inner pipeline is a pure equality
            // on a let-variable over an indexed field — the index
            // nested-loop join the paper observed.
            let probe = lookup_probe(pipeline, inner_table);
            // General path: pre-optimize the inner pipeline once.
            let inner_phys = crate::pipeline::optimizer::optimize(
                pipeline,
                &|a| inner_table.index_on(a).map(|ix| ix.is_complete()),
                true,
            );
            Ok(Box::new(stream.map(move |doc| {
                let doc = doc?;
                let mut inner_vars = vars.clone();
                for (name, e) in let_vars {
                    inner_vars.insert(name.clone(), expr::eval(e, &doc, vars)?);
                }
                let matches: Vec<Value> = match &probe {
                    Some((attr, var)) => {
                        let key = inner_vars
                            .get(var)
                            .cloned()
                            .ok_or_else(|| DocError::Exec(format!("undefined $${var}")))?;
                        let ix = inner_table.index_on(attr).expect("probe checked");
                        ix.lookup(&key)
                            .into_iter()
                            .filter_map(|rid| inner_table.get(rid))
                            .map(|d| Value::Obj(d.clone()))
                            .collect()
                    }
                    None => run_pipeline(collections, from, &inner_phys, &inner_vars)?,
                };
                let mut rec = doc.into_obj().map_err(|e| DocError::Exec(e.to_string()))?;
                rec.insert(as_field.clone(), Value::Array(matches));
                Ok(Value::Obj(rec))
            })))
        }
        Stage::Unwind {
            path,
            preserve_empty,
        } => Ok(Box::new(stream.flat_map(move |doc| {
            let doc = match doc {
                Ok(d) => d,
                Err(e) => return vec![Err(e)],
            };
            match doc.get_path(path) {
                Value::Array(items) if !items.is_empty() => items
                    .into_iter()
                    .map(|item| {
                        let mut rec = doc.as_obj().unwrap().clone();
                        rec.insert(path.clone(), item);
                        Ok(Value::Obj(rec))
                    })
                    .collect(),
                _ if *preserve_empty => {
                    let mut rec = doc.as_obj().unwrap().clone();
                    rec.remove(path);
                    vec![Ok(Value::Obj(rec))]
                }
                _ => Vec::new(),
            }
        }))),
        Stage::Out(_) => Err(DocError::Pipeline(
            "$out must be the final stage (handled by the store)".to_string(),
        )),
    }
}

/// Detect the index-probe `$lookup` pattern: `[$match{}]* $match($eq($field,
/// $$var))` with an index on the field.
fn lookup_probe(pipeline: &[Stage], inner: &Table) -> Option<(String, String)> {
    let mut pred = None;
    for stage in pipeline {
        match stage {
            Stage::Match(None) => continue,
            Stage::Match(Some(p)) if pred.is_none() => pred = Some(p),
            _ => return None,
        }
    }
    if let Some(MongoExpr::Cmp(CmpOp::Eq, a, b)) = pred {
        let (field, var) = match (a.as_ref(), b.as_ref()) {
            (MongoExpr::FieldRef(p), MongoExpr::VarRef(v)) if p.len() == 1 => (&p[0], v),
            (MongoExpr::VarRef(v), MongoExpr::FieldRef(p)) if p.len() == 1 => (&p[0], v),
            _ => return None,
        };
        if inner.index_on(field).is_some() {
            return Some((field.clone(), var.clone()));
        }
    }
    None
}

/// Apply a `$project` stage to one document.
pub fn project_doc(items: &[ProjectItem], doc: &Value, vars: &Vars) -> Result<Value> {
    let inclusion = items
        .iter()
        .any(|i| matches!(i, ProjectItem::Include(_) | ProjectItem::Computed(_, _)));
    let src = doc
        .as_obj()
        .ok_or_else(|| DocError::Exec("$project over non-document".to_string()))?;
    if inclusion {
        let mut rec = Record::new();
        // `_id` is kept by inclusion projections unless excluded here.
        let id_excluded = items
            .iter()
            .any(|i| matches!(i, ProjectItem::Exclude(f) if f == "_id"));
        if !id_excluded {
            if let Some(id) = src.get("_id") {
                rec.insert("_id", id.clone());
            }
        }
        for item in items {
            match item {
                ProjectItem::Include(f) => {
                    if let Some(v) = src.get(f) {
                        rec.insert(f.clone(), v.clone());
                    }
                }
                ProjectItem::Computed(f, e) => {
                    rec.insert(f.clone(), expr::eval(e, doc, vars)?);
                }
                ProjectItem::Exclude(f) if f == "_id" => {}
                ProjectItem::Exclude(f) => {
                    return Err(DocError::Pipeline(format!(
                        "cannot exclude {f} inside an inclusion projection"
                    )))
                }
            }
        }
        Ok(Value::Obj(rec))
    } else {
        // Pure exclusion projection.
        let mut rec = src.clone();
        for item in items {
            if let ProjectItem::Exclude(f) = item {
                rec.remove(f);
            }
        }
        Ok(Value::Obj(rec))
    }
}

/// Total-order key for grouping.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct OrdKey(pub Vec<Value>);

impl Eq for OrdKey {}
impl PartialOrd for OrdKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdKey {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            let ord = cmp_total(a, b);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

/// Group-stage accumulator.
#[derive(Debug, Clone)]
pub struct GroupAcc {
    /// Which accumulator this is.
    pub spec: Accum,
    sum: f64,
    sumsq: f64,
    count: i64,
    int_only: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl GroupAcc {
    /// Fresh accumulator.
    pub fn new(spec: &Accum) -> GroupAcc {
        GroupAcc {
            spec: spec.clone(),
            sum: 0.0,
            sumsq: 0.0,
            count: 0,
            int_only: true,
            min: None,
            max: None,
        }
    }

    /// Fold a document's evaluated argument in. MongoDB accumulators skip
    /// non-numeric values for `$sum`/`$avg`/`$stdDevPop`.
    pub fn update(&mut self, v: &Value) {
        match &self.spec {
            Accum::Sum(_) | Accum::Avg(_) | Accum::StdDevPop(_) => {
                if let Some(x) = v.as_f64() {
                    self.sum += x;
                    self.sumsq += x * x;
                    self.count += 1;
                    if !matches!(v, Value::Int(_)) {
                        self.int_only = false;
                    }
                }
            }
            Accum::Min(_) => {
                if !v.is_unknown()
                    && self
                        .min
                        .as_ref()
                        .is_none_or(|cur| cmp_total(v, cur) == Ordering::Less)
                {
                    self.min = Some(v.clone());
                }
            }
            Accum::Max(_) => {
                if !v.is_unknown()
                    && self
                        .max
                        .as_ref()
                        .is_none_or(|cur| cmp_total(v, cur) == Ordering::Greater)
                {
                    self.max = Some(v.clone());
                }
            }
            Accum::Count(_) => {
                if !v.is_unknown() {
                    self.count += 1;
                }
            }
        }
    }

    /// Final value.
    pub fn finalize(&self) -> Value {
        match &self.spec {
            Accum::Sum(_) => {
                if self.int_only {
                    Value::Int(self.sum as i64)
                } else {
                    Value::Double(self.sum)
                }
            }
            Accum::Avg(_) => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Double(self.sum / self.count as f64)
                }
            }
            Accum::StdDevPop(_) => {
                if self.count == 0 {
                    Value::Null
                } else {
                    let n = self.count as f64;
                    let mean = self.sum / n;
                    Value::Double((self.sumsq / n - mean * mean).max(0.0).sqrt())
                }
            }
            Accum::Min(_) => self.min.clone().unwrap_or(Value::Null),
            Accum::Max(_) => self.max.clone().unwrap_or(Value::Null),
            Accum::Count(_) => Value::Int(self.count),
        }
    }

    /// Serialize for cross-shard merging.
    pub fn to_partial(&self) -> Value {
        let mut rec = Record::new();
        rec.insert("sum", self.sum);
        rec.insert("sumsq", self.sumsq);
        rec.insert("count", self.count);
        rec.insert("int_only", self.int_only);
        rec.insert("min", self.min.clone().unwrap_or(Value::Missing));
        rec.insert("max", self.max.clone().unwrap_or(Value::Missing));
        Value::Obj(rec)
    }

    /// Merge a serialized partial state.
    pub fn merge_partial(&mut self, partial: &Value) {
        self.sum += partial.get_path("sum").as_f64().unwrap_or(0.0);
        self.sumsq += partial.get_path("sumsq").as_f64().unwrap_or(0.0);
        self.count += partial.get_path("count").as_i64().unwrap_or(0);
        self.int_only &= partial.get_path("int_only").as_bool().unwrap_or(true);
        let pmin = partial.get_path("min");
        if !pmin.is_unknown()
            && self
                .min
                .as_ref()
                .is_none_or(|cur| cmp_total(&pmin, cur) == Ordering::Less)
        {
            self.min = Some(pmin);
        }
        let pmax = partial.get_path("max");
        if !pmax.is_unknown()
            && self
                .max
                .as_ref()
                .is_none_or(|cur| cmp_total(&pmax, cur) == Ordering::Greater)
        {
            self.max = Some(pmax);
        }
    }
}

/// Run a `$group` stage over a stream. Public so the distributed layer can
/// reuse the exact semantics.
pub fn run_group(
    stream: DocIter<'_>,
    id: &GroupId,
    accs: &[(String, Accum)],
    vars: &Vars,
) -> Result<Vec<Value>> {
    let fresh = || -> Vec<GroupAcc> { accs.iter().map(|(_, a)| GroupAcc::new(a)).collect() };
    let mut groups: BTreeMap<OrdKey, Vec<GroupAcc>> = BTreeMap::new();

    for doc in stream {
        let doc = doc?;
        let key = match id {
            GroupId::Empty => OrdKey(vec![]),
            GroupId::Keys(keys) => {
                let mut kv = Vec::with_capacity(keys.len());
                for (_, e) in keys {
                    kv.push(expr::eval(e, &doc, vars)?);
                }
                OrdKey(kv)
            }
        };
        let slot = groups.entry(key).or_insert_with(fresh);
        for ((_, spec), acc) in accs.iter().zip(slot.iter_mut()) {
            let arg = match spec {
                Accum::Sum(e)
                | Accum::Min(e)
                | Accum::Max(e)
                | Accum::Avg(e)
                | Accum::StdDevPop(e)
                | Accum::Count(e) => expr::eval(e, &doc, vars)?,
            };
            acc.update(&arg);
        }
    }

    // `$group` with `_id: {}` over empty input emits nothing (MongoDB).
    let mut out = Vec::with_capacity(groups.len());
    for (key, slot) in &groups {
        let mut rec = Record::new();
        let id_val = match id {
            GroupId::Empty => Value::Obj(Record::new()),
            GroupId::Keys(keys) => {
                let mut idrec = Record::with_capacity(keys.len());
                for ((name, _), v) in keys.iter().zip(key.0.iter()) {
                    idrec.insert(name.clone(), v.clone());
                }
                Value::Obj(idrec)
            }
        };
        rec.insert("_id", id_val);
        for ((name, _), acc) in accs.iter().zip(slot.iter()) {
            rec.insert(name.clone(), acc.finalize());
        }
        out.push(Value::Obj(rec));
    }
    Ok(out)
}
