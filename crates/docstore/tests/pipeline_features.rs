//! Broader document-store coverage: pipeline semantics and edge cases
//! beyond the PolyFrame-generated shapes.

use polyframe_datamodel::{record, Value};
use polyframe_docstore::{DocError, DocStore};

fn store() -> DocStore {
    let s = DocStore::new();
    s.create_collection("c").unwrap();
    s.insert_many(
        "c",
        (0..30i64).map(|i| {
            let mut r = record! {"grp" => i % 3, "v" => i};
            if i % 6 != 0 {
                r.insert("opt", i);
            }
            if i % 10 == 0 {
                r.insert("tags", Value::Array(vec![Value::Int(i), Value::Int(i + 1)]));
            }
            r
        }),
    )
    .unwrap();
    s
}

#[test]
fn addfields_overwrites_existing_fields() {
    let s = store();
    let out = s
        .aggregate(
            "c",
            r#"[{"$match":{"$expr":{"$eq":["$v",3]}}},{"$addFields":{"v":{"$add":["$v",100]}}},{"$project":{"_id":0}}]"#,
        )
        .unwrap();
    assert_eq!(out[0].get_path("v"), Value::Int(103));
}

#[test]
fn unwind_duplicates_per_element_and_preserves_optionally() {
    let s = store();
    // Without preserve: only docs with non-empty arrays survive, once per
    // element.
    let out = s
        .aggregate(
            "c",
            r#"[{"$unwind":{"path":"$tags","preserveNullAndEmptyArrays":false}},{"$count":"n"}]"#,
        )
        .unwrap();
    assert_eq!(out[0].get_path("n"), Value::Int(6)); // ids 0,10,20 × 2 elements
                                                     // With preserve: array-less docs pass through once.
    let out = s
        .aggregate(
            "c",
            r#"[{"$unwind":{"path":"$tags","preserveNullAndEmptyArrays":true}},{"$count":"n"}]"#,
        )
        .unwrap();
    assert_eq!(out[0].get_path("n"), Value::Int(33)); // 27 + 6
}

#[test]
fn group_sum_of_expression() {
    let s = store();
    let out = s
        .aggregate(
            "c",
            r#"[{"$group":{"_id":{"grp":"$grp"},"total":{"$sum":"$v"}}},{"$addFields":{"grp":"$_id.grp"}},{"$project":{"_id":0}}]"#,
        )
        .unwrap();
    let total: i64 = out
        .iter()
        .map(|d| d.get_path("total").as_i64().unwrap())
        .sum();
    assert_eq!(total, (0..30).sum::<i64>());
}

#[test]
fn avg_skips_non_numeric_and_missing() {
    let s = store();
    let out = s
        .aggregate(
            "c",
            r#"[{"$group":{"_id":{},"a":{"$avg":"$opt"}}},{"$project":{"_id":0}}]"#,
        )
        .unwrap();
    // `opt` exists on 25 docs (i % 6 != 0), equal to i.
    let known: Vec<i64> = (0..30).filter(|i| i % 6 != 0).collect();
    let expected = known.iter().sum::<i64>() as f64 / known.len() as f64;
    let got = out[0].get_path("a").as_f64().unwrap();
    assert!((got - expected).abs() < 1e-9);
}

#[test]
fn sort_ties_are_stable_under_secondary_key() {
    let s = store();
    let out = s
        .aggregate(
            "c",
            r#"[{"$sort":{"grp":1,"v":-1}},{"$project":{"_id":0,"tags":0}},{"$limit":3}]"#,
        )
        .unwrap();
    let vs: Vec<i64> = out
        .iter()
        .map(|d| d.get_path("v").as_i64().unwrap())
        .collect();
    assert_eq!(vs, vec![27, 24, 21]); // grp 0, descending v
}

#[test]
fn exclusion_projection_keeps_other_fields() {
    let s = store();
    let out = s
        .aggregate("c", r#"[{"$limit":1},{"$project":{"_id":0,"grp":0}}]"#)
        .unwrap();
    assert!(out[0].get_path("_id").is_missing());
    assert!(out[0].get_path("grp").is_missing());
    assert!(!out[0].get_path("v").is_missing());
}

#[test]
fn toint_and_tostring_round_trip() {
    let s = store();
    let out = s
        .aggregate(
            "c",
            r#"[{"$match":{"$expr":{"$eq":["$v",7]}}},
                {"$project":{"s":{"$toString":"$v"},"i":{"$toInt":{"$toString":"$v"}},"_id":0}}]"#,
        )
        .unwrap();
    assert_eq!(out[0].get_path("s"), Value::str("7"));
    assert_eq!(out[0].get_path("i"), Value::Int(7));
}

#[test]
fn match_direct_field_equality_shorthand() {
    let s = store();
    let out = s
        .aggregate("c", r#"[{"$match":{"grp":1}},{"$count":"n"}]"#)
        .unwrap();
    assert_eq!(out[0].get_path("n"), Value::Int(10));
}

#[test]
fn index_and_collscan_agree() {
    let s = store();
    let before = s
        .aggregate(
            "c",
            r#"[{"$match":{"$expr":{"$eq":["$grp",2]}}},{"$count":"n"}]"#,
        )
        .unwrap();
    s.create_index("c", "grp").unwrap();
    let after = s
        .aggregate(
            "c",
            r#"[{"$match":{"$expr":{"$eq":["$grp",2]}}},{"$count":"n"}]"#,
        )
        .unwrap();
    assert_eq!(before, after);
    assert!(s
        .explain(
            "c",
            r#"[{"$match":{"$expr":{"$eq":["$grp",2]}}},{"$count":"n"}]"#
        )
        .unwrap()
        .contains("IXSCAN"));
}

#[test]
fn error_paths() {
    let s = store();
    assert!(matches!(
        s.aggregate("c", r#"[{"$frobnicate": 1}]"#),
        Err(DocError::Pipeline(_))
    ));
    assert!(matches!(
        s.aggregate("ghost", r#"[{"$match":{}}]"#),
        Err(DocError::UnknownCollection(_))
    ));
    assert!(s.aggregate("c", "not json").is_err());
    // $out mid-pipeline is rejected.
    assert!(s.aggregate("c", r#"[{"$out":"x"},{"$match":{}}]"#).is_err());
}

#[test]
fn lookup_without_index_still_correct() {
    let s = store();
    s.create_collection("other").unwrap();
    s.insert_many("other", (0..10i64).map(|i| record! {"k" => i}))
        .unwrap();
    // No index on other.k: the general per-document pipeline path runs.
    let out = s
        .aggregate(
            "c",
            r#"[{"$match":{"$expr":{"$lt":["$v",10]}}},
                {"$lookup":{"from":"other","as":"m","let":{"x":"$v"},
                    "pipeline":[{"$match":{"$expr":{"$eq":["$k","$$x"]}}}]}},
                {"$unwind":{"path":"$m","preserveNullAndEmptyArrays":false}},
                {"$count":"n"}]"#,
        )
        .unwrap();
    assert_eq!(out[0].get_path("n"), Value::Int(10));
}
