//! Chaos suite for the elastic tier: seeded leader crashes and online
//! shard splits under a concurrent read/write workload must never
//! change what queries observe.
//!
//! A replicated cluster and a fault-free baseline cluster ingest the
//! same batches round by round; each round crashes one shard's leader
//! via a seeded [`FaultPlan`] while reader threads keep querying with
//! failover, then compares every probe query byte for byte against the
//! baseline. Promotions must heal every crash (no full rebuild on the
//! critical path), replaying strictly fewer log records than a
//! rebuild, and a leader that crashes again after healing promotes
//! again — the recovery path is idempotent.

use polyframe_cluster::{ShardPolicy, SqlCluster};
use polyframe_datamodel::{record, to_json_string, Record, Value};
use polyframe_observe::FaultPlan;
use polyframe_sqlengine::EngineConfig;
use polyframe_storage::CheckpointPolicy;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

const NS: &str = "Test";
const DS: &str = "Users";

/// Probe queries covering every distributed merge path: count
/// (aggregate), grouped aggregate, and a cross-shard top-k.
const PROBES: [&str; 3] = [
    "SELECT VALUE COUNT(*) FROM Test.Users",
    "SELECT grp, COUNT(grp) AS cnt FROM (SELECT VALUE t FROM Test.Users t) t GROUP BY grp",
    "SELECT VALUE t FROM (SELECT VALUE t FROM Test.Users t) t ORDER BY t.id DESC LIMIT 9",
];

fn batch(lo: i64, hi: i64) -> Vec<Record> {
    (lo..hi)
        .map(|i| record! {"id" => i, "grp" => i % 8, "val" => i * 3})
        .collect()
}

fn durable_cluster(shards: usize, records: i64) -> Arc<SqlCluster> {
    let c = Arc::new(SqlCluster::new(shards, EngineConfig::asterixdb(), "id"));
    c.enable_durability(CheckpointPolicy::never()).unwrap();
    c.create_dataset(NS, DS, Some("id")).unwrap();
    c.load(NS, DS, batch(0, records)).unwrap();
    c
}

fn ndjson(rows: &[Value]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&to_json_string(r));
        out.push('\n');
    }
    out
}

/// Compare every probe on the chaos cluster against the baseline,
/// byte for byte.
fn assert_probes_match(chaos: &SqlCluster, baseline: &SqlCluster, round: &str) {
    for probe in PROBES {
        let expected = baseline.query(probe).unwrap();
        let got = chaos.query_with(probe, &ShardPolicy::failover(3)).unwrap();
        assert_eq!(
            ndjson(&got),
            ndjson(&expected),
            "{round}: chaos cluster diverged on {probe}"
        );
    }
}

/// Reader threads spinning the probe mix with failover until stopped;
/// every read must succeed no matter which of them trips a crash.
/// Completed reads tick `ops` so tests can wait for real traffic.
fn spawn_readers(
    cluster: &Arc<SqlCluster>,
    readers: usize,
    stop: &Arc<AtomicBool>,
    ops: &Arc<AtomicUsize>,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..readers)
        .map(|r| {
            let cluster = Arc::clone(cluster);
            let stop = Arc::clone(stop);
            let ops = Arc::clone(ops);
            std::thread::spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let probe = PROBES[(r + i) % PROBES.len()];
                    cluster
                        .query_with(probe, &ShardPolicy::failover(3))
                        .expect("read under chaos");
                    i += 1;
                    ops.fetch_add(1, Ordering::Release);
                }
            })
        })
        .collect()
}

/// Block until the readers have completed at least `n` more reads.
fn await_reads(ops: &AtomicUsize, n: usize) {
    let target = ops.load(Ordering::Acquire) + n;
    while ops.load(Ordering::Acquire) < target {
        std::thread::yield_now();
    }
}

#[test]
fn chaos_sweep_crashes_every_leader_under_load() {
    const SHARDS: usize = 3;
    let chaos = durable_cluster(SHARDS, 120);
    let baseline = durable_cluster(SHARDS, 120);
    chaos.enable_replication(2).unwrap();
    chaos.take_stats();

    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicUsize::new(0));
    let readers = spawn_readers(&chaos, 2, &stop, &ops);

    // One round per shard: ingest the same batch on both clusters, then
    // crash this shard's current leader and compare every probe.
    let mut next_id = 120i64;
    for shard in 0..SHARDS {
        let rows = batch(next_id, next_id + 40);
        next_id += 40;
        chaos.load(NS, DS, rows.clone()).unwrap();
        baseline.load(NS, DS, rows).unwrap();

        chaos.set_fault_plan(Some(Arc::new(FaultPlan::crash_at(
            11 + shard as u64,
            format!("sql-cluster/shard[{shard}]"),
            0,
        ))));
        assert_probes_match(&chaos, &baseline, &format!("round {shard}"));
        chaos.set_fault_plan(None);
        // The demoted ex-leader rejoins as a stale follower; heal it
        // before the next round so every crash finds a fresh candidate.
        chaos.heal_replicas();
    }

    // Concurrent reads genuinely ran before the sweep ends.
    await_reads(&ops, 1);
    stop.store(true, Ordering::Release);
    for r in readers {
        r.join().expect("reader");
    }

    // Every crash in the sweep was healed by promotion — never by a
    // full rebuild — and promotions replayed nothing: all frames had
    // shipped before the crash.
    let mut promotions = 0usize;
    let mut rebuilds = 0usize;
    let mut replayed = 0u64;
    for stats in chaos.take_stats() {
        promotions += stats.promotions;
        rebuilds += stats.recovered_shards;
        replayed += stats.replayed_records;
    }
    assert_eq!(promotions, SHARDS, "one promotion per crashed leader");
    assert_eq!(rebuilds, 0, "no full rebuild on the critical path");
    assert_eq!(replayed, 0, "all frames had shipped before each crash");

    // A replica-less control cluster healing the same crash must replay
    // its full log — strictly more than the promotions did.
    let control = durable_cluster(SHARDS, 120);
    control.set_fault_plan(Some(Arc::new(FaultPlan::crash_at(
        11,
        "sql-cluster/shard[0]",
        0,
    ))));
    control
        .query_with(PROBES[0], &ShardPolicy::failover(3))
        .unwrap();
    let control_stats = control.last_stats().unwrap();
    assert_eq!(control_stats.recovered_shards, 1);
    assert!(
        control_stats.replayed_records > replayed,
        "full rebuild replayed {} records, promotions replayed {replayed}",
        control_stats.replayed_records
    );
}

#[test]
fn repeated_crashes_of_the_same_shard_promote_each_time() {
    let chaos = durable_cluster(2, 80);
    let baseline = durable_cluster(2, 80);
    chaos.enable_replication(1).unwrap();
    chaos.take_stats();

    // Crash shard 0 twice. After the first promotion the demoted
    // ex-leader is healed back into the set, so the second crash finds
    // a fresh candidate again — recovery is idempotent, not one-shot.
    for round in 0..2 {
        chaos.set_fault_plan(Some(Arc::new(FaultPlan::crash_at(
            23 + round,
            "sql-cluster/shard[0]",
            0,
        ))));
        assert_probes_match(&chaos, &baseline, &format!("crash {round}"));
        chaos.set_fault_plan(None);
        assert_eq!(chaos.heal_replicas(), 1, "ex-leader healed after crash");
    }

    let mut promotions = 0usize;
    let mut rebuilds = 0usize;
    for stats in chaos.take_stats() {
        promotions += stats.promotions;
        rebuilds += stats.recovered_shards;
    }
    assert_eq!(promotions, 2, "both crashes healed by promotion");
    assert_eq!(rebuilds, 0);

    // Writes after the second promotion land on the current leader and
    // stay queryable — nothing was lost across either handoff.
    chaos.load(NS, DS, batch(80, 120)).unwrap();
    baseline.load(NS, DS, batch(80, 120)).unwrap();
    assert_probes_match(&chaos, &baseline, "after both crashes");
}

#[test]
fn online_split_under_traffic_stays_byte_identical() {
    let chaos = durable_cluster(2, 160);
    let baseline = durable_cluster(2, 160);

    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicUsize::new(0));
    let readers = spawn_readers(&chaos, 2, &stop, &ops);

    // A writer keeps ingesting through the split window on both
    // clusters; batches are identical so the final states must agree.
    let writer = {
        let chaos = Arc::clone(&chaos);
        let baseline = Arc::clone(&baseline);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut next = 160i64;
            while !stop.load(Ordering::Acquire) {
                let rows = batch(next, next + 20);
                next += 20;
                chaos.load(NS, DS, rows.clone()).expect("chaos load");
                baseline.load(NS, DS, rows).expect("baseline load");
            }
            next
        })
    };

    // The split happens under real traffic: readers have completed
    // reads and keep reading through the cutover.
    await_reads(&ops, 2);
    let new_shard = chaos.split_shard(0).expect("online split");
    assert_eq!(new_shard, 2);
    assert_eq!(chaos.num_shards(), 3);
    // Post-cutover reads land on the new topology before the traffic
    // stops.
    await_reads(&ops, 2);

    stop.store(true, Ordering::Release);
    let loaded = writer.join().expect("writer");
    for r in readers {
        r.join().expect("reader");
    }

    // Traffic has drained: the split cluster and the unsplit baseline
    // hold the same rows and answer every probe identically.
    assert_eq!(
        chaos.dataset_len(NS, DS).unwrap(),
        loaded as usize,
        "split lost or duplicated rows"
    );
    assert_probes_match(&chaos, &baseline, "after split");
    // The split actually moved data: both halves hold rows.
    let kept = chaos.shard(0).dataset_len(NS, DS).unwrap();
    let moved = chaos.shard(2).dataset_len(NS, DS).unwrap();
    assert!(kept > 0 && moved > 0, "kept={kept} moved={moved}");
}
