//! Sharded SQL/SQL++ cluster (AsterixDB cluster / Greenplum).

use crate::partition::shard_for;
use crate::resilience::{run_resilient, shard_fault, ShardFault, ShardOutcome, ShardPolicy};
use crate::stats::{ExecMode, QueryStats, RecoveryCounters, StatsRecorder};
use polyframe_datamodel::{cmp_total, Record, Value};
use polyframe_observe::sync::Mutex;
use polyframe_observe::FaultPlan;
use polyframe_sqlengine::plan::distributed::{
    merge_aggregate_parts, merge_concat, merge_topk, split, DistributedQuery,
};
use polyframe_sqlengine::plan::logical::LogicalPlan;
use polyframe_sqlengine::{Engine, EngineConfig, EngineError, Result};
use polyframe_storage::{CheckpointPolicy, LogMedia, RecoveryReport};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A hash-partitioned cluster of SQL engines.
pub struct SqlCluster {
    shards: Vec<Arc<Engine>>,
    /// Attribute used to place records on shards.
    partition_key: String,
    mode: ExecMode,
    stats: StatsRecorder,
    /// Optional fault plan consulted at the shard-dispatch boundary
    /// (sites `sql-cluster/shard[i]`).
    faults: Mutex<Option<Arc<FaultPlan>>>,
}

impl SqlCluster {
    /// Build a cluster of `n` shards sharing one engine configuration.
    /// Shard dispatch defaults to [`ExecMode::auto`].
    pub fn new(n: usize, config: EngineConfig, partition_key: impl Into<String>) -> SqlCluster {
        SqlCluster::with_mode(n, config, partition_key, ExecMode::auto(n))
    }

    /// Build a cluster with an explicit dispatch mode.
    pub fn with_mode(
        n: usize,
        mut config: EngineConfig,
        partition_key: impl Into<String>,
        mode: ExecMode,
    ) -> SqlCluster {
        assert!(n >= 1, "a cluster needs at least one shard");
        // Budget cores jointly: shards × morsel workers ≤ available cores
        // (sequential dispatch hands each shard the full budget instead).
        config.exec.workers = mode.workers_per_shard(n);
        SqlCluster {
            shards: (0..n)
                .map(|_| Arc::new(Engine::new(config.clone())))
                .collect(),
            partition_key: partition_key.into(),
            mode,
            stats: StatsRecorder::new(),
            faults: Mutex::new(None),
        }
    }

    /// Install (or clear) a fault-injection plan consulted before every
    /// shard dispatch (sites `sql-cluster/shard[i]`).
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.faults.lock() = plan;
    }

    /// The currently installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.faults.lock().clone()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Borrow a shard engine (tests, repartition join).
    pub fn shard(&self, i: usize) -> &Engine {
        &self.shards[i]
    }

    /// Drain the accumulated simulated-parallel elapsed time (see
    /// [`crate::stats`]): the sum over recorded queries of
    /// `compile + max(shard) + merge`.
    pub fn take_simulated_elapsed(&self) -> Duration {
        self.stats.take_simulated_elapsed()
    }

    /// Drain the raw per-query stats.
    pub fn take_stats(&self) -> Vec<QueryStats> {
        self.stats.take()
    }

    /// Peek at the stats of the most recent query without draining.
    pub fn last_stats(&self) -> Option<QueryStats> {
        self.stats.last()
    }

    /// Create a dataset on every shard.
    pub fn create_dataset(
        &self,
        namespace: &str,
        dataset: &str,
        primary_key: Option<&str>,
    ) -> Result<()> {
        for s in &self.shards {
            s.create_dataset(namespace, dataset, primary_key)?;
        }
        Ok(())
    }

    /// Give every shard its own write-ahead log (a fresh [`LogMedia`]
    /// per shard, as each node of a real cluster owns its own disk) and
    /// recover whatever committed state each log holds. A shard that
    /// crashes mid-query afterwards rebuilds from its own log before
    /// rejoining.
    pub fn enable_durability(&self, policy: CheckpointPolicy) -> Result<Vec<RecoveryReport>> {
        self.shards
            .iter()
            .map(|s| s.enable_durability(LogMedia::new(), policy))
            .collect()
    }

    /// Handle an injected crash on shard `i`: when the shard has a log,
    /// rebuild it (counting the recovery), then report a transient
    /// failure so the failover loop re-dispatches against the rebuilt
    /// shard. Without a log the crash degrades to a plain transient
    /// fault.
    fn recover_shard(&self, i: usize, msg: String, recovery: &RecoveryCounters) -> EngineError {
        if !self.shards[i].durability_enabled() {
            return EngineError::transient(msg);
        }
        let start = Instant::now();
        match self.shards[i].recover() {
            Ok(report) => {
                recovery.record(report.replayed_records, start.elapsed());
                EngineError::transient(format!("{msg}; shard rebuilt from log"))
            }
            Err(e) => e,
        }
    }

    /// Create a secondary index on every shard.
    pub fn create_index(&self, namespace: &str, dataset: &str, attribute: &str) -> Result<()> {
        for s in &self.shards {
            s.create_index(namespace, dataset, attribute)?;
        }
        Ok(())
    }

    /// Hash-partition records across the shards and load them.
    pub fn load(
        &self,
        namespace: &str,
        dataset: &str,
        records: impl IntoIterator<Item = Record>,
    ) -> Result<()> {
        let n = self.shards.len();
        let mut buckets: Vec<Vec<Record>> = (0..n).map(|_| Vec::new()).collect();
        for rec in records {
            let key = rec.get_or_missing(&self.partition_key);
            buckets[shard_for(&key, n)].push(rec);
        }
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (shard, bucket) in self.shards.iter().zip(buckets) {
                let shard = Arc::clone(shard);
                handles.push(scope.spawn(move || shard.load(namespace, dataset, bucket)));
            }
            for h in handles {
                h.join().expect("shard load thread panicked")?;
            }
            Ok(())
        })
    }

    /// Total records across shards.
    pub fn dataset_len(&self, namespace: &str, dataset: &str) -> Result<usize> {
        let mut n = 0;
        for s in &self.shards {
            n += s.dataset_len(namespace, dataset)?;
        }
        Ok(n)
    }

    /// Execute a query across the cluster with the default (no-failover)
    /// shard policy.
    pub fn query(&self, sql: &str) -> Result<Vec<Value>> {
        self.query_with(sql, &ShardPolicy::default())
    }

    /// Execute a query across the cluster under an explicit shard
    /// resilience policy (failover re-dispatch and, on opt-in, partial
    /// results from the surviving shards).
    pub fn query_with(&self, sql: &str, policy: &ShardPolicy) -> Result<Vec<Value>> {
        let compile_start = Instant::now();
        // Compile once (the coordinator's plan; every shard shares the same
        // catalog shape).
        let logical = self.shards[0].compile_to_logical(sql)?;
        let strategy = split(&logical)?;
        let compile = compile_start.elapsed();

        match strategy {
            DistributedQuery::Concat { shard_plan, limit } => {
                let (mut scatter, recovery) = self.scatter(&shard_plan, policy)?;
                let merge_start = Instant::now();
                let parts = std::mem::take(&mut scatter.parts);
                let out = merge_concat(parts, limit);
                self.record(compile, merge_start.elapsed(), scatter, &recovery);
                Ok(out)
            }
            DistributedQuery::ScalarAgg {
                shard_plan,
                aggs,
                project,
            } => {
                let (mut scatter, recovery) = self.scatter(&shard_plan, policy)?;
                let merge_start = Instant::now();
                let parts = std::mem::take(&mut scatter.parts);
                let out = merge_aggregate_parts(parts, &[], &aggs, &project);
                self.record(compile, merge_start.elapsed(), scatter, &recovery);
                out
            }
            DistributedQuery::GroupAgg {
                shard_plan,
                group_names,
                aggs,
                project,
            } => {
                let (mut scatter, recovery) = self.scatter(&shard_plan, policy)?;
                let merge_start = Instant::now();
                let parts = std::mem::take(&mut scatter.parts);
                let out = merge_aggregate_parts(parts, &group_names, &aggs, &project);
                self.record(compile, merge_start.elapsed(), scatter, &recovery);
                out
            }
            DistributedQuery::TopK {
                shard_plan,
                keys,
                limit,
                post_project,
            } => {
                let (mut scatter, recovery) = self.scatter(&shard_plan, policy)?;
                let merge_start = Instant::now();
                let parts = std::mem::take(&mut scatter.parts);
                let out = merge_topk(parts, &keys, limit, post_project.as_ref());
                self.record(compile, merge_start.elapsed(), scatter, &recovery);
                out
            }
            DistributedQuery::JoinCount {
                left,
                right,
                output,
                project,
            } => {
                let (count, merge, extract, recovery) =
                    self.repartition_join_count(&left, &right, policy)?;
                let mut rec = Record::new();
                rec.insert(output, Value::Int(count as i64));
                let row = Value::Obj(rec);
                let projected = polyframe_sqlengine::exec::project_row(&project, &row)?;
                let mut stats = QueryStats {
                    compile,
                    shard_times: extract.shard_times,
                    merge,
                    failovers: extract.failovers,
                    dropped_shards: extract.dropped_shards,
                    ..QueryStats::default()
                };
                recovery.fold_into(&mut stats);
                self.stats.record(stats);
                Ok(vec![projected])
            }
        }
    }

    fn record<T>(
        &self,
        compile: Duration,
        merge: Duration,
        scatter: ShardOutcome<T>,
        recovery: &RecoveryCounters,
    ) {
        let mut stats = QueryStats {
            compile,
            shard_times: scatter.shard_times,
            merge,
            failovers: scatter.failovers,
            dropped_shards: scatter.dropped_shards,
            ..QueryStats::default()
        };
        recovery.fold_into(&mut stats);
        self.stats.record(stats);
    }

    /// Run a logical plan on every shard, timing each shard's work, with
    /// per-shard failover under `policy`.
    fn scatter(
        &self,
        plan: &LogicalPlan,
        policy: &ShardPolicy,
    ) -> Result<(ShardOutcome<Vec<Value>>, RecoveryCounters)> {
        let faults = self.fault_plan();
        let recovery = RecoveryCounters::new();
        let out = run_resilient(
            self.shards.len(),
            self.mode,
            policy,
            EngineError::is_transient,
            |i| {
                match shard_fault(faults.as_deref(), "sql-cluster", i) {
                    Some(ShardFault::Transient(msg)) => return Err(EngineError::transient(msg)),
                    Some(ShardFault::Crash(msg)) => {
                        return Err(self.recover_shard(i, msg, &recovery))
                    }
                    None => {}
                }
                self.shards[i].execute_logical(plan)
            },
        )?;
        Ok((out, recovery))
    }

    /// Parallel repartition join + count over two datasets' join-key
    /// indexes. Returns `(count, merge critical path, extraction outcome)`:
    ///
    /// 1. each shard extracts its sorted join keys (index-only) for both
    ///    sides and buckets them by hash — one unit of shard work, run
    ///    with per-shard failover under `policy`;
    /// 2. one task per partition merges its left/right keys and counts
    ///    pair products — the merge critical path is the slowest partition.
    fn repartition_join_count(
        &self,
        left: &(String, String, String),
        right: &(String, String, String),
        policy: &ShardPolicy,
    ) -> Result<(usize, Duration, ShardOutcome<()>, RecoveryCounters)> {
        let n = self.shards.len();
        let recovery = RecoveryCounters::new();

        // Phase 1: per-shard key extraction + bucketing (both sides).
        type Buckets = Vec<Vec<Value>>;
        let extract_one = |shard: &Engine| -> Result<(Buckets, Buckets)> {
            let bucketize = |keys: Vec<Value>| {
                let mut buckets: Vec<Vec<Value>> = (0..n).map(|_| Vec::new()).collect();
                for k in keys {
                    let b = shard_for(&k, n);
                    buckets[b].push(k);
                }
                buckets
            };
            let l = bucketize(shard.index_keys(&left.0, &left.1, &left.2)?);
            let r = bucketize(shard.index_keys(&right.0, &right.1, &right.2)?);
            Ok((l, r))
        };

        let faults = self.fault_plan();
        let ShardOutcome {
            parts: per_shard,
            shard_times,
            failovers,
            dropped_shards,
        } = run_resilient(n, self.mode, policy, EngineError::is_transient, |i| {
            match shard_fault(faults.as_deref(), "sql-cluster", i) {
                Some(ShardFault::Transient(msg)) => return Err(EngineError::transient(msg)),
                Some(ShardFault::Crash(msg)) => return Err(self.recover_shard(i, msg, &recovery)),
                None => {}
            }
            extract_one(&self.shards[i])
        })?;
        let extract = ShardOutcome {
            parts: Vec::new(),
            shard_times,
            failovers,
            dropped_shards,
        };

        let mut left_parts: Vec<Vec<Value>> = (0..n).map(|_| Vec::new()).collect();
        let mut right_parts: Vec<Vec<Value>> = (0..n).map(|_| Vec::new()).collect();
        for (lbuckets, rbuckets) in per_shard {
            for (i, b) in lbuckets.into_iter().enumerate() {
                left_parts[i].extend(b);
            }
            for (i, b) in rbuckets.into_iter().enumerate() {
                right_parts[i].extend(b);
            }
        }

        // Phase 2: per-partition merge counts; critical path = slowest.
        let mut count = 0usize;
        let mut merge_critical = Duration::ZERO;
        match self.mode {
            ExecMode::Threads => {
                let results: Vec<(usize, Duration)> = std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for (mut l, mut r) in left_parts.into_iter().zip(right_parts) {
                        handles.push(scope.spawn(move || {
                            let start = Instant::now();
                            l.sort_by(cmp_total);
                            r.sort_by(cmp_total);
                            (merge_count(&l, &r), start.elapsed())
                        }));
                    }
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("join thread panicked"))
                        .collect()
                });
                for (c, t) in results {
                    count += c;
                    merge_critical = merge_critical.max(t);
                }
            }
            ExecMode::Sequential => {
                for (mut l, mut r) in left_parts.into_iter().zip(right_parts) {
                    let start = Instant::now();
                    l.sort_by(cmp_total);
                    r.sort_by(cmp_total);
                    count += merge_count(&l, &r);
                    merge_critical = merge_critical.max(start.elapsed());
                }
            }
        }
        Ok((count, merge_critical, extract, recovery))
    }

    /// EXPLAIN helper: how the coordinator would distribute `sql`.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let logical = self.shards[0].compile_to_logical(sql)?;
        let d = split(&logical)?;
        Ok(match d {
            DistributedQuery::Concat { limit, .. } => format!("Concat(limit={limit:?})"),
            DistributedQuery::ScalarAgg { .. } => "ScalarAgg(partial->merge)".to_string(),
            DistributedQuery::GroupAgg { group_names, .. } => {
                format!("GroupAgg(regroup on {group_names:?})")
            }
            DistributedQuery::TopK { limit, .. } => format!("TopK(limit={limit})"),
            DistributedQuery::JoinCount { .. } => "RepartitionJoinCount".to_string(),
        })
    }
}

/// Count merge-join matches between two sorted key vectors.
fn merge_count(left: &[Value], right: &[Value]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < left.len() && j < right.len() {
        match cmp_total(&left[i], &right[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let key = &left[i];
                let mut li = 0;
                while i < left.len() && cmp_total(&left[i], key) == std::cmp::Ordering::Equal {
                    li += 1;
                    i += 1;
                }
                let mut rj = 0;
                while j < right.len() && cmp_total(&right[j], key) == std::cmp::Ordering::Equal {
                    rj += 1;
                    j += 1;
                }
                count += li * rj;
            }
        }
    }
    count
}

/// Convenience re-export of the engine error type.
pub type SqlClusterError = EngineError;

#[cfg(test)]
mod tests {
    use super::*;
    use polyframe_datamodel::record;

    fn cluster(n: usize) -> SqlCluster {
        let c = SqlCluster::new(n, EngineConfig::asterixdb(), "id");
        c.create_dataset("Test", "Users", Some("id")).unwrap();
        c.load(
            "Test",
            "Users",
            (0..100i64).map(|i| {
                record! {
                    "id" => i,
                    "grp" => i % 4,
                    "val" => i * 2,
                }
            }),
        )
        .unwrap();
        c.create_index("Test", "Users", "val").unwrap();
        c
    }

    #[test]
    fn data_is_partitioned() {
        let c = cluster(4);
        assert_eq!(c.dataset_len("Test", "Users").unwrap(), 100);
        // Each shard holds a strict subset.
        for i in 0..4 {
            let n = c.shard(i).dataset_len("Test", "Users").unwrap();
            assert!(n > 0 && n < 100, "shard {i} has {n}");
        }
    }

    #[test]
    fn count_matches_single_node() {
        let c = cluster(3);
        let rows = c.query("SELECT VALUE COUNT(*) FROM Test.Users").unwrap();
        assert_eq!(rows, vec![Value::Int(100)]);
    }

    #[test]
    fn filtered_count() {
        let c = cluster(3);
        let rows = c
            .query("SELECT VALUE COUNT(*) FROM (SELECT VALUE t FROM (SELECT VALUE t FROM Test.Users t) t WHERE t.grp = 2) t")
            .unwrap();
        assert_eq!(rows, vec![Value::Int(25)]);
    }

    #[test]
    fn group_by_regroups() {
        let c = cluster(4);
        let rows = c
            .query("SELECT grp, COUNT(grp) AS cnt FROM (SELECT VALUE t FROM Test.Users t) t GROUP BY grp")
            .unwrap();
        assert_eq!(rows.len(), 4);
        for row in rows {
            assert_eq!(row.get_path("cnt"), Value::Int(25));
        }
    }

    #[test]
    fn min_max_avg_across_shards() {
        let c = cluster(4);
        let rows = c
            .query("SELECT MAX(val) FROM (SELECT val FROM (SELECT VALUE t FROM Test.Users t) t) t")
            .unwrap();
        assert_eq!(rows[0].get_path("max"), Value::Int(198));
        let rows = c
            .query("SELECT AVG(id) FROM (SELECT id FROM (SELECT VALUE t FROM Test.Users t) t) t")
            .unwrap();
        assert_eq!(rows[0].get_path("avg"), Value::Double(49.5));
    }

    #[test]
    fn topk_merges_sorted() {
        let c = cluster(4);
        let rows = c
            .query("SELECT VALUE t FROM (SELECT VALUE t FROM Test.Users t) t ORDER BY t.id DESC LIMIT 5")
            .unwrap();
        let ids: Vec<i64> = rows
            .iter()
            .map(|r| r.get_path("id").as_i64().unwrap())
            .collect();
        assert_eq!(ids, vec![99, 98, 97, 96, 95]);
    }

    #[test]
    fn pipeline_limit() {
        let c = cluster(2);
        let rows = c
            .query("SELECT grp FROM (SELECT VALUE t FROM Test.Users t) t LIMIT 7")
            .unwrap();
        assert_eq!(rows.len(), 7);
    }

    #[test]
    fn join_count_repartitions() {
        let c = cluster(3);
        // Self-join on id: every record matches exactly once.
        let rows = c
            .query(
                "SELECT VALUE COUNT(*) FROM (SELECT l, r FROM Test.Users l JOIN Test.Users r ON l.id = r.id) t",
            )
            .unwrap();
        assert_eq!(rows, vec![Value::Int(100)]);
        assert_eq!(
            c.explain("SELECT VALUE COUNT(*) FROM (SELECT l, r FROM Test.Users l JOIN Test.Users r ON l.id = r.id) t")
                .unwrap(),
            "RepartitionJoinCount"
        );
    }

    #[test]
    fn results_agree_with_single_shard() {
        let single = cluster(1);
        let multi = cluster(4);
        for q in [
            "SELECT VALUE COUNT(*) FROM Test.Users",
            "SELECT MIN(val) FROM (SELECT val FROM (SELECT VALUE t FROM Test.Users t) t) t",
            "SELECT grp, COUNT(grp) AS cnt FROM (SELECT VALUE t FROM Test.Users t) t GROUP BY grp",
        ] {
            assert_eq!(single.query(q).unwrap(), multi.query(q).unwrap(), "{q}");
        }
    }

    #[test]
    fn failover_recovers_from_injected_faults() {
        let baseline = cluster(3)
            .query("SELECT VALUE COUNT(*) FROM Test.Users")
            .unwrap();
        let c = cluster(3);
        let plan = Arc::new(FaultPlan::new(5).with_error_rate(1.0).with_max_faults(2));
        c.set_fault_plan(Some(Arc::clone(&plan)));
        let rows = c
            .query_with(
                "SELECT VALUE COUNT(*) FROM Test.Users",
                &ShardPolicy::failover(3),
            )
            .unwrap();
        assert_eq!(rows, baseline);
        assert_eq!(plan.faults_injected(), 2);
        let stats = c.last_stats().unwrap();
        assert!(stats.failovers > 0);
        assert!(stats.dropped_shards.is_empty());
    }

    #[test]
    fn partial_results_drop_failed_shard_on_opt_in() {
        let c = cluster(4);
        c.set_fault_plan(Some(Arc::new(
            FaultPlan::new(1).with_error_rate(1.0).for_sites("shard[2]"),
        )));
        // Without the explicit opt-in, a dead shard fails the query.
        assert!(c
            .query_with(
                "SELECT VALUE COUNT(*) FROM Test.Users",
                &ShardPolicy::failover(1),
            )
            .is_err());
        // With it, the count covers the surviving shards and the gap is
        // recorded.
        let rows = c
            .query_with(
                "SELECT VALUE COUNT(*) FROM Test.Users",
                &ShardPolicy::failover(1).with_allow_partial(true),
            )
            .unwrap();
        let lost = c.shard(2).dataset_len("Test", "Users").unwrap() as i64;
        assert_eq!(rows, vec![Value::Int(100 - lost)]);
        let stats = c.last_stats().unwrap();
        assert_eq!(stats.dropped_shards, vec![2]);
        assert_eq!(stats.shard_times.len(), 4);
    }

    #[test]
    fn crashed_shard_rebuilds_from_its_log() {
        let c = SqlCluster::new(3, EngineConfig::asterixdb(), "id");
        c.enable_durability(CheckpointPolicy::never()).unwrap();
        c.create_dataset("Test", "Users", Some("id")).unwrap();
        c.load(
            "Test",
            "Users",
            (0..100i64).map(|i| record! {"id" => i, "grp" => i % 4}),
        )
        .unwrap();
        // Kill shard 1 on its first dispatch: it must rebuild from its
        // own log and the failover re-dispatch then sees the full data.
        c.set_fault_plan(Some(Arc::new(FaultPlan::crash_at(
            9,
            "sql-cluster/shard[1]",
            0,
        ))));
        let rows = c
            .query_with(
                "SELECT VALUE COUNT(*) FROM Test.Users",
                &ShardPolicy::failover(2),
            )
            .unwrap();
        assert_eq!(rows, vec![Value::Int(100)]);
        let stats = c.last_stats().unwrap();
        assert_eq!(stats.recovered_shards, 1);
        assert!(
            stats.replayed_records > 0,
            "shard 1 should replay its create+load records"
        );
        let spans = stats.to_spans();
        let recovery = spans
            .iter()
            .find(|s| s.name() == "recovery")
            .expect("recovery span in the trace tree");
        assert_eq!(recovery.metric("recovered_shards"), Some(1));
        assert_eq!(
            recovery.metric("replayed_records"),
            Some(stats.replayed_records as i64)
        );
    }

    #[test]
    fn crash_without_durability_is_a_plain_transient() {
        let c = cluster(3);
        c.set_fault_plan(Some(Arc::new(FaultPlan::crash_at(
            9,
            "sql-cluster/shard[1]",
            0,
        ))));
        // No log to rebuild from: the crash degrades to a transient
        // failure, failover still answers, nothing claims recovery.
        let rows = c
            .query_with(
                "SELECT VALUE COUNT(*) FROM Test.Users",
                &ShardPolicy::failover(2),
            )
            .unwrap();
        assert_eq!(rows, vec![Value::Int(100)]);
        let stats = c.last_stats().unwrap();
        assert_eq!(stats.recovered_shards, 0);
        assert!(stats.to_spans().iter().all(|s| s.name() != "recovery"));
    }

    #[test]
    fn both_modes_agree_and_record_stats() {
        for mode in [ExecMode::Threads, ExecMode::Sequential] {
            let c = SqlCluster::with_mode(3, EngineConfig::asterixdb(), "id", mode);
            c.create_dataset("Test", "Users", Some("id")).unwrap();
            c.load(
                "Test",
                "Users",
                (0..60i64).map(|i| record! {"id" => i, "grp" => i % 3}),
            )
            .unwrap();
            let rows = c.query("SELECT VALUE COUNT(*) FROM Test.Users").unwrap();
            assert_eq!(rows, vec![Value::Int(60)], "{mode:?}");
            let stats = c.take_stats();
            assert_eq!(stats.len(), 1);
            assert_eq!(stats[0].shard_times.len(), 3);
            assert!(stats[0].simulated_wall() > Duration::ZERO);
            assert!(c.take_stats().is_empty());
        }
    }
}
