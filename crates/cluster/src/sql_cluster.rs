//! Sharded SQL/SQL++ cluster (AsterixDB cluster / Greenplum).

use crate::partition::{shard_for, ShardMap, SHARD_SLOTS};
use crate::replicate::{ReplicaNode, ReplicaSet, ReplicaStatus};
use crate::resilience::{run_resilient, shard_fault, ShardFault, ShardOutcome, ShardPolicy};
use crate::stats::{ExecMode, QueryStats, RecoveryCounters, StatsRecorder};
use polyframe_datamodel::{cmp_total, Record, Value};
use polyframe_observe::sync::{Mutex, RwLock};
use polyframe_observe::FaultPlan;
use polyframe_sqlengine::plan::distributed::{
    merge_aggregate_parts, merge_concat, merge_topk, split, DistributedQuery,
};
use polyframe_sqlengine::plan::logical::LogicalPlan;
use polyframe_sqlengine::{Engine, EngineConfig, EngineError, Result};
use polyframe_storage::wal::{DurableOp, WalObserver};
use polyframe_storage::{CheckpointPolicy, LogMedia, RecoveryReport};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The mutable cluster shape: shard leaders, their replica sets, and
/// the slot table routing keys to shards. Guarded by one `RwLock` —
/// loads and DDL hold it for reading (writes go to current leaders),
/// queries snapshot handles briefly, and topology changes (promotion,
/// split) take it for writing so no write can land on a stale leader.
struct Topology {
    shards: Vec<Arc<Engine>>,
    replicas: Vec<Option<Arc<ReplicaSet<Engine>>>>,
    map: ShardMap,
    replicas_per_shard: usize,
    wal_policy: Option<CheckpointPolicy>,
}

/// A hash-partitioned cluster of SQL engines.
pub struct SqlCluster {
    topology: RwLock<Topology>,
    /// Per-shard engine configuration (after worker budgeting), reused
    /// for follower replicas and split-off shards.
    config: EngineConfig,
    /// Attribute used to place records on shards.
    partition_key: String,
    mode: ExecMode,
    stats: StatsRecorder,
    /// Optional fault plan consulted at the shard-dispatch boundary
    /// (sites `sql-cluster/shard[i]`) and the replication sites
    /// (`sql-cluster/shard[i]/wal/ship[j]`, `.../replica/apply[j]`).
    faults: Mutex<Option<Arc<FaultPlan>>>,
}

impl SqlCluster {
    /// Build a cluster of `n` shards sharing one engine configuration.
    /// Shard dispatch defaults to [`ExecMode::auto`].
    pub fn new(n: usize, config: EngineConfig, partition_key: impl Into<String>) -> SqlCluster {
        SqlCluster::with_mode(n, config, partition_key, ExecMode::auto(n))
    }

    /// Build a cluster with an explicit dispatch mode.
    pub fn with_mode(
        n: usize,
        mut config: EngineConfig,
        partition_key: impl Into<String>,
        mode: ExecMode,
    ) -> SqlCluster {
        assert!(n >= 1, "a cluster needs at least one shard");
        // Budget cores jointly: shards × morsel workers ≤ available cores
        // (sequential dispatch hands each shard the full budget instead).
        config.exec.workers = mode.workers_per_shard(n);
        SqlCluster {
            topology: RwLock::new(Topology {
                shards: (0..n)
                    .map(|_| Arc::new(Engine::new(config.clone())))
                    .collect(),
                replicas: (0..n).map(|_| None).collect(),
                map: ShardMap::new(n),
                replicas_per_shard: 0,
                wal_policy: None,
            }),
            config,
            partition_key: partition_key.into(),
            mode,
            stats: StatsRecorder::new(),
            faults: Mutex::new(None),
        }
    }

    /// Install (or clear) a fault-injection plan consulted before every
    /// shard dispatch (sites `sql-cluster/shard[i]`) and at the WAL
    /// shipping / replica apply sites.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.faults.lock() = plan.clone();
        for set in self.topology.read().replicas.iter().flatten() {
            set.set_faults(plan.clone());
        }
    }

    /// The currently installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.faults.lock().clone()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.topology.read().shards.len()
    }

    /// The current leader engine of shard `i` (tests, benches). The
    /// handle outlives promotions — re-fetch to see the new leader.
    pub fn shard(&self, i: usize) -> Arc<Engine> {
        Arc::clone(&self.topology.read().shards[i])
    }

    /// Drain the accumulated simulated-parallel elapsed time (see
    /// [`crate::stats`]): the sum over recorded queries of
    /// `compile + max(shard) + merge`.
    pub fn take_simulated_elapsed(&self) -> Duration {
        self.stats.take_simulated_elapsed()
    }

    /// Drain the raw per-query stats.
    pub fn take_stats(&self) -> Vec<QueryStats> {
        self.stats.take()
    }

    /// Peek at the stats of the most recent query without draining.
    pub fn last_stats(&self) -> Option<QueryStats> {
        self.stats.last()
    }

    /// Create a dataset on every shard.
    pub fn create_dataset(
        &self,
        namespace: &str,
        dataset: &str,
        primary_key: Option<&str>,
    ) -> Result<()> {
        for s in &self.topology.read().shards {
            s.create_dataset(namespace, dataset, primary_key)?;
        }
        Ok(())
    }

    /// Give every shard its own write-ahead log (a fresh [`LogMedia`]
    /// per shard, as each node of a real cluster owns its own disk) and
    /// recover whatever committed state each log holds. A shard that
    /// crashes mid-query afterwards rebuilds from its own log before
    /// rejoining.
    pub fn enable_durability(&self, policy: CheckpointPolicy) -> Result<Vec<RecoveryReport>> {
        let mut topo = self.topology.write();
        topo.wal_policy = Some(policy);
        topo.shards
            .iter()
            .map(|s| s.enable_durability(LogMedia::new(), policy))
            .collect()
    }

    /// Give every shard `n` follower replicas maintained by WAL
    /// shipping: each committed frame on a leader is shipped in order to
    /// its followers, a crash promotes the freshest follower (replaying
    /// only the committed-but-unshipped tail), and fully caught-up
    /// followers can serve snapshot reads (see
    /// [`ShardPolicy::prefer_replica`]). Requires durability.
    pub fn enable_replication(&self, replicas_per_shard: usize) -> Result<()> {
        let faults = self.fault_plan();
        let mut topo = self.topology.write();
        let policy = topo
            .wal_policy
            .ok_or_else(|| EngineError::exec("enable durability before replication"))?;
        topo.replicas_per_shard = replicas_per_shard;
        for i in 0..topo.shards.len() {
            let set = Self::replica_set_for(
                &self.config,
                i,
                &topo.shards[i],
                replicas_per_shard,
                policy,
                faults.clone(),
            )?;
            topo.replicas[i] = Some(set);
        }
        Ok(())
    }

    /// Build a replica set of `n` empty followers for `leader`, seed
    /// them from its pinned snapshot, and install the set as the
    /// leader's WAL observer so every later commit ships synchronously.
    fn replica_set_for(
        config: &EngineConfig,
        shard: usize,
        leader: &Arc<Engine>,
        n: usize,
        policy: CheckpointPolicy,
        faults: Option<Arc<FaultPlan>>,
    ) -> Result<Arc<ReplicaSet<Engine>>> {
        let set = Arc::new(ReplicaSet::new("sql-cluster", shard));
        set.set_faults(faults);
        for _ in 0..n {
            let follower = Engine::new(config.clone());
            follower.enable_durability(LogMedia::new(), policy)?;
            set.add_follower(leader.as_ref(), Arc::new(follower))
                .map_err(EngineError::exec)?;
        }
        let wal = leader
            .wal_handle()
            .ok_or_else(|| EngineError::exec("replication requires a durable leader"))?;
        wal.set_observer(Some(Arc::clone(&set) as Arc<dyn WalObserver>));
        // Drain anything committed between the seed pin and the observer
        // install.
        set.catch_up(&wal);
        Ok(set)
    }

    /// Per-shard replica status (cursor, lag, freshness), outer index =
    /// shard. Shards without replication report an empty list.
    pub fn replication_status(&self) -> Vec<Vec<ReplicaStatus>> {
        let topo = self.topology.read();
        topo.shards
            .iter()
            .zip(&topo.replicas)
            .map(|(leader, set)| match (set, leader.wal_handle()) {
                (Some(set), Some(wal)) => {
                    let next = wal.next_lsn();
                    set.status(next)
                }
                _ => Vec::new(),
            })
            .collect()
    }

    /// Off-critical-path repair: rebuild stale followers (demoted
    /// ex-leaders, apply-faulted replicas) from their own logs and drain
    /// lagging fresh followers from their leader's committed log.
    /// Returns how many stale followers were rebuilt.
    pub fn heal_replicas(&self) -> usize {
        let topo = self.topology.read();
        let mut healed = 0;
        for (leader, set) in topo.shards.iter().zip(&topo.replicas) {
            if let Some(set) = set {
                healed += set.heal_stale();
                if let Some(wal) = leader.wal_handle() {
                    set.catch_up(&wal);
                }
            }
        }
        healed
    }

    /// The engine serving reads of shard `i` under the given routing
    /// preference: a fully caught-up follower when replica reads are
    /// preferred and one exists (a lagging replica is never read), else
    /// the leader.
    fn read_engine(&self, i: usize, prefer_replica: bool) -> Arc<Engine> {
        let topo = self.topology.read();
        let leader = Arc::clone(&topo.shards[i]);
        if prefer_replica {
            if let (Some(set), Some(wal)) = (topo.replicas[i].as_ref(), leader.wal_handle()) {
                let next = wal.next_lsn();
                if let Some(node) = set.read_replica(next) {
                    return node;
                }
            }
        }
        leader
    }

    /// Handle an injected crash on shard `i`. Preference order:
    ///
    /// 1. **Promotion** — under the topology write lock (so no write can
    ///    land on the stale leader), promote the freshest follower,
    ///    replaying only the committed-but-unshipped WAL tail, hand the
    ///    replica set over to the new leader's WAL, and demote the
    ///    ex-leader to a stale follower.
    /// 2. **Full rebuild** — no promotable follower: replay the shard's
    ///    entire log (snapshot + tail) in place.
    /// 3. Without a log the crash degrades to a plain transient fault.
    ///
    /// All paths report a transient failure so the failover loop
    /// re-dispatches against the healed shard.
    fn recover_shard(&self, i: usize, msg: String, recovery: &RecoveryCounters) -> EngineError {
        let start = Instant::now();
        {
            let mut topo = self.topology.write();
            let leader = Arc::clone(&topo.shards[i]);
            let set = topo.replicas[i].clone();
            if let (Some(set), Some(wal)) = (set, leader.wal_handle()) {
                if let Some(p) = set.promote(&wal, Arc::clone(&leader)) {
                    wal.set_observer(None);
                    if let Some(new_wal) = p.node.wal_handle() {
                        new_wal.set_observer(Some(Arc::clone(&set) as Arc<dyn WalObserver>));
                        set.catch_up(&new_wal);
                    }
                    topo.shards[i] = Arc::clone(&p.node);
                    recovery.record_promotion(p.replayed, start.elapsed());
                    return EngineError::transient(format!(
                        "{msg}; promoted follower replica (replayed {} tail records)",
                        p.replayed
                    ));
                }
            }
        }
        let leader = self.shard(i);
        if !leader.durability_enabled() {
            return EngineError::transient(msg);
        }
        match leader.recover() {
            Ok(report) => {
                recovery.record(report.replayed_records, start.elapsed());
                EngineError::transient(format!("{msg}; shard rebuilt from log"))
            }
            Err(e) => e,
        }
    }

    /// Create a secondary index on every shard.
    pub fn create_index(&self, namespace: &str, dataset: &str, attribute: &str) -> Result<()> {
        for s in &self.topology.read().shards {
            s.create_index(namespace, dataset, attribute)?;
        }
        Ok(())
    }

    /// Hash-partition records across the shards and load them. The
    /// topology is held for reading across the whole load so a
    /// promotion or split cannot swap a leader out from under an
    /// in-flight write.
    pub fn load(
        &self,
        namespace: &str,
        dataset: &str,
        records: impl IntoIterator<Item = Record>,
    ) -> Result<()> {
        let topo = self.topology.read();
        let n = topo.shards.len();
        let mut buckets: Vec<Vec<Record>> = (0..n).map(|_| Vec::new()).collect();
        for rec in records {
            let key = rec.get_or_missing(&self.partition_key);
            buckets[topo.map.shard_of(&key)].push(rec);
        }
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (shard, bucket) in topo.shards.iter().zip(buckets) {
                let shard = Arc::clone(shard);
                handles.push(scope.spawn(move || shard.load(namespace, dataset, bucket)));
            }
            for h in handles {
                h.join().expect("shard load thread panicked")?;
            }
            Ok(())
        })
    }

    /// Total records across shards.
    pub fn dataset_len(&self, namespace: &str, dataset: &str) -> Result<usize> {
        let mut n = 0;
        for s in &self.topology.read().shards {
            n += s.dataset_len(namespace, dataset)?;
        }
        Ok(n)
    }

    /// Split hot shard `i` online: the upper half of its virtual slots
    /// moves to a new shard appended at index `num_shards()`, migrating
    /// under traffic and cutting over at a pinned LSN. Returns the new
    /// shard's index.
    ///
    /// Phase 1 runs under a **read** lock — loads and queries keep
    /// flowing (and a promotion of the source shard is excluded) while
    /// the leader's committed LSN is pinned and two fresh engines
    /// (retained and moved halves) are seeded from the pinned snapshot,
    /// records routed by slot. Phase 2 takes the **write** lock (no
    /// writer in flight), replays the committed tail past the pin to
    /// both halves, swaps the retained engine in, appends the moved
    /// one, and reassigns the slot table. Results are byte-identical
    /// across the cutover; if the pin was invalidated in the handoff
    /// window (promotion, checkpoint truncation), the split reseeds
    /// from scratch under the write lock instead of guessing.
    pub fn split_shard(&self, i: usize) -> Result<usize> {
        // Phase 1: seed both halves off the pinned snapshot, under
        // traffic.
        let (moved_slots, policy, leader, pin, retained, moved) = {
            let topo = self.topology.read();
            if i >= topo.shards.len() {
                return Err(EngineError::exec(format!("no shard {i} to split")));
            }
            let policy = topo
                .wal_policy
                .ok_or_else(|| EngineError::exec("enable durability before splitting"))?;
            let moved_slots = topo.map.split_candidates(i);
            if moved_slots.is_empty() {
                return Err(EngineError::exec(format!(
                    "shard {i} owns too few slots to split"
                )));
            }
            let leader = Arc::clone(&topo.shards[i]);
            let (ops, pin) = leader.pinned_ops()?;
            let (retained, moved) = self.seed_split_engines(&ops, &moved_slots, policy)?;
            (moved_slots, policy, leader, pin, retained, moved)
        };

        // Phase 2: cut over at the pin under the write lock.
        let mut topo = self.topology.write();
        let tail = if Arc::ptr_eq(&topo.shards[i], &leader) {
            leader
                .wal_handle()
                .and_then(|w| w.committed_tail(pin).ok().flatten())
        } else {
            None
        };
        let (retained, moved) = match tail {
            Some(tail) => {
                let ops: Vec<DurableOp> = tail.into_iter().map(|(_, op)| op).collect();
                self.apply_split_ops(&ops, &moved_slots, &retained, &moved)?;
                (retained, moved)
            }
            None => {
                let leader = Arc::clone(&topo.shards[i]);
                let (ops, _) = leader.pinned_ops()?;
                self.seed_split_engines(&ops, &moved_slots, policy)?
            }
        };
        let new_shard = topo.shards.len();
        topo.shards[i] = Arc::clone(&retained);
        topo.shards.push(Arc::clone(&moved));
        topo.map.reassign(&moved_slots, new_shard);
        // Both halves are new engines, so both need fresh replica sets;
        // the old set (tracking the pre-split leader) retires with it.
        if topo.replicas_per_shard > 0 {
            let n = topo.replicas_per_shard;
            let faults = self.fault_plan();
            topo.replicas[i] = Some(Self::replica_set_for(
                &self.config,
                i,
                &retained,
                n,
                policy,
                faults.clone(),
            )?);
            topo.replicas.push(Some(Self::replica_set_for(
                &self.config,
                new_shard,
                &moved,
                n,
                policy,
                faults,
            )?));
        } else {
            topo.replicas.push(None);
        }
        Ok(new_shard)
    }

    /// Two fresh durable engines seeded from `ops`, records routed to
    /// the moved half when their partition key hashes into
    /// `moved_slots`.
    fn seed_split_engines(
        &self,
        ops: &[DurableOp],
        moved_slots: &[usize],
        policy: CheckpointPolicy,
    ) -> Result<(Arc<Engine>, Arc<Engine>)> {
        let retained = Arc::new(Engine::new(self.config.clone()));
        retained.enable_durability(LogMedia::new(), policy)?;
        let moved = Arc::new(Engine::new(self.config.clone()));
        moved.enable_durability(LogMedia::new(), policy)?;
        self.apply_split_ops(ops, moved_slots, &retained, &moved)?;
        Ok((retained, moved))
    }

    /// Apply `ops` to both split halves: DDL goes to both, ingested
    /// records go to exactly one side by slot.
    fn apply_split_ops(
        &self,
        ops: &[DurableOp],
        moved_slots: &[usize],
        retained: &Arc<Engine>,
        moved: &Arc<Engine>,
    ) -> Result<()> {
        let mut mask = [false; SHARD_SLOTS];
        for &s in moved_slots {
            mask[s] = true;
        }
        for op in ops {
            match op {
                DurableOp::Ingest {
                    namespace,
                    name,
                    records,
                } => {
                    let (mut keep, mut go) = (Vec::new(), Vec::new());
                    for rec in records {
                        let key = rec.get_or_missing(&self.partition_key);
                        if mask[ShardMap::slot_of(&key)] {
                            go.push(rec.clone());
                        } else {
                            keep.push(rec.clone());
                        }
                    }
                    if !keep.is_empty() {
                        retained.load(namespace, name, keep)?;
                    }
                    if !go.is_empty() {
                        moved.load(namespace, name, go)?;
                    }
                }
                other => {
                    retained
                        .apply_replicated(other)
                        .map_err(EngineError::exec)?;
                    moved.apply_replicated(other).map_err(EngineError::exec)?;
                }
            }
        }
        Ok(())
    }

    /// Execute a query across the cluster with the default (no-failover)
    /// shard policy.
    pub fn query(&self, sql: &str) -> Result<Vec<Value>> {
        self.query_with(sql, &ShardPolicy::default())
    }

    /// Execute a query across the cluster under an explicit shard
    /// resilience policy (failover re-dispatch and, on opt-in, partial
    /// results from the surviving shards).
    pub fn query_with(&self, sql: &str, policy: &ShardPolicy) -> Result<Vec<Value>> {
        let compile_start = Instant::now();
        // Compile once (the coordinator's plan; every shard shares the same
        // catalog shape).
        let logical = self.shard(0).compile_to_logical(sql)?;
        let strategy = split(&logical)?;
        let compile = compile_start.elapsed();

        match strategy {
            DistributedQuery::Concat { shard_plan, limit } => {
                let (mut scatter, recovery) = self.scatter(&shard_plan, policy)?;
                let merge_start = Instant::now();
                let parts = std::mem::take(&mut scatter.parts);
                let out = merge_concat(parts, limit);
                self.record(compile, merge_start.elapsed(), scatter, &recovery);
                Ok(out)
            }
            DistributedQuery::ScalarAgg {
                shard_plan,
                aggs,
                project,
            } => {
                let (mut scatter, recovery) = self.scatter(&shard_plan, policy)?;
                let merge_start = Instant::now();
                let parts = std::mem::take(&mut scatter.parts);
                let out = merge_aggregate_parts(parts, &[], &aggs, &project);
                self.record(compile, merge_start.elapsed(), scatter, &recovery);
                out
            }
            DistributedQuery::GroupAgg {
                shard_plan,
                group_names,
                aggs,
                project,
            } => {
                let (mut scatter, recovery) = self.scatter(&shard_plan, policy)?;
                let merge_start = Instant::now();
                let parts = std::mem::take(&mut scatter.parts);
                let out = merge_aggregate_parts(parts, &group_names, &aggs, &project);
                self.record(compile, merge_start.elapsed(), scatter, &recovery);
                out
            }
            DistributedQuery::TopK {
                shard_plan,
                keys,
                limit,
                post_project,
            } => {
                let (mut scatter, recovery) = self.scatter(&shard_plan, policy)?;
                let merge_start = Instant::now();
                let parts = std::mem::take(&mut scatter.parts);
                let out = merge_topk(parts, &keys, limit, post_project.as_ref());
                self.record(compile, merge_start.elapsed(), scatter, &recovery);
                out
            }
            DistributedQuery::JoinCount {
                left,
                right,
                output,
                project,
            } => {
                let (count, merge, extract, recovery) =
                    self.repartition_join_count(&left, &right, policy)?;
                let mut rec = Record::new();
                rec.insert(output, Value::Int(count as i64));
                let row = Value::Obj(rec);
                let projected = polyframe_sqlengine::exec::project_row(&project, &row)?;
                let mut stats = QueryStats {
                    compile,
                    shard_times: extract.shard_times,
                    merge,
                    failovers: extract.failovers,
                    dropped_shards: extract.dropped_shards,
                    ..QueryStats::default()
                };
                recovery.fold_into(&mut stats);
                self.stats.record(stats);
                Ok(vec![projected])
            }
        }
    }

    fn record<T>(
        &self,
        compile: Duration,
        merge: Duration,
        scatter: ShardOutcome<T>,
        recovery: &RecoveryCounters,
    ) {
        let mut stats = QueryStats {
            compile,
            shard_times: scatter.shard_times,
            merge,
            failovers: scatter.failovers,
            dropped_shards: scatter.dropped_shards,
            ..QueryStats::default()
        };
        recovery.fold_into(&mut stats);
        self.stats.record(stats);
    }

    /// Run a logical plan on every shard, timing each shard's work, with
    /// per-shard failover under `policy`.
    fn scatter(
        &self,
        plan: &LogicalPlan,
        policy: &ShardPolicy,
    ) -> Result<(ShardOutcome<Vec<Value>>, RecoveryCounters)> {
        let faults = self.fault_plan();
        let recovery = RecoveryCounters::new();
        let out = run_resilient(
            self.num_shards(),
            self.mode,
            policy,
            EngineError::is_transient,
            |i| {
                match shard_fault(faults.as_deref(), "sql-cluster", i) {
                    Some(ShardFault::Transient(msg)) => return Err(EngineError::transient(msg)),
                    Some(ShardFault::Crash(msg)) => {
                        return Err(self.recover_shard(i, msg, &recovery))
                    }
                    None => {}
                }
                // Re-fetched per attempt: a failover after a promotion
                // must dispatch against the new leader, not the handle
                // the previous attempt crashed on.
                self.read_engine(i, policy.prefer_replica)
                    .execute_logical(plan)
            },
        )?;
        Ok((out, recovery))
    }

    /// Parallel repartition join + count over two datasets' join-key
    /// indexes. Returns `(count, merge critical path, extraction outcome)`:
    ///
    /// 1. each shard extracts its sorted join keys (index-only) for both
    ///    sides and buckets them by hash — one unit of shard work, run
    ///    with per-shard failover under `policy`;
    /// 2. one task per partition merges its left/right keys and counts
    ///    pair products — the merge critical path is the slowest partition.
    fn repartition_join_count(
        &self,
        left: &(String, String, String),
        right: &(String, String, String),
        policy: &ShardPolicy,
    ) -> Result<(usize, Duration, ShardOutcome<()>, RecoveryCounters)> {
        let n = self.num_shards();
        let recovery = RecoveryCounters::new();

        // Phase 1: per-shard key extraction + bucketing (both sides).
        type Buckets = Vec<Vec<Value>>;
        let extract_one = |shard: &Engine| -> Result<(Buckets, Buckets)> {
            let bucketize = |keys: Vec<Value>| {
                let mut buckets: Vec<Vec<Value>> = (0..n).map(|_| Vec::new()).collect();
                for k in keys {
                    let b = shard_for(&k, n);
                    buckets[b].push(k);
                }
                buckets
            };
            let l = bucketize(shard.index_keys(&left.0, &left.1, &left.2)?);
            let r = bucketize(shard.index_keys(&right.0, &right.1, &right.2)?);
            Ok((l, r))
        };

        let faults = self.fault_plan();
        let ShardOutcome {
            parts: per_shard,
            shard_times,
            failovers,
            dropped_shards,
        } = run_resilient(n, self.mode, policy, EngineError::is_transient, |i| {
            match shard_fault(faults.as_deref(), "sql-cluster", i) {
                Some(ShardFault::Transient(msg)) => return Err(EngineError::transient(msg)),
                Some(ShardFault::Crash(msg)) => return Err(self.recover_shard(i, msg, &recovery)),
                None => {}
            }
            let engine = self.read_engine(i, policy.prefer_replica);
            extract_one(&engine)
        })?;
        let extract = ShardOutcome {
            parts: Vec::new(),
            shard_times,
            failovers,
            dropped_shards,
        };

        let mut left_parts: Vec<Vec<Value>> = (0..n).map(|_| Vec::new()).collect();
        let mut right_parts: Vec<Vec<Value>> = (0..n).map(|_| Vec::new()).collect();
        for (lbuckets, rbuckets) in per_shard {
            for (i, b) in lbuckets.into_iter().enumerate() {
                left_parts[i].extend(b);
            }
            for (i, b) in rbuckets.into_iter().enumerate() {
                right_parts[i].extend(b);
            }
        }

        // Phase 2: per-partition merge counts; critical path = slowest.
        let mut count = 0usize;
        let mut merge_critical = Duration::ZERO;
        match self.mode {
            ExecMode::Threads => {
                let results: Vec<(usize, Duration)> = std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for (mut l, mut r) in left_parts.into_iter().zip(right_parts) {
                        handles.push(scope.spawn(move || {
                            let start = Instant::now();
                            l.sort_by(cmp_total);
                            r.sort_by(cmp_total);
                            (merge_count(&l, &r), start.elapsed())
                        }));
                    }
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("join thread panicked"))
                        .collect()
                });
                for (c, t) in results {
                    count += c;
                    merge_critical = merge_critical.max(t);
                }
            }
            ExecMode::Sequential => {
                for (mut l, mut r) in left_parts.into_iter().zip(right_parts) {
                    let start = Instant::now();
                    l.sort_by(cmp_total);
                    r.sort_by(cmp_total);
                    count += merge_count(&l, &r);
                    merge_critical = merge_critical.max(start.elapsed());
                }
            }
        }
        Ok((count, merge_critical, extract, recovery))
    }

    /// EXPLAIN helper: how the coordinator would distribute `sql`.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let logical = self.shard(0).compile_to_logical(sql)?;
        let d = split(&logical)?;
        Ok(match d {
            DistributedQuery::Concat { limit, .. } => format!("Concat(limit={limit:?})"),
            DistributedQuery::ScalarAgg { .. } => "ScalarAgg(partial->merge)".to_string(),
            DistributedQuery::GroupAgg { group_names, .. } => {
                format!("GroupAgg(regroup on {group_names:?})")
            }
            DistributedQuery::TopK { limit, .. } => format!("TopK(limit={limit})"),
            DistributedQuery::JoinCount { .. } => "RepartitionJoinCount".to_string(),
        })
    }
}

/// Count merge-join matches between two sorted key vectors.
fn merge_count(left: &[Value], right: &[Value]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < left.len() && j < right.len() {
        match cmp_total(&left[i], &right[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let key = &left[i];
                let mut li = 0;
                while i < left.len() && cmp_total(&left[i], key) == std::cmp::Ordering::Equal {
                    li += 1;
                    i += 1;
                }
                let mut rj = 0;
                while j < right.len() && cmp_total(&right[j], key) == std::cmp::Ordering::Equal {
                    rj += 1;
                    j += 1;
                }
                count += li * rj;
            }
        }
    }
    count
}

/// Convenience re-export of the engine error type.
pub type SqlClusterError = EngineError;

#[cfg(test)]
mod tests {
    use super::*;
    use polyframe_datamodel::record;

    fn cluster(n: usize) -> SqlCluster {
        let c = SqlCluster::new(n, EngineConfig::asterixdb(), "id");
        c.create_dataset("Test", "Users", Some("id")).unwrap();
        c.load(
            "Test",
            "Users",
            (0..100i64).map(|i| {
                record! {
                    "id" => i,
                    "grp" => i % 4,
                    "val" => i * 2,
                }
            }),
        )
        .unwrap();
        c.create_index("Test", "Users", "val").unwrap();
        c
    }

    #[test]
    fn data_is_partitioned() {
        let c = cluster(4);
        assert_eq!(c.dataset_len("Test", "Users").unwrap(), 100);
        // Each shard holds a strict subset.
        for i in 0..4 {
            let n = c.shard(i).dataset_len("Test", "Users").unwrap();
            assert!(n > 0 && n < 100, "shard {i} has {n}");
        }
    }

    #[test]
    fn count_matches_single_node() {
        let c = cluster(3);
        let rows = c.query("SELECT VALUE COUNT(*) FROM Test.Users").unwrap();
        assert_eq!(rows, vec![Value::Int(100)]);
    }

    #[test]
    fn filtered_count() {
        let c = cluster(3);
        let rows = c
            .query("SELECT VALUE COUNT(*) FROM (SELECT VALUE t FROM (SELECT VALUE t FROM Test.Users t) t WHERE t.grp = 2) t")
            .unwrap();
        assert_eq!(rows, vec![Value::Int(25)]);
    }

    #[test]
    fn group_by_regroups() {
        let c = cluster(4);
        let rows = c
            .query("SELECT grp, COUNT(grp) AS cnt FROM (SELECT VALUE t FROM Test.Users t) t GROUP BY grp")
            .unwrap();
        assert_eq!(rows.len(), 4);
        for row in rows {
            assert_eq!(row.get_path("cnt"), Value::Int(25));
        }
    }

    #[test]
    fn min_max_avg_across_shards() {
        let c = cluster(4);
        let rows = c
            .query("SELECT MAX(val) FROM (SELECT val FROM (SELECT VALUE t FROM Test.Users t) t) t")
            .unwrap();
        assert_eq!(rows[0].get_path("max"), Value::Int(198));
        let rows = c
            .query("SELECT AVG(id) FROM (SELECT id FROM (SELECT VALUE t FROM Test.Users t) t) t")
            .unwrap();
        assert_eq!(rows[0].get_path("avg"), Value::Double(49.5));
    }

    #[test]
    fn topk_merges_sorted() {
        let c = cluster(4);
        let rows = c
            .query("SELECT VALUE t FROM (SELECT VALUE t FROM Test.Users t) t ORDER BY t.id DESC LIMIT 5")
            .unwrap();
        let ids: Vec<i64> = rows
            .iter()
            .map(|r| r.get_path("id").as_i64().unwrap())
            .collect();
        assert_eq!(ids, vec![99, 98, 97, 96, 95]);
    }

    #[test]
    fn pipeline_limit() {
        let c = cluster(2);
        let rows = c
            .query("SELECT grp FROM (SELECT VALUE t FROM Test.Users t) t LIMIT 7")
            .unwrap();
        assert_eq!(rows.len(), 7);
    }

    #[test]
    fn join_count_repartitions() {
        let c = cluster(3);
        // Self-join on id: every record matches exactly once.
        let rows = c
            .query(
                "SELECT VALUE COUNT(*) FROM (SELECT l, r FROM Test.Users l JOIN Test.Users r ON l.id = r.id) t",
            )
            .unwrap();
        assert_eq!(rows, vec![Value::Int(100)]);
        assert_eq!(
            c.explain("SELECT VALUE COUNT(*) FROM (SELECT l, r FROM Test.Users l JOIN Test.Users r ON l.id = r.id) t")
                .unwrap(),
            "RepartitionJoinCount"
        );
    }

    #[test]
    fn results_agree_with_single_shard() {
        let single = cluster(1);
        let multi = cluster(4);
        for q in [
            "SELECT VALUE COUNT(*) FROM Test.Users",
            "SELECT MIN(val) FROM (SELECT val FROM (SELECT VALUE t FROM Test.Users t) t) t",
            "SELECT grp, COUNT(grp) AS cnt FROM (SELECT VALUE t FROM Test.Users t) t GROUP BY grp",
        ] {
            assert_eq!(single.query(q).unwrap(), multi.query(q).unwrap(), "{q}");
        }
    }

    #[test]
    fn failover_recovers_from_injected_faults() {
        let baseline = cluster(3)
            .query("SELECT VALUE COUNT(*) FROM Test.Users")
            .unwrap();
        let c = cluster(3);
        let plan = Arc::new(FaultPlan::new(5).with_error_rate(1.0).with_max_faults(2));
        c.set_fault_plan(Some(Arc::clone(&plan)));
        let rows = c
            .query_with(
                "SELECT VALUE COUNT(*) FROM Test.Users",
                &ShardPolicy::failover(3),
            )
            .unwrap();
        assert_eq!(rows, baseline);
        assert_eq!(plan.faults_injected(), 2);
        let stats = c.last_stats().unwrap();
        assert!(stats.failovers > 0);
        assert!(stats.dropped_shards.is_empty());
    }

    #[test]
    fn partial_results_drop_failed_shard_on_opt_in() {
        let c = cluster(4);
        c.set_fault_plan(Some(Arc::new(
            FaultPlan::new(1).with_error_rate(1.0).for_sites("shard[2]"),
        )));
        // Without the explicit opt-in, a dead shard fails the query.
        assert!(c
            .query_with(
                "SELECT VALUE COUNT(*) FROM Test.Users",
                &ShardPolicy::failover(1),
            )
            .is_err());
        // With it, the count covers the surviving shards and the gap is
        // recorded.
        let rows = c
            .query_with(
                "SELECT VALUE COUNT(*) FROM Test.Users",
                &ShardPolicy::failover(1).with_allow_partial(true),
            )
            .unwrap();
        let lost = c.shard(2).dataset_len("Test", "Users").unwrap() as i64;
        assert_eq!(rows, vec![Value::Int(100 - lost)]);
        let stats = c.last_stats().unwrap();
        assert_eq!(stats.dropped_shards, vec![2]);
        assert_eq!(stats.shard_times.len(), 4);
    }

    #[test]
    fn crashed_shard_rebuilds_from_its_log() {
        let c = SqlCluster::new(3, EngineConfig::asterixdb(), "id");
        c.enable_durability(CheckpointPolicy::never()).unwrap();
        c.create_dataset("Test", "Users", Some("id")).unwrap();
        c.load(
            "Test",
            "Users",
            (0..100i64).map(|i| record! {"id" => i, "grp" => i % 4}),
        )
        .unwrap();
        // Kill shard 1 on its first dispatch: it must rebuild from its
        // own log and the failover re-dispatch then sees the full data.
        c.set_fault_plan(Some(Arc::new(FaultPlan::crash_at(
            9,
            "sql-cluster/shard[1]",
            0,
        ))));
        let rows = c
            .query_with(
                "SELECT VALUE COUNT(*) FROM Test.Users",
                &ShardPolicy::failover(2),
            )
            .unwrap();
        assert_eq!(rows, vec![Value::Int(100)]);
        let stats = c.last_stats().unwrap();
        assert_eq!(stats.recovered_shards, 1);
        assert!(
            stats.replayed_records > 0,
            "shard 1 should replay its create+load records"
        );
        let spans = stats.to_spans();
        let recovery = spans
            .iter()
            .find(|s| s.name() == "recovery")
            .expect("recovery span in the trace tree");
        assert_eq!(recovery.metric("recovered_shards"), Some(1));
        assert_eq!(
            recovery.metric("replayed_records"),
            Some(stats.replayed_records as i64)
        );
    }

    #[test]
    fn crash_without_durability_is_a_plain_transient() {
        let c = cluster(3);
        c.set_fault_plan(Some(Arc::new(FaultPlan::crash_at(
            9,
            "sql-cluster/shard[1]",
            0,
        ))));
        // No log to rebuild from: the crash degrades to a transient
        // failure, failover still answers, nothing claims recovery.
        let rows = c
            .query_with(
                "SELECT VALUE COUNT(*) FROM Test.Users",
                &ShardPolicy::failover(2),
            )
            .unwrap();
        assert_eq!(rows, vec![Value::Int(100)]);
        let stats = c.last_stats().unwrap();
        assert_eq!(stats.recovered_shards, 0);
        assert!(stats.to_spans().iter().all(|s| s.name() != "recovery"));
    }

    fn durable_cluster(n: usize, records: i64) -> SqlCluster {
        let c = SqlCluster::new(n, EngineConfig::asterixdb(), "id");
        c.enable_durability(CheckpointPolicy::never()).unwrap();
        c.create_dataset("Test", "Users", Some("id")).unwrap();
        c.load(
            "Test",
            "Users",
            (0..records).map(|i| record! {"id" => i, "grp" => i % 4}),
        )
        .unwrap();
        c
    }

    #[test]
    fn crashed_shard_promotes_a_follower_instead_of_rebuilding() {
        let c = durable_cluster(3, 100);
        c.enable_replication(2).unwrap();
        // Followers are fully caught up before the crash.
        for shard in c.replication_status() {
            assert_eq!(shard.len(), 2);
            assert!(shard.iter().all(|s| s.fresh && s.lag == 0), "{shard:?}");
        }
        c.set_fault_plan(Some(Arc::new(FaultPlan::crash_at(
            9,
            "sql-cluster/shard[1]",
            0,
        ))));
        let rows = c
            .query_with(
                "SELECT VALUE COUNT(*) FROM Test.Users",
                &ShardPolicy::failover(2),
            )
            .unwrap();
        assert_eq!(rows, vec![Value::Int(100)]);
        let stats = c.last_stats().unwrap();
        assert_eq!(stats.promotions, 1, "crash healed by promotion");
        assert_eq!(stats.recovered_shards, 0, "no full rebuild happened");
        // Everything was shipped before the crash, so the promotion
        // replayed nothing.
        assert_eq!(stats.replayed_records, 0);
        let spans = stats.to_spans();
        let recovery = spans
            .iter()
            .find(|s| s.name() == "recovery")
            .expect("promotion shows up in the recovery span");
        assert_eq!(recovery.metric("promotions"), Some(1));
        // The demoted ex-leader joined the set as a stale follower;
        // healing rebuilds it off the critical path.
        assert_eq!(c.heal_replicas(), 1);
        let status = c.replication_status();
        assert!(status[1].iter().all(|s| s.fresh && s.lag == 0));
    }

    #[test]
    fn replica_reads_serve_from_caught_up_followers() {
        let baseline = durable_cluster(2, 80);
        let c = durable_cluster(2, 80);
        c.enable_replication(1).unwrap();
        let policy = ShardPolicy::default().with_prefer_replica(true);
        let q = "SELECT VALUE COUNT(*) FROM Test.Users";
        assert_eq!(
            c.query_with(q, &policy).unwrap(),
            baseline.query(q).unwrap()
        );
        // A stalled (lagging) follower is never read: lose every shipped
        // frame on shard 0, write through it, and the query must fall
        // back to the leader and still see the new rows.
        c.set_fault_plan(Some(Arc::new(
            FaultPlan::new(3)
                .with_error_rate(1.0)
                .for_sites("shard[0]/wal/ship"),
        )));
        c.load(
            "Test",
            "Users",
            (80..160i64).map(|i| record! {"id" => i, "grp" => i % 4}),
        )
        .unwrap();
        c.set_fault_plan(None);
        assert_eq!(c.query_with(q, &policy).unwrap(), vec![Value::Int(160)]);
        let lagging: usize = c
            .replication_status()
            .iter()
            .flatten()
            .filter(|s| s.lag > 0)
            .count();
        assert!(lagging >= 1, "shard 0's follower should have stalled");
        // Healing drains the lag and replica reads resume.
        c.heal_replicas();
        assert!(c
            .replication_status()
            .iter()
            .flatten()
            .all(|s| s.fresh && s.lag == 0));
    }

    #[test]
    fn split_shard_preserves_results_and_moves_only_split_slots() {
        let c = durable_cluster(2, 200);
        c.create_index("Test", "Users", "grp").unwrap();
        let q =
            "SELECT grp, COUNT(grp) AS cnt FROM (SELECT VALUE t FROM Test.Users t) t GROUP BY grp";
        let before = c.query(q).unwrap();
        let count_before = c.shard(0).dataset_len("Test", "Users").unwrap();

        let new_shard = c.split_shard(0).unwrap();
        assert_eq!(new_shard, 2);
        assert_eq!(c.num_shards(), 3);
        // The split shard's records moved only between the two halves.
        let kept = c.shard(0).dataset_len("Test", "Users").unwrap();
        let moved = c.shard(2).dataset_len("Test", "Users").unwrap();
        assert_eq!(kept + moved, count_before);
        assert!(kept > 0 && moved > 0, "kept={kept} moved={moved}");
        assert_eq!(c.dataset_len("Test", "Users").unwrap(), 200);
        // Byte-identical results across the cutover.
        assert_eq!(c.query(q).unwrap(), before);
        // New writes route by the updated slot table.
        c.load(
            "Test",
            "Users",
            (200..260i64).map(|i| record! {"id" => i, "grp" => i % 4}),
        )
        .unwrap();
        assert_eq!(c.dataset_len("Test", "Users").unwrap(), 260);
        assert_eq!(
            c.query("SELECT VALUE COUNT(*) FROM Test.Users").unwrap(),
            vec![Value::Int(260)]
        );
    }

    #[test]
    fn split_shard_reseeds_replicas_for_both_halves() {
        let c = durable_cluster(2, 120);
        c.enable_replication(1).unwrap();
        let new_shard = c.split_shard(1).unwrap();
        let status = c.replication_status();
        assert_eq!(status.len(), 3);
        for (i, shard) in status.iter().enumerate() {
            assert_eq!(shard.len(), 1, "shard {i} keeps one replica");
            assert!(
                shard.iter().all(|s| s.fresh && s.lag == 0),
                "shard {i}: {shard:?}"
            );
        }
        // Replica reads still answer correctly on the split topology.
        assert_eq!(
            c.query_with(
                "SELECT VALUE COUNT(*) FROM Test.Users",
                &ShardPolicy::default().with_prefer_replica(true),
            )
            .unwrap(),
            vec![Value::Int(120)]
        );
        // A crash on the new shard promotes its replica.
        c.set_fault_plan(Some(Arc::new(FaultPlan::crash_at(
            11,
            format!("sql-cluster/shard[{new_shard}]"),
            0,
        ))));
        let rows = c
            .query_with(
                "SELECT VALUE COUNT(*) FROM Test.Users",
                &ShardPolicy::failover(2),
            )
            .unwrap();
        assert_eq!(rows, vec![Value::Int(120)]);
        assert_eq!(c.last_stats().unwrap().promotions, 1);
    }

    #[test]
    fn splitting_an_unsplittable_shard_fails_cleanly() {
        let c = durable_cluster(1, 10);
        // Shard 0 owns all 64 slots: split until a shard runs out.
        assert!(c.split_shard(0).is_ok());
        assert!(c.split_shard(5).is_err(), "no shard 5 yet");
        let undurable = SqlCluster::new(2, EngineConfig::asterixdb(), "id");
        assert!(undurable.split_shard(0).is_err(), "split needs durability");
    }

    #[test]
    fn both_modes_agree_and_record_stats() {
        for mode in [ExecMode::Threads, ExecMode::Sequential] {
            let c = SqlCluster::with_mode(3, EngineConfig::asterixdb(), "id", mode);
            c.create_dataset("Test", "Users", Some("id")).unwrap();
            c.load(
                "Test",
                "Users",
                (0..60i64).map(|i| record! {"id" => i, "grp" => i % 3}),
            )
            .unwrap();
            let rows = c.query("SELECT VALUE COUNT(*) FROM Test.Users").unwrap();
            assert_eq!(rows, vec![Value::Int(60)], "{mode:?}");
            let stats = c.take_stats();
            assert_eq!(stats.len(), 1);
            assert_eq!(stats[0].shard_times.len(), 3);
            assert!(stats[0].simulated_wall() > Duration::ZERO);
            assert!(c.take_stats().is_empty());
        }
    }
}
