#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! # polyframe-cluster
//!
//! Sharded, scatter/gather distributed execution over the PolyFrame
//! substrates — the multi-node tier of the paper's evaluation (Figs. 9/10):
//! an AsterixDB cluster, a Greenplum cluster (PostgreSQL 9.5 segments) and
//! a sharded MongoDB ("mongos").
//!
//! Each shard is a full engine instance owning a hash partition of the
//! data; shard work runs on one OS thread per shard (the stand-in for one
//! EC2 node per shard), and only the merge step is serial. The merge
//! protocols come from the substrates' `distributed` modules:
//!
//! * streaming pipelines → concatenate (+ limit),
//! * scalar aggregates → partial states, merge, finalize,
//! * group-by → shard-local partial groups, coordinator re-group,
//! * sort + limit → shard-local top-k, coordinator merge sort,
//! * join + count → parallel **repartition join** over index keys
//!   (SQL engines), and a hard **error** for sharded MongoDB `$lookup`
//!   (the paper could not run expression 12 on distributed MongoDB).
//!
//! Shard dispatch is resilient ([`resilience`]): transiently-failing
//! shards fail over (re-dispatch), and with explicit opt-in a query
//! degrades to partial results from the healthy shards, with the gap
//! recorded in [`QueryStats::dropped_shards`].
//!
//! The elastic tier ([`replicate`]) gives each shard WAL-shipped
//! follower replicas: a crashed leader is healed by *promoting* its
//! freshest follower (replaying only the committed-but-unshipped tail)
//! instead of rebuilding from scratch, snapshot reads can be routed to
//! caught-up replicas ([`ShardPolicy::prefer_replica`]), and a hot SQL
//! shard can be split in two online, cutting over at a pinned LSN with
//! byte-identical results.

pub mod doc_cluster;
pub mod partition;
pub mod replicate;
pub mod resilience;
pub mod sql_cluster;
pub mod stats;

pub use doc_cluster::MongoCluster;
pub use partition::{shard_for, ShardMap, SHARD_SLOTS};
pub use replicate::{Promotion, ReplicaNode, ReplicaSet, ReplicaStatus};
pub use resilience::{run_resilient, shard_fault, ShardFault, ShardOutcome, ShardPolicy};
pub use sql_cluster::SqlCluster;
pub use stats::{ExecMode, QueryStats, RecoveryCounters};
