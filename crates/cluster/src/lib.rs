#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! # polyframe-cluster
//!
//! Sharded, scatter/gather distributed execution over the PolyFrame
//! substrates — the multi-node tier of the paper's evaluation (Figs. 9/10):
//! an AsterixDB cluster, a Greenplum cluster (PostgreSQL 9.5 segments) and
//! a sharded MongoDB ("mongos").
//!
//! Each shard is a full engine instance owning a hash partition of the
//! data; shard work runs on one OS thread per shard (the stand-in for one
//! EC2 node per shard), and only the merge step is serial. The merge
//! protocols come from the substrates' `distributed` modules:
//!
//! * streaming pipelines → concatenate (+ limit),
//! * scalar aggregates → partial states, merge, finalize,
//! * group-by → shard-local partial groups, coordinator re-group,
//! * sort + limit → shard-local top-k, coordinator merge sort,
//! * join + count → parallel **repartition join** over index keys
//!   (SQL engines), and a hard **error** for sharded MongoDB `$lookup`
//!   (the paper could not run expression 12 on distributed MongoDB).
//!
//! Shard dispatch is resilient ([`resilience`]): transiently-failing
//! shards fail over (re-dispatch), and with explicit opt-in a query
//! degrades to partial results from the healthy shards, with the gap
//! recorded in [`QueryStats::dropped_shards`].

pub mod doc_cluster;
pub mod partition;
pub mod resilience;
pub mod sql_cluster;
pub mod stats;

pub use doc_cluster::MongoCluster;
pub use partition::shard_for;
pub use resilience::{run_resilient, shard_fault, ShardFault, ShardOutcome, ShardPolicy};
pub use sql_cluster::SqlCluster;
pub use stats::{ExecMode, QueryStats, RecoveryCounters};
