//! WAL-shipped follower replicas and deterministic crash promotion.
//!
//! The per-shard write-ahead log is already a serialized, CRC-framed op
//! stream; this module turns it into a replication log. A
//! [`ReplicaSet`] installs itself as the leader WAL's
//! [`WalObserver`]: every committed frame is *shipped* to each follower
//! in LSN order (the observer runs under the WAL's state lock, so
//! deliveries can never reorder or race) and applied through the
//! follower's own durable path. Followers dedupe by LSN — a follower
//! whose cursor does not match the shipped frame simply stalls and
//! tracks lag until [`ReplicaSet::catch_up`] replays the missing frames
//! straight off the leader's media.
//!
//! **Promotion.** When a shard leader crashes, the freshest follower is
//! promoted in place of today's full rebuild-from-log: only the
//! committed-but-unshipped tail (`Wal::committed_tail` from the
//! follower's cursor) is replayed, which is bounded by the replication
//! lag rather than by the shard's entire history. The ex-leader is
//! demoted to a *stale* follower — its media holds everything, so
//! [`ReplicaSet::heal_stale`] can rebuild it from its own log off the
//! critical path and re-enlist it.
//!
//! **LSN spaces.** Every cursor is kept in the *current leader's* LSN
//! space. A follower seeded from a compacted snapshot
//! ([`ReplicaNode::pinned_ops`]) has a shorter private history than the
//! leader, so on promotion the surviving cursors are rebased into the
//! new leader's clock; a follower so far behind that its position
//! cannot be expressed in the new space is dropped (the frames it needs
//! were compacted away on every surviving node).
//!
//! **Fault sites.** Shipping and follower apply each consult the
//! cluster's `FaultPlan` deterministically, at
//! `<cluster>/shard[i]/wal/ship[j]` and
//! `<cluster>/shard[i]/replica/apply[j]`. Any injected fault except
//! latency loses that frame for that follower (it stalls, exactly like
//! a dropped packet); latency delivers after the delay.

use polyframe_docstore::DocStore;
use polyframe_observe::sync::Mutex;
use polyframe_observe::{FaultKind, FaultPlan};
use polyframe_sqlengine::Engine;
use polyframe_storage::wal::{DurableOp, Wal, WalObserver};
use std::sync::Arc;

/// A store that can serve as a shard leader or follower replica.
///
/// Implemented by the SQL engine and the document store; both route
/// shipped ops through their normal public mutation APIs, so a follower
/// is a fully durable, independently queryable node — promotion is a
/// pointer swap, not a rebuild.
pub trait ReplicaNode: Send + Sync {
    /// Apply one shipped op through this node's own durable path.
    /// Shipped `Ingest` records are fully formed (ids already
    /// assigned), so replay is deterministic.
    fn apply_replicated(&self, op: &DurableOp) -> Result<(), String>;
    /// The node's WAL, when durability is enabled.
    fn wal_handle(&self) -> Option<Arc<Wal>>;
    /// Wipe volatile state and rebuild it from the node's own log.
    fn rebuild_from_log(&self) -> Result<(), String>;
    /// Atomically pin the node's compacted state and its log position.
    fn pinned_ops(&self) -> Result<(Vec<DurableOp>, u64), String>;
}

impl ReplicaNode for Engine {
    fn apply_replicated(&self, op: &DurableOp) -> Result<(), String> {
        match op {
            DurableOp::Create {
                namespace,
                name,
                key,
            } => self
                .create_dataset(namespace, name, key.as_deref())
                .map_err(|e| e.to_string()),
            DurableOp::Ingest {
                namespace,
                name,
                records,
            } => self
                .load(namespace, name, records.clone())
                .map_err(|e| e.to_string()),
            DurableOp::Index {
                namespace,
                name,
                attribute,
            } => self
                .create_index(namespace, name, attribute)
                .map(|_| ())
                .map_err(|e| e.to_string()),
        }
    }

    fn wal_handle(&self) -> Option<Arc<Wal>> {
        Engine::wal_handle(self)
    }

    fn rebuild_from_log(&self) -> Result<(), String> {
        self.recover().map(|_| ()).map_err(|e| e.to_string())
    }

    fn pinned_ops(&self) -> Result<(Vec<DurableOp>, u64), String> {
        Engine::pinned_ops(self).map_err(|e| e.to_string())
    }
}

impl ReplicaNode for DocStore {
    fn apply_replicated(&self, op: &DurableOp) -> Result<(), String> {
        match op {
            DurableOp::Create { name, .. } => {
                self.create_collection(name).map_err(|e| e.to_string())
            }
            // Shipped records carry their `_id`s, which `insert_many`
            // preserves — the follower never re-assigns ids.
            DurableOp::Ingest { name, records, .. } => self
                .insert_many(name, records.iter().cloned())
                .map(|_| ())
                .map_err(|e| e.to_string()),
            DurableOp::Index {
                name, attribute, ..
            } => self
                .create_index(name, attribute)
                .map(|_| ())
                .map_err(|e| e.to_string()),
        }
    }

    fn wal_handle(&self) -> Option<Arc<Wal>> {
        DocStore::wal_handle(self)
    }

    fn rebuild_from_log(&self) -> Result<(), String> {
        self.recover().map(|_| ()).map_err(|e| e.to_string())
    }

    fn pinned_ops(&self) -> Result<(Vec<DurableOp>, u64), String> {
        DocStore::pinned_ops(self).map_err(|e| e.to_string())
    }
}

struct Follower<N> {
    node: Arc<N>,
    /// Next leader-LSN this follower expects.
    cursor: u64,
    /// `false` = stale (demoted ex-leader or failed apply): skipped by
    /// shipping, reads, and promotion until [`ReplicaSet::heal_stale`].
    fresh: bool,
}

/// One shard's replication state: the followers of the current leader.
///
/// Installed on the leader's WAL as its [`WalObserver`]; moved to the
/// successor's WAL on promotion.
pub struct ReplicaSet<N> {
    cluster: String,
    shard: usize,
    followers: Mutex<Vec<Follower<N>>>,
    faults: Mutex<Option<Arc<FaultPlan>>>,
}

/// Per-replica health, reported by [`ReplicaSet::status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Index of the replica within its set.
    pub replica: usize,
    /// Next leader-LSN the replica expects.
    pub cursor: u64,
    /// Committed frames the replica has not yet applied.
    pub lag: u64,
    /// Whether the replica is in rotation (not demoted/stale).
    pub fresh: bool,
}

/// A successful crash promotion.
pub struct Promotion<N> {
    /// The promoted follower — the shard's new leader.
    pub node: Arc<N>,
    /// Committed-but-unshipped tail records replayed to catch the
    /// follower up to the crashed leader's committed end. Bounded by
    /// replication lag, not by the shard's history — the whole point.
    pub replayed: u64,
}

impl<N: ReplicaNode> ReplicaSet<N> {
    /// An empty replica set for `cluster`'s shard `shard`.
    pub fn new(cluster: impl Into<String>, shard: usize) -> ReplicaSet<N> {
        ReplicaSet {
            cluster: cluster.into(),
            shard,
            followers: Mutex::new(Vec::new()),
            faults: Mutex::new(None),
        }
    }

    /// Install (or clear) the fault plan consulted at the shipping and
    /// apply sites.
    pub fn set_faults(&self, plan: Option<Arc<FaultPlan>>) {
        *self.faults.lock() = plan;
    }

    /// Number of followers (fresh and stale).
    pub fn follower_count(&self) -> usize {
        self.followers.lock().len()
    }

    /// Seed `node` from `leader`'s pinned snapshot and enlist it. Frames
    /// committed between the pin and the enlistment are missed (the
    /// follower stalls at the pin); run [`ReplicaSet::catch_up`]
    /// afterwards to drain them off the leader's media.
    pub fn add_follower(&self, leader: &N, node: Arc<N>) -> Result<(), String> {
        let (ops, pin) = leader.pinned_ops()?;
        for op in &ops {
            node.apply_replicated(op)?;
        }
        self.followers.lock().push(Follower {
            node,
            cursor: pin,
            fresh: true,
        });
        Ok(())
    }

    /// Replay committed frames a stalled follower missed (shipping
    /// faults, or the add-follower seeding window) straight off the
    /// leader's media. A follower whose missing range was compacted
    /// away by a checkpoint stays stalled — only a reseed can save it.
    pub fn catch_up(&self, leader_wal: &Wal) {
        let mut followers = self.followers.lock();
        for f in followers.iter_mut() {
            if !f.fresh {
                continue;
            }
            let Ok(Some(tail)) = leader_wal.committed_tail(f.cursor) else {
                continue;
            };
            for (lsn, op) in &tail {
                if f.node.apply_replicated(op).is_err() {
                    f.fresh = false;
                    break;
                }
                f.cursor = lsn + 1;
            }
        }
    }

    /// Per-replica cursor, lag, and freshness against the leader clock.
    /// Read `leader_next_lsn` *before* calling (never while holding
    /// other replication locks).
    pub fn status(&self, leader_next_lsn: u64) -> Vec<ReplicaStatus> {
        self.followers
            .lock()
            .iter()
            .enumerate()
            .map(|(i, f)| ReplicaStatus {
                replica: i,
                cursor: f.cursor,
                lag: leader_next_lsn.saturating_sub(f.cursor),
                fresh: f.fresh,
            })
            .collect()
    }

    /// A fresh follower fully caught up with the leader clock, for
    /// routing snapshot reads off the leader. `None` when every replica
    /// lags (the read must go to the leader for correctness).
    pub fn read_replica(&self, leader_next_lsn: u64) -> Option<Arc<N>> {
        self.followers
            .lock()
            .iter()
            .find(|f| f.fresh && f.cursor == leader_next_lsn)
            .map(|f| Arc::clone(&f.node))
    }

    /// Promote the freshest follower after the leader crashed. Replays
    /// only the committed-but-unshipped tail from the crashed leader's
    /// media, removes the successor from the set, rebases the surviving
    /// cursors into the successor's LSN space, and demotes the
    /// ex-leader to a stale follower. Returns `None` when no follower
    /// can be caught up (no replicas, or every candidate's missing
    /// range was compacted away) — the caller falls back to a full
    /// rebuild.
    pub fn promote(&self, crashed_wal: &Wal, demoted: Arc<N>) -> Option<Promotion<N>> {
        let mut followers = self.followers.lock();
        loop {
            let idx = followers
                .iter()
                .enumerate()
                .filter(|(_, f)| f.fresh)
                .max_by_key(|(_, f)| f.cursor)
                .map(|(i, _)| i)?;
            let cursor = followers[idx].cursor;
            let tail = match crashed_wal.committed_tail(cursor) {
                Ok(Some(tail)) => tail,
                // Gap (compacted range) or unreadable media: this
                // candidate cannot be caught up frame-by-frame.
                Ok(None) | Err(_) => {
                    followers[idx].fresh = false;
                    continue;
                }
            };
            let mut replayed = 0u64;
            let caught_up = {
                let f = &mut followers[idx];
                tail.iter().all(|(lsn, op)| {
                    if f.node.apply_replicated(op).is_err() {
                        f.fresh = false;
                        return false;
                    }
                    f.cursor = lsn + 1;
                    replayed += 1;
                    true
                })
            };
            if !caught_up {
                continue;
            }
            // The crashed leader's committed end, in its own LSN space,
            // and the successor's clock for the same state.
            let end = cursor + tail.len() as u64;
            let new_leader = followers.remove(idx);
            let successor_clock = match new_leader.node.wal_handle() {
                Some(w) => w.next_lsn(),
                None => end,
            };
            followers.retain_mut(|g| match successor_clock.checked_sub(end - g.cursor) {
                Some(rebased) => {
                    g.cursor = rebased;
                    true
                }
                // Too far behind to express in the successor's
                // (compacted) history: unrecoverable, drop it.
                None => false,
            });
            followers.push(Follower {
                node: demoted,
                cursor: successor_clock,
                fresh: false,
            });
            return Some(Promotion {
                node: new_leader.node,
                replayed,
            });
        }
    }

    /// Rebuild stale followers from their own logs (off the query
    /// critical path) and re-enlist them. Returns how many healed.
    pub fn heal_stale(&self) -> usize {
        let mut followers = self.followers.lock();
        let mut healed = 0;
        for f in followers.iter_mut() {
            if !f.fresh && f.node.rebuild_from_log().is_ok() {
                f.fresh = true;
                healed += 1;
            }
        }
        healed
    }

    /// Draw a fault for follower `j` at `<cluster>/shard[i]/<point>[j]`.
    /// Latency sleeps inline (the frame still delivers); anything else
    /// loses the frame for that follower.
    fn frame_lost(&self, plan: &Option<Arc<FaultPlan>>, point: &str, j: usize) -> bool {
        let Some(plan) = plan else { return false };
        let site = format!("{}/shard[{}]/{point}[{j}]", self.cluster, self.shard);
        match plan.next_fault(&site) {
            None => false,
            Some(FaultKind::Latency(d)) => {
                std::thread::sleep(d);
                false
            }
            Some(_) => true,
        }
    }
}

impl<N: ReplicaNode> WalObserver for ReplicaSet<N> {
    fn frame_committed(&self, lsn: u64, op: &DurableOp) {
        let plan = self.faults.lock().clone();
        let mut followers = self.followers.lock();
        for (j, f) in followers.iter_mut().enumerate() {
            // LSN dedupe/ordering: a follower that already has this
            // frame, or is missing an earlier one, stalls untouched.
            if !f.fresh || f.cursor != lsn {
                continue;
            }
            if self.frame_lost(&plan, "wal/ship", j) {
                continue;
            }
            if self.frame_lost(&plan, "replica/apply", j) {
                continue;
            }
            if f.node.apply_replicated(op).is_ok() {
                f.cursor = lsn + 1;
            } else {
                f.fresh = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyframe_datamodel::record;
    use polyframe_sqlengine::EngineConfig;
    use polyframe_storage::{CheckpointPolicy, LogMedia};

    fn durable_engine() -> Arc<Engine> {
        let e = Arc::new(Engine::new(EngineConfig::asterixdb()));
        e.enable_durability(LogMedia::new(), CheckpointPolicy::never())
            .expect("durability");
        e
    }

    fn wire(leader: &Arc<Engine>, set: &Arc<ReplicaSet<Engine>>) {
        leader
            .wal_handle()
            .expect("leader wal")
            .set_observer(Some(Arc::clone(set) as Arc<dyn WalObserver>));
    }

    fn seeded(n_followers: usize) -> (Arc<Engine>, Arc<ReplicaSet<Engine>>) {
        let leader = durable_engine();
        let set = Arc::new(ReplicaSet::new("test-cluster", 0));
        for _ in 0..n_followers {
            set.add_follower(leader.as_ref(), durable_engine())
                .expect("seed follower");
        }
        wire(&leader, &set);
        (leader, set)
    }

    fn load_users(e: &Engine, ids: std::ops::Range<i64>) {
        e.create_dataset("Test", "Users", Some("id")).expect("ddl");
        e.load(
            "Test",
            "Users",
            ids.map(|i| record! {"id" => i, "grp" => i % 3}),
        )
        .expect("load");
    }

    #[test]
    fn followers_mirror_the_leader_byte_for_byte() {
        let (leader, set) = seeded(2);
        load_users(&leader, 0..50);
        leader.create_index("Test", "Users", "grp").expect("index");
        let want = polyframe_storage::encode_ops(&leader.durable_snapshot());
        let lsn = leader.wal_handle().expect("wal").next_lsn();
        for s in set.status(lsn) {
            assert!(s.fresh);
            assert_eq!(s.lag, 0, "replica {} lags", s.replica);
        }
        let replica = set.read_replica(lsn).expect("caught-up replica");
        assert_eq!(
            polyframe_storage::encode_ops(&replica.durable_snapshot()),
            want
        );
    }

    #[test]
    fn late_follower_seeds_from_snapshot_and_catches_up() {
        let (leader, set) = seeded(0);
        load_users(&leader, 0..30);
        set.add_follower(leader.as_ref(), durable_engine())
            .expect("late follower");
        leader
            .load("Test", "Users", vec![record! {"id" => 99, "grp" => 0}])
            .expect("post-seed load");
        let lsn = leader.wal_handle().expect("wal").next_lsn();
        assert_eq!(set.status(lsn)[0].lag, 0);
        let replica = set.read_replica(lsn).expect("caught up");
        assert_eq!(replica.dataset_len("Test", "Users").expect("len"), 31);
    }

    #[test]
    fn ship_fault_stalls_the_follower_until_catch_up() {
        let (leader, set) = seeded(1);
        // Lose the second shipped frame for follower 0.
        set.set_faults(Some(Arc::new(FaultPlan::crash_at(
            5,
            "test-cluster/shard[0]/wal/ship[0]",
            1,
        ))));
        load_users(&leader, 0..10); // frame 0 = create, frame 1 = ingest (lost)
        let wal = leader.wal_handle().expect("wal");
        let status = set.status(wal.next_lsn());
        assert_eq!(status[0].lag, 1, "lost frame must show as lag");
        assert!(status[0].fresh);
        set.catch_up(&wal);
        assert_eq!(set.status(wal.next_lsn())[0].lag, 0);
        let replica = set.read_replica(wal.next_lsn()).expect("caught up");
        assert_eq!(replica.dataset_len("Test", "Users").expect("len"), 10);
    }

    #[test]
    fn promotion_replays_only_the_unshipped_tail() {
        let (leader, set) = seeded(2);
        load_users(&leader, 0..40);
        // Lose the final frame for both followers, then "crash" the
        // leader: the tail to replay is exactly that one frame.
        set.set_faults(Some(Arc::new(
            FaultPlan::new(3).with_error_rate(1.0).for_sites("wal/ship"),
        )));
        leader
            .load("Test", "Users", vec![record! {"id" => 777, "grp" => 1}])
            .expect("unshipped load");
        set.set_faults(None);
        let wal = leader.wal_handle().expect("wal");
        let promo = set
            .promote(&wal, Arc::clone(&leader))
            .expect("promotable follower");
        assert_eq!(promo.replayed, 1, "only the lost frame is replayed");
        assert_eq!(
            polyframe_storage::encode_ops(&promo.node.durable_snapshot()),
            polyframe_storage::encode_ops(&leader.durable_snapshot()),
        );
        // One live follower survives (rebased), plus the stale ex-leader.
        let new_wal = promo.node.wal_handle().expect("wal");
        let lsn = new_wal.next_lsn();
        let status = set.status(lsn);
        assert_eq!(status.len(), 2);
        assert_eq!(status.iter().filter(|s| s.fresh).count(), 1);
        // The survivor still lacks the lost frame; the new leader's own
        // log carries it, so a catch-up drains the lag.
        assert_eq!(status.iter().find(|s| s.fresh).expect("survivor").lag, 1);
        set.catch_up(&new_wal);
        assert!(set.status(lsn).iter().all(|s| s.lag == 0));
        assert_eq!(set.heal_stale(), 1);
        assert_eq!(set.status(lsn).iter().filter(|s| s.fresh).count(), 2);
    }

    #[test]
    fn promotion_without_followers_reports_none() {
        let (leader, set) = seeded(0);
        load_users(&leader, 0..5);
        let wal = leader.wal_handle().expect("wal");
        assert!(set.promote(&wal, Arc::clone(&leader)).is_none());
    }

    #[test]
    fn apply_fault_sites_are_deterministic() {
        let run = || {
            let (leader, set) = seeded(1);
            set.set_faults(Some(Arc::new(
                FaultPlan::new(11)
                    .with_error_rate(0.5)
                    .for_sites("replica/apply"),
            )));
            load_users(&leader, 0..20);
            let lsn = leader.wal_handle().expect("wal").next_lsn();
            set.status(lsn)[0].lag
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn doc_store_follower_replicates_inserts() {
        let leader = Arc::new(DocStore::new());
        leader
            .enable_durability(LogMedia::new(), CheckpointPolicy::never())
            .expect("durability");
        let set: Arc<ReplicaSet<DocStore>> = Arc::new(ReplicaSet::new("test-mongo", 0));
        let follower = Arc::new(DocStore::new());
        follower
            .enable_durability(LogMedia::new(), CheckpointPolicy::never())
            .expect("durability");
        set.add_follower(leader.as_ref(), follower).expect("seed");
        leader
            .wal_handle()
            .expect("wal")
            .set_observer(Some(Arc::clone(&set) as Arc<dyn WalObserver>));
        leader.create_collection("c").expect("ddl");
        leader
            .insert_many("c", (0..25i64).map(|i| record! {"x" => i}))
            .expect("insert");
        let lsn = leader.wal_handle().expect("wal").next_lsn();
        let replica = set.read_replica(lsn).expect("caught up");
        assert_eq!(replica.count_documents("c").expect("count"), 25);
        assert_eq!(
            polyframe_storage::encode_ops(&replica.durable_snapshot()),
            polyframe_storage::encode_ops(&leader.durable_snapshot()),
        );
    }
}
