//! Per-shard failover and partial-result degradation.
//!
//! The cluster tier treats shard failures the way a real coordinator
//! does: a transiently-failing shard has its work re-dispatched (up to
//! [`ShardPolicy::failover_retries`] times), and — only when the caller
//! explicitly opts in via [`ShardPolicy::allow_partial`] — a shard that
//! keeps failing transiently is dropped from the result with the gap
//! recorded in [`ShardOutcome::dropped_shards`], instead of failing the
//! whole query. Fatal (non-transient) errors always propagate.
//!
//! [`run_resilient`] is generic over the shard work and error type so
//! [`crate::SqlCluster`] and [`crate::MongoCluster`] share one failover
//! loop; [`shard_fault`] is the shared fault-injection boundary both
//! clusters consult before dispatching a shard's work.

use crate::stats::ExecMode;
use polyframe_observe::{FaultKind, FaultPlan};
use std::time::{Duration, Instant};

/// Per-query resilience policy for shard dispatch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardPolicy {
    /// How many times a shard's work is re-dispatched after a transient
    /// failure before the shard is considered lost.
    pub failover_retries: u32,
    /// Degrade to partial results: drop shards that keep failing
    /// transiently instead of failing the query. Off by default —
    /// partial results are only ever returned on explicit opt-in, and
    /// the dropped shards are reported so callers can surface the gap.
    pub allow_partial: bool,
    /// Route this query's shard reads to a fully caught-up follower
    /// replica when one exists, leaving the leader free for writes —
    /// how the serving tier's QPS story scales past one node per
    /// shard. A lagging replica is never read (snapshot semantics hold
    /// either way); off by default.
    pub prefer_replica: bool,
}

impl ShardPolicy {
    /// Fail over up to `retries` times per shard.
    pub fn failover(retries: u32) -> ShardPolicy {
        ShardPolicy {
            failover_retries: retries,
            ..ShardPolicy::default()
        }
    }

    /// Builder: opt in (or out) of partial results.
    pub fn with_allow_partial(mut self, allow: bool) -> ShardPolicy {
        self.allow_partial = allow;
        self
    }

    /// Builder: opt in (or out) of replica reads.
    pub fn with_prefer_replica(mut self, prefer: bool) -> ShardPolicy {
        self.prefer_replica = prefer;
        self
    }
}

/// What resilient shard dispatch produced.
#[derive(Debug)]
pub struct ShardOutcome<T> {
    /// One result per *surviving* shard, in shard order.
    pub parts: Vec<T>,
    /// Time spent per shard (every shard, including dropped ones, so
    /// the simulated critical path still covers the work that failed).
    pub shard_times: Vec<Duration>,
    /// Total shard-work re-dispatches across the query.
    pub failovers: usize,
    /// Shards dropped under [`ShardPolicy::allow_partial`].
    pub dropped_shards: Vec<usize>,
}

/// An injected failure at a cluster shard boundary, classified by what
/// the coordinator must do about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardFault {
    /// Transient failure; re-dispatching the shard's work is enough.
    Transient(String),
    /// Simulated process crash: the shard's in-memory state is gone and
    /// it must rebuild from its own write-ahead log before rejoining.
    Crash(String),
}

/// Consult a fault plan at a cluster shard boundary (site
/// `"<cluster>/shard[<i>]"`). Returns the injected failure, if any;
/// latency faults sleep inline and return `None`.
pub fn shard_fault(plan: Option<&FaultPlan>, cluster: &str, shard: usize) -> Option<ShardFault> {
    let plan = plan?;
    let site = format!("{cluster}/shard[{shard}]");
    match plan.next_fault(&site) {
        None => None,
        Some(FaultKind::Error) => Some(ShardFault::Transient(format!("injected fault at {site}"))),
        Some(FaultKind::Latency(d)) => {
            std::thread::sleep(d);
            None
        }
        Some(FaultKind::Hang(d)) => {
            std::thread::sleep(d);
            Some(ShardFault::Transient(format!("injected hang at {site}")))
        }
        // A torn write at the shard boundary is a crash mid-write: the
        // shard dies either way, and the WAL layer (not the coordinator)
        // owns torn-frame semantics. A panic in a shard worker likewise
        // kills that shard's attempt from the coordinator's view.
        Some(FaultKind::Crash) | Some(FaultKind::TornWrite(_)) | Some(FaultKind::Panic) => {
            Some(ShardFault::Crash(format!("injected crash at {site}")))
        }
    }
}

/// Run one unit of work per shard with per-shard failover and optional
/// partial-result degradation.
///
/// `work(i)` executes shard `i`'s unit; `is_transient` classifies its
/// errors. A transient failure is re-dispatched immediately (backoff is
/// the connector driver's job, not the coordinator's) up to
/// `policy.failover_retries` times. A shard still failing transiently is
/// dropped when `policy.allow_partial` is set, otherwise its error fails
/// the query. Fatal errors fail the query regardless.
pub fn run_resilient<T, E, P, F>(
    shards: usize,
    mode: ExecMode,
    policy: &ShardPolicy,
    is_transient: P,
    work: F,
) -> Result<ShardOutcome<T>, E>
where
    T: Send,
    E: Send,
    P: Fn(&E) -> bool + Sync,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    struct ShardRun<T, E> {
        result: Result<T, E>,
        elapsed: Duration,
        failovers: usize,
    }
    let run_one = |i: usize| -> ShardRun<T, E> {
        let start = Instant::now();
        let mut failovers = 0usize;
        loop {
            match work(i) {
                Ok(v) => {
                    return ShardRun {
                        result: Ok(v),
                        elapsed: start.elapsed(),
                        failovers,
                    }
                }
                Err(e) => {
                    if is_transient(&e) && (failovers as u32) < policy.failover_retries {
                        failovers += 1;
                        continue;
                    }
                    return ShardRun {
                        result: Err(e),
                        elapsed: start.elapsed(),
                        failovers,
                    };
                }
            }
        }
    };

    let runs: Vec<ShardRun<T, E>> = match mode {
        ExecMode::Threads => std::thread::scope(|scope| {
            let run_one = &run_one;
            let handles: Vec<_> = (0..shards)
                .map(|i| scope.spawn(move || run_one(i)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        }),
        ExecMode::Sequential => (0..shards).map(run_one).collect(),
    };

    let mut out = ShardOutcome {
        parts: Vec::with_capacity(shards),
        shard_times: Vec::with_capacity(shards),
        failovers: 0,
        dropped_shards: Vec::new(),
    };
    for (i, run) in runs.into_iter().enumerate() {
        out.failovers += run.failovers;
        out.shard_times.push(run.elapsed);
        match run.result {
            Ok(v) => out.parts.push(v),
            Err(e) if policy.allow_partial && is_transient(&e) => out.dropped_shards.push(i),
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Debug, PartialEq)]
    enum TestErr {
        Transient,
        Fatal,
    }

    fn transient(e: &TestErr) -> bool {
        matches!(e, TestErr::Transient)
    }

    #[test]
    fn failover_retries_until_success() {
        for mode in [ExecMode::Threads, ExecMode::Sequential] {
            // Every shard fails its first two dispatches, then succeeds.
            let attempts: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
            let out = run_resilient(
                3,
                mode,
                &ShardPolicy::failover(2),
                transient,
                |i| -> Result<usize, TestErr> {
                    if attempts[i].fetch_add(1, Ordering::SeqCst) < 2 {
                        Err(TestErr::Transient)
                    } else {
                        Ok(i * 10)
                    }
                },
            )
            .unwrap();
            assert_eq!(out.parts, vec![0, 10, 20], "{mode:?}");
            assert_eq!(out.failovers, 6);
            assert!(out.dropped_shards.is_empty());
            assert_eq!(out.shard_times.len(), 3);
        }
    }

    #[test]
    fn exhausted_failover_fails_without_partial() {
        let err = run_resilient(
            2,
            ExecMode::Sequential,
            &ShardPolicy::failover(1),
            transient,
            |i| -> Result<usize, TestErr> {
                if i == 1 {
                    Err(TestErr::Transient)
                } else {
                    Ok(0)
                }
            },
        )
        .unwrap_err();
        assert_eq!(err, TestErr::Transient);
    }

    #[test]
    fn allow_partial_drops_transient_shards() {
        let out = run_resilient(
            4,
            ExecMode::Threads,
            &ShardPolicy::failover(1).with_allow_partial(true),
            transient,
            |i| -> Result<usize, TestErr> {
                if i == 2 {
                    Err(TestErr::Transient)
                } else {
                    Ok(i)
                }
            },
        )
        .unwrap();
        assert_eq!(out.parts, vec![0, 1, 3]);
        assert_eq!(out.dropped_shards, vec![2]);
        assert_eq!(out.failovers, 1); // shard 2 was re-dispatched once
        assert_eq!(out.shard_times.len(), 4); // dropped shard still timed
    }

    #[test]
    fn fatal_errors_propagate_even_with_partial() {
        let err = run_resilient(
            2,
            ExecMode::Sequential,
            &ShardPolicy::failover(3).with_allow_partial(true),
            transient,
            |i| -> Result<usize, TestErr> {
                if i == 0 {
                    Err(TestErr::Fatal)
                } else {
                    Ok(1)
                }
            },
        )
        .unwrap_err();
        assert_eq!(err, TestErr::Fatal);
    }

    #[test]
    fn shard_fault_names_sites_per_shard() {
        let plan = FaultPlan::new(11)
            .with_error_rate(1.0)
            .for_sites("shard[1]");
        assert_eq!(shard_fault(Some(&plan), "sql-cluster", 0), None);
        let fault = shard_fault(Some(&plan), "sql-cluster", 1).unwrap();
        match fault {
            ShardFault::Transient(msg) => {
                assert!(msg.contains("sql-cluster/shard[1]"), "{msg}")
            }
            other => panic!("expected transient fault, got {other:?}"),
        }
        assert_eq!(shard_fault(None, "sql-cluster", 1), None);
    }

    #[test]
    fn shard_fault_classifies_crashes() {
        let plan = FaultPlan::crash_at(7, "sql-cluster/shard[0]", 0);
        match shard_fault(Some(&plan), "sql-cluster", 0) {
            Some(ShardFault::Crash(msg)) => {
                assert!(msg.contains("sql-cluster/shard[0]"), "{msg}")
            }
            other => panic!("expected crash, got {other:?}"),
        }
    }
}
