//! Sharded MongoDB ("mongos") cluster.

use crate::partition::shard_for;
use crate::replicate::{ReplicaSet, ReplicaStatus};
use crate::resilience::{run_resilient, shard_fault, ShardFault, ShardOutcome, ShardPolicy};
use crate::stats::{ExecMode, QueryStats, RecoveryCounters, StatsRecorder};
use polyframe_datamodel::{Record, Value};
use polyframe_docstore::distributed::{
    apply_stages_to_rows, merge_counts, merge_groups, merge_topk, partial_group, split,
    MongoDistributed,
};
use polyframe_docstore::{DocError, DocStore, Result};
use polyframe_observe::sync::{Mutex, RwLock};
use polyframe_observe::FaultPlan;
use polyframe_storage::wal::WalObserver;
use polyframe_storage::{CheckpointPolicy, LogMedia, RecoveryReport};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The mutable cluster shape: shard stores and their replica sets.
/// `_id` routing is fixed modulo-`n` (mongos-style), so unlike
/// [`crate::SqlCluster`] there is no slot table and no online split —
/// but crash promotion and replica reads work the same way.
struct DocTopology {
    shards: Vec<Arc<DocStore>>,
    replicas: Vec<Option<Arc<ReplicaSet<DocStore>>>>,
    wal_policy: Option<CheckpointPolicy>,
}

/// A hash-partitioned cluster of document stores behind a mongos-style
/// router.
pub struct MongoCluster {
    topology: RwLock<DocTopology>,
    next_id: AtomicI64,
    mode: ExecMode,
    stats: StatsRecorder,
    /// Optional fault plan consulted at the shard-dispatch boundary
    /// (sites `mongo-cluster/shard[i]`) and the replication sites
    /// (`mongo-cluster/shard[i]/wal/ship[j]`, `.../replica/apply[j]`).
    faults: Mutex<Option<Arc<FaultPlan>>>,
}

impl MongoCluster {
    /// Build a cluster of `n` shards (dispatch mode: [`ExecMode::auto`]).
    pub fn new(n: usize) -> MongoCluster {
        MongoCluster::with_mode(n, ExecMode::auto(n))
    }

    /// Build a cluster with an explicit dispatch mode.
    pub fn with_mode(n: usize, mode: ExecMode) -> MongoCluster {
        assert!(n >= 1, "a cluster needs at least one shard");
        MongoCluster {
            topology: RwLock::new(DocTopology {
                shards: (0..n).map(|_| Arc::new(DocStore::new())).collect(),
                replicas: (0..n).map(|_| None).collect(),
                wal_policy: None,
            }),
            next_id: AtomicI64::new(1),
            mode,
            stats: StatsRecorder::new(),
            faults: Mutex::new(None),
        }
    }

    /// Install (or clear) a fault-injection plan consulted before every
    /// shard dispatch (sites `mongo-cluster/shard[i]`) and at the WAL
    /// shipping / replica apply sites.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.faults.lock() = plan.clone();
        for set in self.topology.read().replicas.iter().flatten() {
            set.set_faults(plan.clone());
        }
    }

    /// The currently installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.faults.lock().clone()
    }

    /// Drain the accumulated simulated-parallel elapsed time
    /// (`compile + max(shard) + merge` per query; see `crate::stats`).
    pub fn take_simulated_elapsed(&self) -> Duration {
        self.stats.take_simulated_elapsed()
    }

    /// Drain the raw per-query stats.
    pub fn take_stats(&self) -> Vec<QueryStats> {
        self.stats.take()
    }

    /// Peek at the stats of the most recent query without draining.
    pub fn last_stats(&self) -> Option<QueryStats> {
        self.stats.last()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.topology.read().shards.len()
    }

    /// The current primary store of shard `i`. The handle outlives
    /// promotions — re-fetch to see the new primary.
    pub fn shard(&self, i: usize) -> Arc<DocStore> {
        Arc::clone(&self.topology.read().shards[i])
    }

    /// Create a collection on every shard.
    pub fn create_collection(&self, name: &str) -> Result<()> {
        for s in &self.topology.read().shards {
            s.create_collection(name)?;
        }
        Ok(())
    }

    /// Give every shard its own write-ahead log (a fresh [`LogMedia`]
    /// per shard, as each node of a real cluster owns its own disk) and
    /// recover whatever committed state each log holds. A shard that
    /// crashes mid-query afterwards rebuilds from its own log before
    /// rejoining.
    pub fn enable_durability(&self, policy: CheckpointPolicy) -> Result<Vec<RecoveryReport>> {
        let mut topo = self.topology.write();
        topo.wal_policy = Some(policy);
        topo.shards
            .iter()
            .map(|s| s.enable_durability(LogMedia::new(), policy))
            .collect()
    }

    /// Give every shard `n` secondary replicas maintained by WAL
    /// shipping (the mongos replica-set analogue): committed frames
    /// ship in order, a crash promotes the freshest secondary replaying
    /// only the committed-but-unshipped tail, and caught-up secondaries
    /// can serve reads (see [`ShardPolicy::prefer_replica`]). Requires
    /// durability.
    pub fn enable_replication(&self, replicas_per_shard: usize) -> Result<()> {
        let faults = self.fault_plan();
        let mut topo = self.topology.write();
        let policy = topo
            .wal_policy
            .ok_or_else(|| DocError::Exec("enable durability before replication".into()))?;
        for i in 0..topo.shards.len() {
            let set = Self::replica_set_for(i, &topo.shards[i], replicas_per_shard, policy)?;
            set.set_faults(faults.clone());
            topo.replicas[i] = Some(set);
        }
        Ok(())
    }

    /// Build, seed, and install a replica set for one shard primary.
    fn replica_set_for(
        shard: usize,
        leader: &Arc<DocStore>,
        n: usize,
        policy: CheckpointPolicy,
    ) -> Result<Arc<ReplicaSet<DocStore>>> {
        let set = Arc::new(ReplicaSet::new("mongo-cluster", shard));
        for _ in 0..n {
            let follower = DocStore::new();
            follower.enable_durability(LogMedia::new(), policy)?;
            set.add_follower(leader.as_ref(), Arc::new(follower))
                .map_err(DocError::Exec)?;
        }
        let wal = leader
            .wal_handle()
            .ok_or_else(|| DocError::Exec("replication requires a durable primary".into()))?;
        wal.set_observer(Some(Arc::clone(&set) as Arc<dyn WalObserver>));
        set.catch_up(&wal);
        Ok(set)
    }

    /// Per-shard replica status (cursor, lag, freshness), outer index =
    /// shard. Shards without replication report an empty list.
    pub fn replication_status(&self) -> Vec<Vec<ReplicaStatus>> {
        let topo = self.topology.read();
        topo.shards
            .iter()
            .zip(&topo.replicas)
            .map(|(leader, set)| match (set, leader.wal_handle()) {
                (Some(set), Some(wal)) => {
                    let next = wal.next_lsn();
                    set.status(next)
                }
                _ => Vec::new(),
            })
            .collect()
    }

    /// Off-critical-path repair: rebuild stale secondaries from their
    /// own logs and drain lagging fresh ones from their primary's
    /// committed log. Returns how many stale secondaries were rebuilt.
    pub fn heal_replicas(&self) -> usize {
        let topo = self.topology.read();
        let mut healed = 0;
        for (leader, set) in topo.shards.iter().zip(&topo.replicas) {
            if let Some(set) = set {
                healed += set.heal_stale();
                if let Some(wal) = leader.wal_handle() {
                    set.catch_up(&wal);
                }
            }
        }
        healed
    }

    /// The store serving reads of shard `i`: a fully caught-up
    /// secondary when replica reads are preferred and one exists, else
    /// the primary.
    fn read_store(&self, i: usize, prefer_replica: bool) -> Arc<DocStore> {
        let topo = self.topology.read();
        let leader = Arc::clone(&topo.shards[i]);
        if prefer_replica {
            if let (Some(set), Some(wal)) = (topo.replicas[i].as_ref(), leader.wal_handle()) {
                let next = wal.next_lsn();
                if let Some(node) = set.read_replica(next) {
                    return node;
                }
            }
        }
        leader
    }

    /// Handle an injected crash on shard `i`: promote the freshest
    /// secondary when one exists (replaying only the
    /// committed-but-unshipped tail), else rebuild the shard from its
    /// own log; without a log the crash degrades to a plain transient
    /// fault. All paths report a transient failure so the failover loop
    /// re-dispatches against the healed shard.
    fn recover_shard(&self, i: usize, msg: String, recovery: &RecoveryCounters) -> DocError {
        let start = Instant::now();
        {
            let mut topo = self.topology.write();
            let leader = Arc::clone(&topo.shards[i]);
            let set = topo.replicas[i].clone();
            if let (Some(set), Some(wal)) = (set, leader.wal_handle()) {
                if let Some(p) = set.promote(&wal, Arc::clone(&leader)) {
                    wal.set_observer(None);
                    if let Some(new_wal) = p.node.wal_handle() {
                        new_wal.set_observer(Some(Arc::clone(&set) as Arc<dyn WalObserver>));
                        set.catch_up(&new_wal);
                    }
                    topo.shards[i] = Arc::clone(&p.node);
                    recovery.record_promotion(p.replayed, start.elapsed());
                    return DocError::Transient(format!(
                        "{msg}; promoted secondary replica (replayed {} tail records)",
                        p.replayed
                    ));
                }
            }
        }
        let leader = self.shard(i);
        if !leader.durability_enabled() {
            return DocError::Transient(msg);
        }
        match leader.recover() {
            Ok(report) => {
                recovery.record(report.replayed_records, start.elapsed());
                DocError::Transient(format!("{msg}; shard rebuilt from log"))
            }
            Err(e) => e,
        }
    }

    /// Insert documents, assigning cluster-wide `_id`s and routing by
    /// `_id` hash.
    pub fn insert_many(
        &self,
        collection: &str,
        docs: impl IntoIterator<Item = Record>,
    ) -> Result<usize> {
        // Held for reading across the whole insert so a promotion
        // cannot swap a primary out from under an in-flight write.
        let topo = self.topology.read();
        let n = topo.shards.len();
        let mut buckets: Vec<Vec<Record>> = (0..n).map(|_| Vec::new()).collect();
        let mut total = 0;
        for mut doc in docs {
            if !doc.contains("_id") {
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                let mut with_id = Record::with_capacity(doc.len() + 1);
                with_id.insert("_id", id);
                for (k, v) in doc.iter() {
                    with_id.insert(k.to_string(), v.clone());
                }
                doc = with_id;
            }
            let key = doc.get_or_missing("_id");
            buckets[shard_for(&key, n)].push(doc);
            total += 1;
        }
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (shard, bucket) in topo.shards.iter().zip(buckets) {
                let shard = Arc::clone(shard);
                let collection = collection.to_string();
                handles.push(scope.spawn(move || shard.insert_many(&collection, bucket)));
            }
            for h in handles {
                h.join().expect("shard insert thread panicked")?;
            }
            Ok(())
        })?;
        Ok(total)
    }

    /// Create a secondary index on every shard.
    pub fn create_index(&self, collection: &str, attribute: &str) -> Result<()> {
        for s in &self.topology.read().shards {
            s.create_index(collection, attribute)?;
        }
        Ok(())
    }

    /// Total documents across shards (metadata, O(shards)).
    pub fn count_documents(&self, collection: &str) -> Result<usize> {
        let mut total = 0;
        for s in &self.topology.read().shards {
            total += s.count_documents(collection)?;
        }
        Ok(total)
    }

    /// Run an aggregation pipeline across the cluster with the default
    /// (no-failover) shard policy. `$lookup` pipelines are rejected (the
    /// paper's expression-12 restriction).
    pub fn aggregate(&self, collection: &str, pipeline_json: &str) -> Result<Vec<Value>> {
        self.aggregate_with(collection, pipeline_json, &ShardPolicy::default())
    }

    /// Run an aggregation pipeline across the cluster under an explicit
    /// shard resilience policy (failover re-dispatch and, on opt-in,
    /// partial results from the surviving shards).
    pub fn aggregate_with(
        &self,
        collection: &str,
        pipeline_json: &str,
        policy: &ShardPolicy,
    ) -> Result<Vec<Value>> {
        let compile_start = Instant::now();
        let stages = polyframe_docstore::parse_pipeline(pipeline_json)?;
        let strategy = split(&stages)?;
        let compile = compile_start.elapsed();

        match strategy {
            MongoDistributed::Concat {
                shard_stages,
                limit,
            } => {
                let (mut scatter, recovery) =
                    self.run_shards(collection, policy, move |shard, coll| {
                        shard.aggregate_stages(coll, &shard_stages)
                    })?;
                let merge_start = Instant::now();
                let parts = std::mem::take(&mut scatter.parts);
                let mut rows: Vec<Value> = parts.into_iter().flatten().collect();
                if let Some(n) = limit {
                    rows.truncate(n as usize);
                }
                self.record(compile, merge_start.elapsed(), scatter, &recovery);
                Ok(rows)
            }
            MongoDistributed::SumCount {
                shard_stages,
                name,
                post,
            } => {
                let (mut scatter, recovery) =
                    self.run_shards(collection, policy, move |shard, coll| {
                        shard.aggregate_stages(coll, &shard_stages)
                    })?;
                let merge_start = Instant::now();
                let parts = std::mem::take(&mut scatter.parts);
                let merged = merge_counts(parts, &name);
                let out = apply_stages_to_rows(merged, &post);
                self.record(compile, merge_start.elapsed(), scatter, &recovery);
                out
            }
            MongoDistributed::Regroup {
                shard_stages,
                id,
                accs,
                post,
            } => {
                // Each shard runs the pre-group prefix AND the partial
                // grouping, so the reduction happens shard-side.
                let accs_for_merge = accs.clone();
                let (mut scatter, recovery) =
                    self.run_shards(collection, policy, move |shard, coll| {
                        let rows = shard.aggregate_stages(coll, &shard_stages)?;
                        partial_group(rows, &id, &accs)
                    })?;
                let merge_start = Instant::now();
                let parts = std::mem::take(&mut scatter.parts);
                let merged = merge_groups(parts, &accs_for_merge)?;
                let out = apply_stages_to_rows(merged, &post);
                self.record(compile, merge_start.elapsed(), scatter, &recovery);
                out
            }
            MongoDistributed::TopK {
                shard_stages,
                sort,
                limit,
                post,
            } => {
                let (mut scatter, recovery) =
                    self.run_shards(collection, policy, move |shard, coll| {
                        shard.aggregate_stages(coll, &shard_stages)
                    })?;
                let merge_start = Instant::now();
                let parts = std::mem::take(&mut scatter.parts);
                let merged = merge_topk(parts, &sort, limit);
                let out = apply_stages_to_rows(merged, &post);
                self.record(compile, merge_start.elapsed(), scatter, &recovery);
                out
            }
        }
    }

    fn record<T>(
        &self,
        compile: Duration,
        merge: Duration,
        scatter: ShardOutcome<T>,
        recovery: &RecoveryCounters,
    ) {
        let mut stats = QueryStats {
            compile,
            shard_times: scatter.shard_times,
            merge,
            failovers: scatter.failovers,
            dropped_shards: scatter.dropped_shards,
            ..QueryStats::default()
        };
        recovery.fold_into(&mut stats);
        self.stats.record(stats);
    }

    /// Run one unit of work per shard, timing each, with per-shard
    /// failover under `policy`.
    fn run_shards<F>(
        &self,
        collection: &str,
        policy: &ShardPolicy,
        work: F,
    ) -> Result<(ShardOutcome<Vec<Value>>, RecoveryCounters)>
    where
        F: Fn(&DocStore, &str) -> Result<Vec<Value>> + Sync,
    {
        let faults = self.fault_plan();
        let recovery = RecoveryCounters::new();
        let out = run_resilient(
            self.num_shards(),
            self.mode,
            policy,
            DocError::is_transient,
            |i| {
                match shard_fault(faults.as_deref(), "mongo-cluster", i) {
                    Some(ShardFault::Transient(msg)) => return Err(DocError::Transient(msg)),
                    Some(ShardFault::Crash(msg)) => {
                        return Err(self.recover_shard(i, msg, &recovery))
                    }
                    None => {}
                }
                // Re-fetched per attempt so a failover after a promotion
                // dispatches against the new primary.
                let store = self.read_store(i, policy.prefer_replica);
                work(&store, collection)
            },
        )?;
        Ok((out, recovery))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyframe_datamodel::record;
    use polyframe_docstore::DocError;

    fn cluster(n: usize) -> MongoCluster {
        let c = MongoCluster::new(n);
        c.create_collection("d").unwrap();
        c.insert_many(
            "d",
            (0..100i64).map(|i| record! {"grp" => i % 4, "val" => i}),
        )
        .unwrap();
        c.create_index("d", "val").unwrap();
        c
    }

    #[test]
    fn partitioned_and_counted() {
        let c = cluster(4);
        assert_eq!(c.count_documents("d").unwrap(), 100);
        for i in 0..4 {
            let n = c.shard(i).count_documents("d").unwrap();
            assert!(n > 0 && n < 100, "shard {i}: {n}");
        }
    }

    #[test]
    fn pipeline_count_sums() {
        let c = cluster(3);
        let out = c
            .aggregate("d", r#"[{"$match":{}},{"$count":"count"}]"#)
            .unwrap();
        assert_eq!(out[0].get_path("count"), Value::Int(100));
    }

    #[test]
    fn empty_count_emits_nothing() {
        let c = cluster(3);
        let out = c
            .aggregate(
                "d",
                r#"[{"$match":{"$expr":{"$eq":["$grp",99]}}},{"$count":"count"}]"#,
            )
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn group_regroups() {
        let c = cluster(4);
        let out = c
            .aggregate(
                "d",
                r#"[{"$match":{}},{"$group":{"_id":{"grp":"$grp"},"mx":{"$max":"$val"},"cnt":{"$sum":1}}},{"$addFields":{"grp":"$_id.grp"}},{"$project":{"_id":0}}]"#,
            )
            .unwrap();
        assert_eq!(out.len(), 4);
        for row in &out {
            assert_eq!(row.get_path("cnt"), Value::Int(25));
        }
        let g3 = out
            .iter()
            .find(|r| r.get_path("grp") == Value::Int(3))
            .unwrap();
        assert_eq!(g3.get_path("mx"), Value::Int(99));
    }

    #[test]
    fn topk_across_shards() {
        let c = cluster(4);
        let out = c
            .aggregate(
                "d",
                r#"[{"$match":{}},{"$sort":{"val":-1}},{"$project":{"_id":0}},{"$limit":5}]"#,
            )
            .unwrap();
        let vals: Vec<i64> = out
            .iter()
            .map(|r| r.get_path("val").as_i64().unwrap())
            .collect();
        assert_eq!(vals, vec![99, 98, 97, 96, 95]);
        assert!(out[0].get_path("_id").is_missing());
    }

    #[test]
    fn lookup_rejected_on_sharded_collections() {
        let c = cluster(2);
        let err = c
            .aggregate(
                "d",
                r#"[{"$lookup":{"from":"d","as":"m","let":{"left":"$val"},
                    "pipeline":[{"$match":{"$expr":{"$eq":["$val","$$left"]}}}]}},
                   {"$unwind":{"path":"$m","preserveNullAndEmptyArrays":false}},
                   {"$count":"count"}]"#,
            )
            .unwrap_err();
        assert!(matches!(err, DocError::ShardedLookup(_)));
    }

    #[test]
    fn failover_and_partial_degradation() {
        // Failover: the first two dispatches fail, re-dispatch recovers
        // the full result.
        let c = cluster(3);
        let plan = Arc::new(FaultPlan::new(8).with_error_rate(1.0).with_max_faults(2));
        c.set_fault_plan(Some(Arc::clone(&plan)));
        let out = c
            .aggregate_with(
                "d",
                r#"[{"$match":{}},{"$count":"count"}]"#,
                &ShardPolicy::failover(3),
            )
            .unwrap();
        assert_eq!(out[0].get_path("count"), Value::Int(100));
        assert_eq!(plan.faults_injected(), 2);
        assert!(c.last_stats().unwrap().failovers > 0);

        // Partial: a permanently dead shard fails the query unless the
        // caller opts into partial results.
        let c = cluster(3);
        c.set_fault_plan(Some(Arc::new(
            FaultPlan::new(1).with_error_rate(1.0).for_sites("shard[0]"),
        )));
        let q = r#"[{"$match":{}},{"$count":"count"}]"#;
        assert!(c.aggregate_with("d", q, &ShardPolicy::default()).is_err());
        let out = c
            .aggregate_with("d", q, &ShardPolicy::default().with_allow_partial(true))
            .unwrap();
        let lost = c.shard(0).count_documents("d").unwrap() as i64;
        assert_eq!(out[0].get_path("count"), Value::Int(100 - lost));
        assert_eq!(c.last_stats().unwrap().dropped_shards, vec![0]);
    }

    #[test]
    fn crashed_shard_rebuilds_from_its_log() {
        let c = MongoCluster::new(3);
        c.enable_durability(CheckpointPolicy::never()).unwrap();
        c.create_collection("d").unwrap();
        c.insert_many(
            "d",
            (0..100i64).map(|i| record! {"grp" => i % 4, "val" => i}),
        )
        .unwrap();
        c.set_fault_plan(Some(Arc::new(FaultPlan::crash_at(
            9,
            "mongo-cluster/shard[1]",
            0,
        ))));
        let out = c
            .aggregate_with(
                "d",
                r#"[{"$match":{}},{"$count":"count"}]"#,
                &ShardPolicy::failover(2),
            )
            .unwrap();
        assert_eq!(out[0].get_path("count"), Value::Int(100));
        let stats = c.last_stats().unwrap();
        assert_eq!(stats.recovered_shards, 1);
        assert!(stats.replayed_records > 0);
        assert!(stats.to_spans().iter().any(|s| s.name() == "recovery"));
    }

    #[test]
    fn crashed_shard_promotes_a_secondary() {
        let c = MongoCluster::new(3);
        c.enable_durability(CheckpointPolicy::never()).unwrap();
        c.create_collection("d").unwrap();
        c.insert_many(
            "d",
            (0..100i64).map(|i| record! {"grp" => i % 4, "val" => i}),
        )
        .unwrap();
        c.enable_replication(1).unwrap();
        assert!(c
            .replication_status()
            .iter()
            .flatten()
            .all(|s| s.fresh && s.lag == 0));
        c.set_fault_plan(Some(Arc::new(FaultPlan::crash_at(
            9,
            "mongo-cluster/shard[1]",
            0,
        ))));
        let out = c
            .aggregate_with(
                "d",
                r#"[{"$match":{}},{"$count":"count"}]"#,
                &ShardPolicy::failover(2),
            )
            .unwrap();
        assert_eq!(out[0].get_path("count"), Value::Int(100));
        let stats = c.last_stats().unwrap();
        assert_eq!(stats.promotions, 1);
        assert_eq!(stats.recovered_shards, 0);
        // Demoted ex-primary rejoined stale; healing rebuilds it.
        assert_eq!(c.heal_replicas(), 1);
        // Replica reads answer identically after the promotion.
        let replica_read = c
            .aggregate_with(
                "d",
                r#"[{"$match":{}},{"$count":"count"}]"#,
                &ShardPolicy::default().with_prefer_replica(true),
            )
            .unwrap();
        assert_eq!(replica_read[0].get_path("count"), Value::Int(100));
    }

    #[test]
    fn agrees_with_single_shard() {
        let single = cluster(1);
        let multi = cluster(4);
        for q in [
            r#"[{"$match":{}},{"$count":"count"}]"#,
            r#"[{"$match":{}},{"$group":{"_id":{},"avg":{"$avg":"$val"}}},{"$project":{"_id":0}}]"#,
        ] {
            assert_eq!(
                single.aggregate("d", q).unwrap(),
                multi.aggregate("d", q).unwrap(),
                "{q}"
            );
        }
    }
}
