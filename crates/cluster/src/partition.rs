//! Stable hash partitioning of data-model values.

use polyframe_datamodel::Value;

/// FNV-1a over a canonical byte rendering of the value. Stable across runs
/// (data placement must be deterministic for the benchmarks to be
/// reproducible).
pub fn value_hash(v: &Value) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    fn feed(h: &mut u64, bytes: &[u8]) {
        for b in bytes {
            *h ^= u64::from(*b);
            *h = h.wrapping_mul(PRIME);
        }
    }
    let mut h = OFFSET;
    match v {
        Value::Missing => feed(&mut h, b"\x00m"),
        Value::Null => feed(&mut h, b"\x00n"),
        Value::Bool(b) => feed(&mut h, &[1, u8::from(*b)]),
        Value::Int(i) => {
            feed(&mut h, &[2]);
            feed(&mut h, &i.to_le_bytes());
        }
        Value::Double(d) => {
            // Hash doubles that are whole numbers like their integer
            // counterparts so mixed numeric keys co-locate.
            if d.fract() == 0.0 && d.abs() < 9.0e15 {
                feed(&mut h, &[2]);
                feed(&mut h, &(*d as i64).to_le_bytes());
            } else {
                feed(&mut h, &[3]);
                feed(&mut h, &d.to_bits().to_le_bytes());
            }
        }
        Value::Str(s) => {
            feed(&mut h, &[4]);
            feed(&mut h, s.as_bytes());
        }
        Value::Array(items) => {
            feed(&mut h, &[5]);
            for item in items {
                feed(&mut h, &value_hash(item).to_le_bytes());
            }
        }
        Value::Obj(rec) => {
            feed(&mut h, &[6]);
            for (k, val) in rec.iter() {
                feed(&mut h, k.as_bytes());
                feed(&mut h, &value_hash(val).to_le_bytes());
            }
        }
    }
    h
}

/// Which of `n` shards owns `key`.
pub fn shard_for(key: &Value, n: usize) -> usize {
    (value_hash(key) % n.max(1) as u64) as usize
}

/// Virtual slots a [`ShardMap`] spreads keys over. Fixed so a key's
/// slot never changes; only the slot→shard table does.
pub const SHARD_SLOTS: usize = 64;

/// Slot-table routing: a key hashes to one of [`SHARD_SLOTS`] fixed
/// virtual slots, and a table maps slots to shards. Splitting a hot
/// shard reassigns half its slots to a new shard — no other shard's
/// placement moves, and the set of records to migrate is exactly the
/// reassigned slots' contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    slots: Vec<usize>,
}

impl ShardMap {
    /// Spread the slots round-robin over `n` shards. When `n` divides
    /// [`SHARD_SLOTS`] this places every key exactly where
    /// [`shard_for`] with `n` shards would.
    pub fn new(n: usize) -> ShardMap {
        let n = n.max(1);
        ShardMap {
            slots: (0..SHARD_SLOTS)
                .map(|s| (s as u64 % n as u64) as usize)
                .collect(),
        }
    }

    /// The virtual slot `key` hashes to.
    pub fn slot_of(key: &Value) -> usize {
        (value_hash(key) % SHARD_SLOTS as u64) as usize
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: &Value) -> usize {
        self.slots[ShardMap::slot_of(key)]
    }

    /// Number of distinct shards the table routes to.
    pub fn num_shards(&self) -> usize {
        self.slots.iter().copied().max().unwrap_or(0) + 1
    }

    /// The slots currently owned by `shard`.
    pub fn slots_of(&self, shard: usize) -> Vec<usize> {
        (0..SHARD_SLOTS)
            .filter(|&s| self.slots[s] == shard)
            .collect()
    }

    /// The upper half of `shard`'s slots — what a split moves to the
    /// new shard. Empty when the shard owns fewer than two slots (it
    /// cannot be split further).
    pub fn split_candidates(&self, shard: usize) -> Vec<usize> {
        let owned = self.slots_of(shard);
        owned[owned.len().div_ceil(2)..].to_vec()
    }

    /// Reassign `slots` to `shard` (split cutover).
    pub fn reassign(&mut self, slots: &[usize], shard: usize) {
        for &s in slots {
            self.slots[s] = shard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let v = Value::Int(42);
        assert_eq!(shard_for(&v, 4), shard_for(&v, 4));
    }

    #[test]
    fn int_and_whole_double_colocate() {
        assert_eq!(
            shard_for(&Value::Int(7), 8),
            shard_for(&Value::Double(7.0), 8)
        );
    }

    #[test]
    fn roughly_uniform() {
        let n = 4;
        let mut counts = vec![0usize; n];
        for i in 0..10_000i64 {
            counts[shard_for(&Value::Int(i), n)] += 1;
        }
        for c in counts {
            assert!(c > 2_000 && c < 3_000, "skewed: {c}");
        }
    }

    #[test]
    fn single_shard() {
        assert_eq!(shard_for(&Value::str("x"), 1), 0);
    }

    #[test]
    fn shard_map_matches_modulo_placement_for_divisors() {
        for n in [1usize, 2, 4, 8] {
            let map = ShardMap::new(n);
            for i in 0..1_000i64 {
                let v = Value::Int(i);
                assert_eq!(map.shard_of(&v), shard_for(&v, n), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn split_moves_only_the_reassigned_slots() {
        let mut map = ShardMap::new(3);
        let before: Vec<usize> = (0..200i64).map(|i| map.shard_of(&Value::Int(i))).collect();
        let moved = map.split_candidates(1);
        assert!(!moved.is_empty());
        let kept = map.slots_of(1).len() - moved.len();
        assert!(kept >= 1, "split must leave shard 1 some slots");
        map.reassign(&moved, 3);
        assert_eq!(map.num_shards(), 4);
        for (i, &was) in before.iter().enumerate() {
            let v = Value::Int(i as i64);
            let now = map.shard_of(&v);
            if was == 1 {
                assert!(
                    now == 1 || now == 3,
                    "key {i} moved from shard 1 to shard {now}"
                );
                assert_eq!(now == 3, moved.contains(&ShardMap::slot_of(&v)));
            } else {
                assert_eq!(now, was, "key {i} moved off an unsplit shard");
            }
        }
    }
}
