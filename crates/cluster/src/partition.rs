//! Stable hash partitioning of data-model values.

use polyframe_datamodel::Value;

/// FNV-1a over a canonical byte rendering of the value. Stable across runs
/// (data placement must be deterministic for the benchmarks to be
/// reproducible).
pub fn value_hash(v: &Value) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    fn feed(h: &mut u64, bytes: &[u8]) {
        for b in bytes {
            *h ^= u64::from(*b);
            *h = h.wrapping_mul(PRIME);
        }
    }
    let mut h = OFFSET;
    match v {
        Value::Missing => feed(&mut h, b"\x00m"),
        Value::Null => feed(&mut h, b"\x00n"),
        Value::Bool(b) => feed(&mut h, &[1, u8::from(*b)]),
        Value::Int(i) => {
            feed(&mut h, &[2]);
            feed(&mut h, &i.to_le_bytes());
        }
        Value::Double(d) => {
            // Hash doubles that are whole numbers like their integer
            // counterparts so mixed numeric keys co-locate.
            if d.fract() == 0.0 && d.abs() < 9.0e15 {
                feed(&mut h, &[2]);
                feed(&mut h, &(*d as i64).to_le_bytes());
            } else {
                feed(&mut h, &[3]);
                feed(&mut h, &d.to_bits().to_le_bytes());
            }
        }
        Value::Str(s) => {
            feed(&mut h, &[4]);
            feed(&mut h, s.as_bytes());
        }
        Value::Array(items) => {
            feed(&mut h, &[5]);
            for item in items {
                feed(&mut h, &value_hash(item).to_le_bytes());
            }
        }
        Value::Obj(rec) => {
            feed(&mut h, &[6]);
            for (k, val) in rec.iter() {
                feed(&mut h, k.as_bytes());
                feed(&mut h, &value_hash(val).to_le_bytes());
            }
        }
    }
    h
}

/// Which of `n` shards owns `key`.
pub fn shard_for(key: &Value, n: usize) -> usize {
    (value_hash(key) % n.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let v = Value::Int(42);
        assert_eq!(shard_for(&v, 4), shard_for(&v, 4));
    }

    #[test]
    fn int_and_whole_double_colocate() {
        assert_eq!(
            shard_for(&Value::Int(7), 8),
            shard_for(&Value::Double(7.0), 8)
        );
    }

    #[test]
    fn roughly_uniform() {
        let n = 4;
        let mut counts = vec![0usize; n];
        for i in 0..10_000i64 {
            counts[shard_for(&Value::Int(i), n)] += 1;
        }
        for c in counts {
            assert!(c > 2_000 && c < 3_000, "skewed: {c}");
        }
    }

    #[test]
    fn single_shard() {
        assert_eq!(shard_for(&Value::str("x"), 1), 0);
    }
}
