//! Per-query execution statistics and simulated-parallel timing.
//!
//! The paper's Figures 9/10 measure wall time on clusters of 1-4 real EC2
//! nodes. On a machine with fewer cores than shards, thread-per-shard wall
//! time cannot show speedup, so the clusters record the **critical path**
//! of every query instead: `compile + max(shard work) + merge`. On
//! sufficiently parallel hardware this equals the threaded wall time; on a
//! small machine it is the faithful simulation of one-node-per-shard
//! execution. [`ExecMode::auto`] picks sequential shard execution (with
//! per-shard timing) when the host lacks the cores to run shards honestly
//! in parallel.

use polyframe_observe::sync::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// How shard work is dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One OS thread per shard (real parallel wall time).
    Threads,
    /// Shards run one after another; per-shard durations are recorded so
    /// the simulated parallel time (max + merge) can be reported.
    Sequential,
}

impl ExecMode {
    /// Threads when the host has at least `shards` cores, else sequential.
    /// The core budget honours the `POLYFRAME_THREADS` override (see
    /// [`polyframe_sqlengine::available_threads`]).
    pub fn auto(shards: usize) -> ExecMode {
        if polyframe_sqlengine::available_threads() >= shards {
            ExecMode::Threads
        } else {
            ExecMode::Sequential
        }
    }

    /// Morsel-worker budget for each shard engine, so concurrent shards
    /// and intra-shard morsel workers jointly stay within the core budget:
    /// `shards × workers ≤ cores` under [`ExecMode::Threads`] (shards run
    /// concurrently), while [`ExecMode::Sequential`] runs one shard at a
    /// time and hands each the full budget.
    pub fn workers_per_shard(self, shards: usize) -> usize {
        let cores = polyframe_sqlengine::available_threads();
        match self {
            ExecMode::Threads => (cores / shards.max(1)).max(1),
            ExecMode::Sequential => cores.max(1),
        }
    }
}

/// Timing breakdown of one distributed query.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Coordinator-side compile/split time.
    pub compile: Duration,
    /// Per-shard execution times (every shard, including dropped ones).
    pub shard_times: Vec<Duration>,
    /// Coordinator-side merge time.
    pub merge: Duration,
    /// Shard-work re-dispatches after transient failures.
    pub failovers: usize,
    /// Shards dropped under partial-result degradation (the result
    /// covers only the remaining shards).
    pub dropped_shards: Vec<usize>,
    /// Shards that crashed during this query and rebuilt themselves from
    /// their own write-ahead logs before rejoining.
    pub recovered_shards: usize,
    /// Shards that crashed during this query and were healed by
    /// promoting a follower replica instead of a full rebuild — a
    /// re-dispatch that succeeds after a promotion is thereby
    /// distinguishable from a plain transient failover.
    pub promotions: usize,
    /// Total log records replayed across those shard recoveries and
    /// promotions (for a promotion, only the committed-but-unshipped
    /// tail).
    pub replayed_records: u64,
    /// Wall time spent in shard recovery across the query.
    pub recovery_time: Duration,
}

impl QueryStats {
    /// The simulated parallel wall time: compile + slowest shard + merge.
    pub fn simulated_wall(&self) -> Duration {
        self.compile
            + self
                .shard_times
                .iter()
                .max()
                .copied()
                .unwrap_or(Duration::ZERO)
            + self.merge
    }

    /// Fold this breakdown into trace spans using the workspace's
    /// canonical stage names (`polyframe_observe::trace`): the
    /// coordinator's compile/split work as `plan`, one `shard[i]` per
    /// shard (dropped shards carry a `status: dropped` note), and the
    /// coordinator-side `merge`.
    pub fn to_spans(&self) -> Vec<polyframe_observe::Span> {
        use polyframe_observe::Span;
        let mut spans = Vec::with_capacity(self.shard_times.len() + 2);
        spans.push(Span::new("plan").with_duration(self.compile));
        for (i, t) in self.shard_times.iter().enumerate() {
            let mut span = Span::new(format!("shard[{i}]")).with_duration(*t);
            if self.dropped_shards.contains(&i) {
                span.set_note("status", "dropped");
            }
            spans.push(span);
        }
        spans.push(Span::new("merge").with_duration(self.merge));
        if self.recovered_shards + self.promotions > 0 {
            let mut span = Span::new("recovery").with_duration(self.recovery_time);
            span.set_metric("recovered_shards", self.recovered_shards as i64);
            span.set_metric("promotions", self.promotions as i64);
            span.set_metric("replayed_records", self.replayed_records as i64);
            spans.push(span);
        }
        spans
    }
}

/// Thread-safe accumulator for shard-recovery work observed during one
/// query's dispatch (the failover loop may run shards on separate
/// threads, and a crashed shard rebuilds inside its dispatch closure).
#[derive(Debug, Default)]
pub struct RecoveryCounters {
    shards: AtomicUsize,
    promotions: AtomicUsize,
    records: AtomicU64,
    nanos: AtomicU64,
}

impl RecoveryCounters {
    /// Fresh (all-zero) counters for one query.
    pub fn new() -> RecoveryCounters {
        RecoveryCounters::default()
    }

    /// Record one full shard rebuild that replayed `replayed` log records.
    pub fn record(&self, replayed: u64, elapsed: Duration) {
        self.shards.fetch_add(1, Ordering::Relaxed);
        self.records.fetch_add(replayed, Ordering::Relaxed);
        self.nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record one crash healed by follower promotion, replaying only
    /// `replayed` committed-but-unshipped tail records.
    pub fn record_promotion(&self, replayed: u64, elapsed: Duration) {
        self.promotions.fetch_add(1, Ordering::Relaxed);
        self.records.fetch_add(replayed, Ordering::Relaxed);
        self.nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Fold the accumulated counters into a query's stats.
    pub fn fold_into(&self, stats: &mut QueryStats) {
        stats.recovered_shards = self.shards.load(Ordering::Relaxed);
        stats.promotions = self.promotions.load(Ordering::Relaxed);
        stats.replayed_records = self.records.load(Ordering::Relaxed);
        stats.recovery_time = Duration::from_nanos(self.nanos.load(Ordering::Relaxed));
    }
}

/// Accumulates stats across the queries a benchmark expression issues.
#[derive(Debug, Default)]
pub struct StatsRecorder {
    queries: Mutex<Vec<QueryStats>>,
}

impl StatsRecorder {
    /// New, empty recorder.
    pub fn new() -> StatsRecorder {
        StatsRecorder::default()
    }

    /// Record one query's stats.
    pub fn record(&self, stats: QueryStats) {
        self.queries.lock().push(stats);
    }

    /// Drain all recorded queries.
    pub fn take(&self) -> Vec<QueryStats> {
        std::mem::take(&mut self.queries.lock())
    }

    /// Peek at the most recently recorded query without draining (the
    /// trace layer folds it into spans while benchmarks keep accumulating).
    pub fn last(&self) -> Option<QueryStats> {
        self.queries.lock().last().cloned()
    }

    /// Drain and sum the simulated wall times.
    pub fn take_simulated_elapsed(&self) -> Duration {
        self.take().iter().map(QueryStats::simulated_wall).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_wall_is_critical_path() {
        let q = QueryStats {
            compile: Duration::from_millis(1),
            shard_times: vec![
                Duration::from_millis(10),
                Duration::from_millis(40),
                Duration::from_millis(20),
            ],
            merge: Duration::from_millis(2),
            ..Default::default()
        };
        assert_eq!(q.simulated_wall(), Duration::from_millis(43));
    }

    #[test]
    fn recorder_accumulates_and_drains() {
        let r = StatsRecorder::new();
        r.record(QueryStats {
            shard_times: vec![Duration::from_millis(5)],
            ..Default::default()
        });
        r.record(QueryStats {
            shard_times: vec![Duration::from_millis(7)],
            ..Default::default()
        });
        assert_eq!(r.take_simulated_elapsed(), Duration::from_millis(12));
        assert!(r.take().is_empty());
    }

    #[test]
    fn auto_mode_is_consistent() {
        // On any machine, 1 shard can run threaded.
        assert_eq!(ExecMode::auto(1), ExecMode::Threads);
    }

    #[test]
    fn worker_budget_is_joint() {
        let cores = polyframe_sqlengine::available_threads();
        // Concurrent shards split the budget: shards × workers ≤ cores.
        for shards in 1..=8 {
            let w = ExecMode::Threads.workers_per_shard(shards);
            assert!(w >= 1);
            assert!(shards * w <= cores.max(shards), "shards={shards} w={w}");
        }
        // Sequential shards run alone and get the whole budget.
        assert_eq!(ExecMode::Sequential.workers_per_shard(4), cores.max(1));
    }
}
