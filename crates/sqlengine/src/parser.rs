//! Recursive-descent parser for the SQL / SQL++ subset PolyFrame generates.
//!
//! The grammar intentionally covers composable `SELECT` blocks — nested
//! subqueries in `FROM`, joins, `WHERE`, `GROUP BY`, `ORDER BY`, `LIMIT` —
//! because PolyFrame's incremental query formation only ever produces that
//! shape. It is nonetheless a real parser: precedence-climbing expressions,
//! both dialects, quoted identifiers, `IS [NOT] NULL/MISSING/UNKNOWN`, and
//! function calls.

use crate::ast::*;
use crate::dialect::Dialect;
use crate::error::{EngineError, Result};
use crate::lexer::tokenize;
use crate::token::Token;
use polyframe_datamodel::Value;

/// Reserved words that terminate identifier positions.
const KEYWORDS: &[&str] = &[
    "select", "value", "distinct", "from", "where", "group", "by", "order", "limit", "join",
    "inner", "left", "on", "and", "or", "not", "as", "is", "null", "missing", "unknown", "true",
    "false", "desc", "asc",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k))
}

/// Parse a single `SELECT` statement (with optional trailing `;`).
pub fn parse(input: &str, dialect: Dialect) -> Result<SelectStmt> {
    let tokens = tokenize(input, dialect)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        dialect,
    };
    let stmt = p.parse_select()?;
    p.eat_if(&Token::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    dialect: Dialect,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(EngineError::parse(format!(
                "expected keyword {kw}, found {}",
                self.peek()
            )))
        }
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat_if(t) {
            Ok(())
        } else {
            Err(EngineError::parse(format!(
                "expected {t}, found {}",
                self.peek()
            )))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            Err(EngineError::parse(format!(
                "unexpected trailing token {}",
                self.peek()
            )))
        }
    }

    fn parse_select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("select")?;
        let value_mode = if self.peek().is_kw("value") {
            if !self.dialect.supports_select_value() {
                return Err(EngineError::parse(
                    "SELECT VALUE is only available in SQL++",
                ));
            }
            self.bump();
            true
        } else {
            false
        };
        let distinct = self.eat_kw("distinct");

        let items = self.parse_select_list(value_mode)?;

        let from = if self.eat_kw("from") {
            Some(self.parse_from()?)
        } else {
            None
        };

        let where_clause = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }

        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.parse_expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderKey { expr: e, desc });
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_kw("limit") {
            match self.bump() {
                Token::Int(n) if n >= 0 => Some(n as u64),
                t => {
                    return Err(EngineError::parse(format!(
                        "expected LIMIT count, found {t}"
                    )))
                }
            }
        } else {
            None
        };

        Ok(SelectStmt {
            value_mode,
            distinct,
            items,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn parse_select_list(&mut self, value_mode: bool) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            if self.eat_if(&Token::Star) {
                items.push(SelectItem::Star);
            } else {
                let expr = self.parse_expr()?;
                // `t.*` parses as a path followed by `.` `*`.
                if self.eat_if(&Token::Dot) {
                    self.expect(&Token::Star)?;
                    match expr {
                        AstExpr::Path(parts) if parts.len() == 1 => {
                            items.push(SelectItem::QualifiedStar(parts[0].clone()));
                        }
                        _ => {
                            return Err(EngineError::parse(
                                "`.*` must follow a simple alias".to_string(),
                            ))
                        }
                    }
                } else {
                    let alias = if self.eat_kw("as") {
                        Some(self.parse_identifier()?)
                    } else {
                        match self.peek().clone() {
                            Token::Ident(s) if !is_keyword(&s) => {
                                self.bump();
                                Some(s)
                            }
                            Token::QuotedIdent(s) => {
                                self.bump();
                                Some(s)
                            }
                            _ => None,
                        }
                    };
                    items.push(SelectItem::Expr { expr, alias });
                }
            }
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        if value_mode && items.len() != 1 {
            return Err(EngineError::parse(
                "SELECT VALUE takes exactly one expression",
            ));
        }
        Ok(items)
    }

    fn parse_from(&mut self) -> Result<FromClause> {
        let first = self.parse_from_item()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.peek().is_kw("join") || self.peek().is_kw("inner") {
                self.eat_kw("inner");
                self.expect_kw("join")?;
                JoinKind::Inner
            } else if self.peek().is_kw("left") {
                self.bump();
                // Accept both LEFT JOIN and LEFT OUTER JOIN-less form.
                self.expect_kw("join")?;
                JoinKind::Left
            } else {
                break;
            };
            let item = self.parse_from_item()?;
            self.expect_kw("on")?;
            let on = self.parse_expr()?;
            joins.push(JoinClause { kind, item, on });
        }
        Ok(FromClause { first, joins })
    }

    fn parse_from_item(&mut self) -> Result<FromItem> {
        if self.eat_if(&Token::LParen) {
            let query = self.parse_select()?;
            self.expect(&Token::RParen)?;
            let alias = self.parse_optional_alias()?;
            Ok(FromItem::Subquery {
                query: Box::new(query),
                alias,
            })
        } else {
            let mut path = vec![self.parse_identifier()?];
            while self.eat_if(&Token::Dot) {
                path.push(self.parse_identifier()?);
            }
            let alias = self.parse_optional_alias()?;
            Ok(FromItem::Dataset { path, alias })
        }
    }

    fn parse_optional_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("as") {
            return Ok(Some(self.parse_identifier()?));
        }
        match self.peek().clone() {
            Token::Ident(s) if !is_keyword(&s) => {
                self.bump();
                Ok(Some(s))
            }
            Token::QuotedIdent(s) => {
                self.bump();
                Ok(Some(s))
            }
            _ => Ok(None),
        }
    }

    fn parse_identifier(&mut self) -> Result<String> {
        match self.bump() {
            Token::Ident(s) if !is_keyword(&s) => Ok(s),
            Token::QuotedIdent(s) => Ok(s),
            t => Err(EngineError::parse(format!(
                "expected identifier, found {t}"
            ))),
        }
    }

    /// Expression entry point (lowest precedence: OR).
    fn parse_expr(&mut self) -> Result<AstExpr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<AstExpr> {
        let mut lhs = self.parse_and()?;
        while self.eat_kw("or") {
            let rhs = self.parse_and()?;
            lhs = AstExpr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<AstExpr> {
        let mut lhs = self.parse_not()?;
        while self.eat_kw("and") {
            let rhs = self.parse_not()?;
            lhs = AstExpr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<AstExpr> {
        if self.eat_kw("not") {
            let inner = self.parse_not()?;
            Ok(AstExpr::Unary(UnaryOp::Not, Box::new(inner)))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<AstExpr> {
        let lhs = self.parse_additive()?;
        let op = match self.peek() {
            Token::Eq => Some(BinOp::Eq),
            Token::Ne => Some(BinOp::Ne),
            Token::Lt => Some(BinOp::Lt),
            Token::Le => Some(BinOp::Le),
            Token::Gt => Some(BinOp::Gt),
            Token::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_additive()?;
            return Ok(AstExpr::Binary(op, Box::new(lhs), Box::new(rhs)));
        }
        if self.peek().is_kw("is") {
            self.bump();
            let negated = self.eat_kw("not");
            let kind = if self.eat_kw("null") {
                IsKind::Null
            } else if self.eat_kw("missing") {
                if !self.dialect.supports_missing() {
                    return Err(EngineError::parse("IS MISSING is SQL++-only"));
                }
                IsKind::Missing
            } else if self.eat_kw("unknown") {
                if !self.dialect.supports_missing() {
                    return Err(EngineError::parse("IS UNKNOWN is SQL++-only"));
                }
                IsKind::Unknown
            } else {
                return Err(EngineError::parse(format!(
                    "expected NULL/MISSING/UNKNOWN after IS, found {}",
                    self.peek()
                )));
            };
            return Ok(AstExpr::Is(Box::new(lhs), kind, negated));
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<AstExpr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = AstExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<AstExpr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = AstExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<AstExpr> {
        if self.eat_if(&Token::Minus) {
            let inner = self.parse_unary()?;
            return Ok(AstExpr::Unary(UnaryOp::Neg, Box::new(inner)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<AstExpr> {
        match self.bump() {
            Token::Int(i) => Ok(AstExpr::Lit(Value::Int(i))),
            Token::Double(d) => Ok(AstExpr::Lit(Value::Double(d))),
            Token::Str(s) => Ok(AstExpr::Lit(Value::Str(s))),
            Token::LParen => {
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(s) if s.eq_ignore_ascii_case("true") => {
                Ok(AstExpr::Lit(Value::Bool(true)))
            }
            Token::Ident(s) if s.eq_ignore_ascii_case("false") => {
                Ok(AstExpr::Lit(Value::Bool(false)))
            }
            Token::Ident(s) if s.eq_ignore_ascii_case("null") => Ok(AstExpr::Lit(Value::Null)),
            Token::Ident(s) if s.eq_ignore_ascii_case("missing") => {
                if !self.dialect.supports_missing() {
                    return Err(EngineError::parse("MISSING literal is SQL++-only"));
                }
                Ok(AstExpr::Lit(Value::Missing))
            }
            Token::Ident(s) if !is_keyword(&s) => {
                if self.eat_if(&Token::LParen) {
                    // Function call.
                    let mut args = Vec::new();
                    if self.eat_if(&Token::Star) {
                        args.push(AstExpr::Star);
                        self.expect(&Token::RParen)?;
                    } else if !self.eat_if(&Token::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_if(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect(&Token::RParen)?;
                    }
                    return Ok(AstExpr::Func {
                        name: s.to_ascii_uppercase(),
                        args,
                    });
                }
                let mut parts = vec![s];
                while self.peek() == &Token::Dot {
                    // Lookahead: `t.*` belongs to the select list, not here.
                    if matches!(self.tokens.get(self.pos + 1), Some(Token::Star)) {
                        break;
                    }
                    self.bump();
                    parts.push(self.parse_identifier()?);
                }
                Ok(AstExpr::Path(parts))
            }
            Token::QuotedIdent(s) => {
                let mut parts = vec![s];
                while self.peek() == &Token::Dot {
                    if matches!(self.tokens.get(self.pos + 1), Some(Token::Star)) {
                        break;
                    }
                    self.bump();
                    parts.push(self.parse_identifier()?);
                }
                Ok(AstExpr::Path(parts))
            }
            t => Err(EngineError::parse(format!(
                "unexpected token {t} in expression"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sql(input: &str) -> SelectStmt {
        parse(input, Dialect::Sql).unwrap()
    }

    fn sqlpp(input: &str) -> SelectStmt {
        parse(input, Dialect::SqlPlusPlus).unwrap()
    }

    #[test]
    fn simple_select_star() {
        let s = sql("SELECT * FROM Test.Users");
        assert_eq!(s.items, vec![SelectItem::Star]);
        match &s.from.as_ref().unwrap().first {
            FromItem::Dataset { path, alias } => {
                assert_eq!(path, &vec!["Test".to_string(), "Users".to_string()]);
                assert!(alias.is_none());
            }
            _ => panic!("expected dataset"),
        }
    }

    #[test]
    fn select_value_sqlpp_only() {
        let s = sqlpp("SELECT VALUE t FROM Test.Users t");
        assert!(s.value_mode);
        assert!(parse("SELECT VALUE t FROM Test.Users t", Dialect::Sql).is_err());
    }

    #[test]
    fn nested_subquery() {
        let s = sql("SELECT t.name, t.address FROM (SELECT * FROM (SELECT * FROM Test.Users t) t WHERE t.lang = 'en') t LIMIT 10;");
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.items.len(), 2);
        match &s.from.as_ref().unwrap().first {
            FromItem::Subquery { query, alias } => {
                assert_eq!(alias.as_deref(), Some("t"));
                assert!(query.where_clause.is_some());
            }
            _ => panic!("expected subquery"),
        }
    }

    #[test]
    fn where_precedence() {
        let s = sql("SELECT * FROM d t WHERE a = 1 AND b = 2 OR NOT c = 3");
        // ((a=1 AND b=2) OR (NOT c=3))
        match s.where_clause.unwrap() {
            AstExpr::Binary(BinOp::Or, lhs, rhs) => {
                assert!(matches!(*lhs, AstExpr::Binary(BinOp::And, _, _)));
                assert!(matches!(*rhs, AstExpr::Unary(UnaryOp::Not, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let s = sql("SELECT a + b * 2 FROM d");
        match &s.items[0] {
            SelectItem::Expr { expr, .. } => match expr {
                AstExpr::Binary(BinOp::Add, _, rhs) => {
                    assert!(matches!(**rhs, AstExpr::Binary(BinOp::Mul, _, _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn group_order_limit() {
        let s = sql(
            "SELECT twenty, MAX(four) AS max_four FROM d t GROUP BY twenty ORDER BY twenty DESC LIMIT 5",
        );
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].desc);
        assert_eq!(s.limit, Some(5));
        match &s.items[1] {
            SelectItem::Expr { expr, alias } => {
                assert_eq!(alias.as_deref(), Some("max_four"));
                assert!(matches!(expr, AstExpr::Func { name, .. } if name == "MAX"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn count_star() {
        let s = sqlpp("SELECT VALUE COUNT(*) FROM data");
        match &s.items[0] {
            SelectItem::Expr {
                expr: AstExpr::Func { name, args },
                ..
            } => {
                assert_eq!(name, "COUNT");
                assert_eq!(args, &[AstExpr::Star]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn join_clause() {
        let s = sql(
            "SELECT COUNT(*) FROM (SELECT l.*, r.* FROM (SELECT * FROM leftT) l INNER JOIN (SELECT * FROM rightT) r ON l.unique1 = r.unique1) t",
        );
        match &s.from.as_ref().unwrap().first {
            FromItem::Subquery { query, .. } => {
                let f = query.from.as_ref().unwrap();
                assert_eq!(f.joins.len(), 1);
                assert_eq!(f.joins[0].kind, JoinKind::Inner);
                assert_eq!(
                    query.items,
                    vec![
                        SelectItem::QualifiedStar("l".into()),
                        SelectItem::QualifiedStar("r".into())
                    ]
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn sqlpp_join_bare_bindings() {
        let s = sqlpp(
            "SELECT VALUE COUNT(*) FROM (SELECT l, r FROM leftData l JOIN rightData r ON l.unique1 = r.unique1) t",
        );
        match &s.from.as_ref().unwrap().first {
            FromItem::Subquery { query, .. } => {
                assert_eq!(query.items.len(), 2);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn is_predicates() {
        let s = sqlpp("SELECT VALUE t FROM d t WHERE t.tenPercent IS UNKNOWN");
        assert!(matches!(
            s.where_clause.unwrap(),
            AstExpr::Is(_, IsKind::Unknown, false)
        ));
        let s2 = sql("SELECT * FROM d t WHERE \"tenPercent\" IS NULL");
        assert!(matches!(
            s2.where_clause.unwrap(),
            AstExpr::Is(_, IsKind::Null, false)
        ));
        assert!(parse("SELECT * FROM d WHERE x IS UNKNOWN", Dialect::Sql).is_err());
        let s3 = sqlpp("SELECT VALUE t FROM d t WHERE t.x IS NOT MISSING");
        assert!(matches!(
            s3.where_clause.unwrap(),
            AstExpr::Is(_, IsKind::Missing, true)
        ));
    }

    #[test]
    fn quoted_identifier_paths() {
        let s = sql("SELECT \"two\", \"four\" FROM (SELECT * FROM data) t LIMIT 5");
        assert_eq!(s.items.len(), 2);
        match &s.items[0] {
            SelectItem::Expr { expr, .. } => {
                assert_eq!(expr, &AstExpr::Path(vec!["two".to_string()]));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn implicit_alias_without_as() {
        let s = sql("SELECT upper(name) uname FROM d");
        match &s.items[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("uname")),
            _ => panic!(),
        }
    }

    #[test]
    fn error_cases() {
        assert!(parse("SELECT", Dialect::Sql).is_err());
        assert!(parse("SELECT * FROM", Dialect::Sql).is_err());
        assert!(parse("SELECT * FROM d WHERE", Dialect::Sql).is_err());
        assert!(parse("SELECT * FROM d LIMIT x", Dialect::Sql).is_err());
        assert!(parse("SELECT * FROM d extra garbage ,", Dialect::Sql).is_err());
        assert!(parse("SELECT VALUE a, b FROM d", Dialect::SqlPlusPlus).is_err());
    }

    #[test]
    fn select_expression_comparison() {
        // Table I operation 3: SELECT t.lang = 'en' FROM ...
        let s = sql("SELECT t.lang = 'en' FROM (SELECT * FROM d) t");
        match &s.items[0] {
            SelectItem::Expr { expr, .. } => {
                assert!(matches!(expr, AstExpr::Binary(BinOp::Eq, _, _)));
            }
            _ => panic!(),
        }
    }
}
