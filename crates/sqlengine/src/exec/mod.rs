//! Physical plan execution.
//!
//! Operators are streaming iterators wherever the operator is non-blocking
//! (scans, filters, projections, limits), so `LIMIT`-topped pipelines stop
//! early — the behaviour that makes lazy evaluation beat eager evaluation on
//! the paper's expressions 5 and 10. Blocking operators (sort, aggregate,
//! join build sides) materialize internally.

pub mod aggregate;
#[deny(clippy::unwrap_used)]
mod distinct;
pub mod eval;
#[deny(clippy::unwrap_used)]
mod join;
#[deny(clippy::unwrap_used)]
pub mod kernel;
pub mod parallel;
mod vector;

pub use kernel::KernelCache;
pub use parallel::{
    available_threads, batch_rows_override, default_batch_rows, ExecOptions, ExecReport,
    DEFAULT_BATCH_ROWS, DEFAULT_MORSEL_ROWS, MAX_BATCH_ROWS,
};

use crate::catalog::Database;
use crate::error::{EngineError, Result};
use crate::plan::logical::{AggArg, AggExpr, AggMode, ProjectSpec, Scalar};
use crate::plan::physical::{DatasetRef, PhysicalPlan};
use aggregate::{Accumulator, OrdValue};
use eval::{eval, make_record, passes_filter};
use polyframe_datamodel::{Record, Value};
use polyframe_storage::{Direction, ScanRange, Table};
use std::collections::{BTreeMap, BTreeSet};

/// A stream of result rows.
pub type RowIter<'a> = Box<dyn Iterator<Item = Result<Value>> + 'a>;

/// Executes physical plans against a database.
pub struct Executor<'a> {
    db: &'a Database,
}

impl<'a> Executor<'a> {
    /// New executor over `db`.
    pub fn new(db: &'a Database) -> Executor<'a> {
        Executor { db }
    }

    /// Run a plan to completion.
    pub fn run(&self, plan: &'a PhysicalPlan) -> Result<Vec<Value>> {
        self.stream(plan)?.collect()
    }

    /// Run a plan, using morsel-driven parallelism when `opts` allows and
    /// the plan shape is parallel-safe; everything else (including plans
    /// whose early-termination semantics matter, like `LIMIT`) takes the
    /// serial streaming path. Parallel and serial executions produce
    /// identical result sets.
    pub fn run_with(
        &self,
        plan: &'a PhysicalPlan,
        opts: &ExecOptions,
    ) -> Result<(Vec<Value>, ExecReport)> {
        self.run_with_kernels(plan, opts, None)
    }

    /// [`Executor::run_with`] with an optional [`KernelCache`] carrying
    /// adaptive kernel promotion state across queries. Without a cache,
    /// the vectorized path specializes eagerly (no warm-up counting).
    pub fn run_with_kernels(
        &self,
        plan: &'a PhysicalPlan,
        opts: &ExecOptions,
        kernels: Option<&KernelCache>,
    ) -> Result<(Vec<Value>, ExecReport)> {
        let mut fallback = None;
        if opts.workers > 1 || opts.vectorized {
            match parallel::try_run(self.db, plan, opts, kernels) {
                parallel::TryRunOutcome::Ran(result) => return result,
                // Remember *why* the batch/parallel path declined, so the
                // trace can report `fallback:<cause>`.
                parallel::TryRunOutcome::Fallback(cause) => fallback = Some(cause),
            }
        }
        let report = ExecReport {
            fallback,
            ..ExecReport::serial()
        };
        Ok((self.run(plan)?, report))
    }

    fn table(&self, ds: &DatasetRef) -> Result<&'a Table> {
        self.db.dataset(&ds.namespace, &ds.dataset)
    }

    fn index<'t>(&self, table: &'t Table, attr: &str) -> Result<&'t polyframe_storage::Index> {
        table
            .index_on(attr)
            .ok_or_else(|| EngineError::exec(format!("no index on attribute {attr} (planner bug)")))
    }

    /// Build the iterator tree for `plan`.
    pub fn stream(&self, plan: &'a PhysicalPlan) -> Result<RowIter<'a>> {
        match plan {
            PhysicalPlan::SeqScan { dataset } => {
                let table = self.table(dataset)?;
                Ok(Box::new(
                    table.heap().scan().map(|(_, r)| Ok(Value::Obj(r.clone()))),
                ))
            }
            PhysicalPlan::IndexScan {
                dataset,
                attr,
                range,
                direction,
            } => {
                let table = self.table(dataset)?;
                let index = self.index(table, attr)?;
                Ok(Box::new(index.scan(range, *direction).map(
                    move |(_, rid)| {
                        table
                            .get(rid)
                            .map(|r| Value::Obj(r.clone()))
                            .ok_or_else(|| EngineError::exec("dangling index entry"))
                    },
                )))
            }
            PhysicalPlan::IndexUnknownScan { dataset, attr } => {
                let table = self.table(dataset)?;
                let index = self.index(table, attr)?;
                let rids = index.scan_unknown();
                Ok(Box::new(rids.into_iter().map(move |rid| {
                    table
                        .get(rid)
                        .map(|r| Value::Obj(r.clone()))
                        .ok_or_else(|| EngineError::exec("dangling index entry"))
                })))
            }
            PhysicalPlan::IndexOnlyCount {
                dataset,
                attr,
                range,
                output,
            } => {
                let table = self.table(dataset)?;
                let index = self.index(table, attr)?;
                let count = match range {
                    Some(r) => index.count_range(r),
                    None => index.scan_unknown().len(),
                };
                Ok(single_row(make_record([(
                    output.clone(),
                    Value::Int(count as i64),
                )])))
            }
            PhysicalPlan::PrimaryIndexCount { dataset, output } => {
                let table = self.table(dataset)?;
                let pk = table
                    .primary_index()
                    .ok_or_else(|| EngineError::exec("no primary index (planner bug)"))?;
                // A leaf walk (not a heap scan): cheap, but not the O(1)
                // metadata lookup graph/document stores expose.
                let count = pk.count_range(&ScanRange::all());
                Ok(single_row(make_record([(
                    output.clone(),
                    Value::Int(count as i64),
                )])))
            }
            PhysicalPlan::IndexMinMax {
                dataset,
                attr,
                is_min,
                output,
            } => {
                let table = self.table(dataset)?;
                let index = self.index(table, attr)?;
                let v = if *is_min {
                    index.min_key()
                } else {
                    index.max_key()
                };
                Ok(single_row(make_record([(
                    output.clone(),
                    v.unwrap_or(Value::Null),
                )])))
            }
            PhysicalPlan::IndexOrderedScan {
                dataset,
                attr,
                direction,
                limit,
            } => {
                let table = self.table(dataset)?;
                let index = self.index(table, attr)?;
                let iter = index
                    .scan(&ScanRange::all(), *direction)
                    .map(move |(_, rid)| {
                        table
                            .get(rid)
                            .map(|r| Value::Obj(r.clone()))
                            .ok_or_else(|| EngineError::exec("dangling index entry"))
                    });
                match limit {
                    Some(n) => Ok(Box::new(iter.take(*n as usize))),
                    None => Ok(Box::new(iter)),
                }
            }
            PhysicalPlan::IndexOnlyJoinCount {
                left,
                right,
                output,
            } => {
                let lt = self.table(&left.0)?;
                let rt = self.table(&right.0)?;
                let li = self.index(lt, &left.1)?;
                let ri = self.index(rt, &right.1)?;
                let count = merge_join_count(
                    li.scan(&ScanRange::all(), Direction::Forward)
                        .map(|(k, _)| k),
                    ri.scan(&ScanRange::all(), Direction::Forward)
                        .map(|(k, _)| k),
                );
                Ok(single_row(make_record([(
                    output.clone(),
                    Value::Int(count as i64),
                )])))
            }
            PhysicalPlan::IndexNLJoin {
                outer,
                outer_key,
                inner,
                outer_binding,
                inner_binding,
            } => {
                let inner_table = self.table(&inner.0)?;
                let inner_index = self.index(inner_table, &inner.1)?;
                let outer_rows = self.stream(outer)?;
                Ok(Box::new(IndexNlJoinIter {
                    outer: outer_rows,
                    outer_key,
                    inner_table,
                    inner_index,
                    outer_binding: outer_binding.as_str(),
                    inner_binding: inner_binding.as_str(),
                    pending: Vec::new(),
                }))
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                left_key,
                right_key,
                left_binding,
                right_binding,
                kind,
            } => {
                // Build on the right, probe from the left.
                let mut build: BTreeMap<OrdValue, Vec<Value>> = BTreeMap::new();
                for row in self.stream(right)? {
                    let row = row?;
                    let key = eval(right_key, &row)?;
                    if key.is_unknown() {
                        continue;
                    }
                    build.entry(OrdValue(key)).or_default().push(row);
                }
                let probe = self.stream(left)?;
                let is_left_join = *kind == crate::ast::JoinKind::Left;
                let (lb, rb) = (left_binding.clone(), right_binding.clone());
                Ok(Box::new(probe.flat_map(move |row| {
                    let row = match row {
                        Ok(r) => r,
                        Err(e) => return vec![Err(e)],
                    };
                    let key = match eval(left_key, &row) {
                        Ok(k) => k,
                        Err(e) => return vec![Err(e)],
                    };
                    let matches = if key.is_unknown() {
                        None
                    } else {
                        build.get(&OrdValue(key))
                    };
                    match matches {
                        Some(rows) => rows
                            .iter()
                            .map(|r| {
                                Ok(make_record([
                                    (lb.clone(), row.clone()),
                                    (rb.clone(), r.clone()),
                                ]))
                            })
                            .collect(),
                        None if is_left_join => vec![Ok(make_record([
                            (lb.clone(), row.clone()),
                            (rb.clone(), Value::Null),
                        ]))],
                        None => Vec::new(),
                    }
                })))
            }
            PhysicalPlan::Filter { input, predicate } => {
                let rows = self.stream(input)?;
                Ok(Box::new(rows.filter_map(move |row| match row {
                    Ok(row) => match passes_filter(predicate, &row) {
                        Ok(true) => Some(Ok(row)),
                        Ok(false) => None,
                        Err(e) => Some(Err(e)),
                    },
                    Err(e) => Some(Err(e)),
                })))
            }
            PhysicalPlan::Project { input, spec } => {
                let rows = self.stream(input)?;
                Ok(Box::new(rows.map(move |row| {
                    let row = row?;
                    project_row(spec, &row)
                })))
            }
            PhysicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                mode,
            } => {
                let rows = self.stream(input)?;
                let out = run_aggregate(rows, group_by, aggs, *mode)?;
                Ok(Box::new(out.into_iter().map(Ok)))
            }
            PhysicalPlan::Sort { input, keys, topk } => {
                let rows: Result<Vec<Value>> = self.stream(input)?.collect();
                let mut rows = rows?;
                let mut keyed: Vec<(Vec<OrdValue>, Value)> = Vec::with_capacity(rows.len());
                for row in rows.drain(..) {
                    let mut kv = Vec::with_capacity(keys.len());
                    for (expr, _) in keys {
                        kv.push(OrdValue(eval(expr, &row)?));
                    }
                    keyed.push((kv, row));
                }
                keyed.sort_by(|(a, _), (b, _)| {
                    for (i, (_, desc)) in keys.iter().enumerate() {
                        let ord = a[i].cmp(&b[i]);
                        let ord = if *desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                if let Some(k) = topk {
                    keyed.truncate(*k as usize);
                }
                Ok(Box::new(keyed.into_iter().map(|(_, row)| Ok(row))))
            }
            PhysicalPlan::Limit { input, n } => {
                let rows = self.stream(input)?;
                Ok(Box::new(rows.take(*n as usize)))
            }
            PhysicalPlan::Distinct { input } => {
                let rows = self.stream(input)?;
                let mut seen: BTreeSet<OrdValue> = BTreeSet::new();
                let mut out = Vec::new();
                for row in rows {
                    let row = row?;
                    if seen.insert(OrdValue(row.clone())) {
                        out.push(row);
                    }
                }
                Ok(Box::new(out.into_iter().map(Ok)))
            }
            PhysicalPlan::Values { rows } => Ok(Box::new(rows.iter().cloned().map(Ok))),
        }
    }
}

fn single_row(row: Value) -> RowIter<'static> {
    Box::new(std::iter::once(Ok(row)))
}

/// Streaming index nested-loop join: each outer row probes the inner index
/// and fetches matching inner records from the heap.
struct IndexNlJoinIter<'a> {
    outer: RowIter<'a>,
    outer_key: &'a Scalar,
    inner_table: &'a Table,
    inner_index: &'a polyframe_storage::Index,
    outer_binding: &'a str,
    inner_binding: &'a str,
    pending: Vec<Value>,
}

impl<'a> Iterator for IndexNlJoinIter<'a> {
    type Item = Result<Value>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(row) = self.pending.pop() {
                return Some(Ok(row));
            }
            let outer_row = match self.outer.next()? {
                Ok(r) => r,
                Err(e) => return Some(Err(e)),
            };
            let key = match eval(self.outer_key, &outer_row) {
                Ok(k) => k,
                Err(e) => return Some(Err(e)),
            };
            if key.is_unknown() {
                continue;
            }
            for rid in self.inner_index.lookup(&key) {
                match self.inner_table.get(rid) {
                    Some(inner) => self.pending.push(make_record([
                        (self.outer_binding.to_string(), outer_row.clone()),
                        (self.inner_binding.to_string(), Value::Obj(inner.clone())),
                    ])),
                    None => return Some(Err(EngineError::exec("dangling index entry"))),
                }
            }
        }
    }
}

/// Apply a projection spec to one row.
pub fn project_row(spec: &ProjectSpec, row: &Value) -> Result<Value> {
    match spec {
        ProjectSpec::Value(s) => eval(s, row),
        ProjectSpec::Columns(cols) => {
            let mut rec = Record::with_capacity(cols.len());
            for (name, s) in cols {
                rec.insert(name.clone(), eval(s, row)?);
            }
            Ok(Value::Obj(rec))
        }
        ProjectSpec::MergeStars(bindings) => {
            let mut rec = Record::new();
            for b in bindings {
                match row.get_path(b) {
                    Value::Obj(inner) => {
                        for (k, v) in inner.iter() {
                            rec.insert(k.to_string(), v.clone());
                        }
                    }
                    Value::Missing | Value::Null => {}
                    other => {
                        return Err(EngineError::exec(format!(
                            "cannot flatten non-record binding {b} ({})",
                            other.type_name()
                        )))
                    }
                }
            }
            Ok(Value::Obj(rec))
        }
    }
}

/// Count merge-join matches between two sorted key streams (the index-only
/// join: `sum over distinct keys of left_dups * right_dups`).
fn merge_join_count<'v>(
    left: impl Iterator<Item = &'v Value>,
    right: impl Iterator<Item = &'v Value>,
) -> usize {
    use std::cmp::Ordering;
    let mut left = left.filter(|k| !k.is_unknown()).peekable();
    let mut right = right.filter(|k| !k.is_unknown()).peekable();
    let mut count = 0usize;
    while let (Some(&lk), Some(&rk)) = (left.peek(), right.peek()) {
        match polyframe_datamodel::cmp_total(lk, rk) {
            Ordering::Less => {
                left.next();
            }
            Ordering::Greater => {
                right.next();
            }
            Ordering::Equal => {
                let key = lk.clone();
                let mut l_dups = 0usize;
                while left.peek().is_some_and(|k| **k == key) {
                    l_dups += 1;
                    left.next();
                }
                let mut r_dups = 0usize;
                while right.peek().is_some_and(|k| **k == key) {
                    r_dups += 1;
                    right.next();
                }
                count += l_dups * r_dups;
            }
        }
    }
    count
}

/// Aggregate a materialized row set (public entry point used by the
/// distributed coordinator to merge shard partials).
pub fn aggregate_rows(
    rows: Vec<Value>,
    group_by: &[(String, Scalar)],
    aggs: &[AggExpr],
    mode: AggMode,
) -> Result<Vec<Value>> {
    run_aggregate(Box::new(rows.into_iter().map(Ok)), group_by, aggs, mode)
}

/// Hash (well, tree) aggregation shared by all modes.
fn run_aggregate(
    rows: RowIter<'_>,
    group_by: &[(String, Scalar)],
    aggs: &[AggExpr],
    mode: AggMode,
) -> Result<Vec<Value>> {
    let mut state = AggState::new(group_by, aggs, mode);
    for row in rows {
        state.push(&row?)?;
    }
    Ok(state.finish())
}

/// Incremental aggregation state: rows fold into the accumulators one at a
/// time, so neither the serial executor nor a parallel morsel ever holds
/// its input rows materialized. (Materializing a morsel before aggregating
/// costs ~2-3x on allocator pressure alone — each scanned record is a
/// fresh clone.)
pub(crate) struct AggState<'p> {
    group_by: &'p [(String, Scalar)],
    aggs: &'p [AggExpr],
    mode: AggMode,
    groups: BTreeMap<Vec<OrdValue>, Vec<Accumulator>>,
    scalar_accs: Vec<Accumulator>, // used when group_by is empty
    saw_any: bool,
}

impl<'p> AggState<'p> {
    /// Fresh state for one aggregation.
    pub(crate) fn new(
        group_by: &'p [(String, Scalar)],
        aggs: &'p [AggExpr],
        mode: AggMode,
    ) -> AggState<'p> {
        AggState {
            group_by,
            aggs,
            mode,
            groups: BTreeMap::new(),
            scalar_accs: aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
            saw_any: false,
        }
    }

    /// Fold one input row into the state.
    pub(crate) fn push(&mut self, row: &Value) -> Result<()> {
        self.saw_any = true;
        let accs = if self.group_by.is_empty() {
            &mut self.scalar_accs
        } else {
            let mut key = Vec::with_capacity(self.group_by.len());
            for (_, expr) in self.group_by {
                key.push(OrdValue(eval(expr, row)?));
            }
            let aggs = self.aggs;
            self.groups
                .entry(key)
                .or_insert_with(|| aggs.iter().map(|a| Accumulator::new(a.func)).collect())
        };
        for (agg, acc) in self.aggs.iter().zip(accs.iter_mut()) {
            match self.mode {
                AggMode::Complete | AggMode::Partial => match &agg.arg {
                    AggArg::Star => acc.update(None)?,
                    AggArg::Expr(e) => acc.update(Some(&eval(e, row)?))?,
                },
                AggMode::Final => {
                    // Input rows carry serialized partial states.
                    acc.merge_partial(&row.get_path(&agg.name))?;
                }
            }
        }
        Ok(())
    }

    /// Fold one row's pre-evaluated group key and aggregate arguments (the
    /// vectorized path computes both with batch programs, so this skips
    /// the per-row `Scalar` walk). `args[i] == None` is `COUNT(*)`; a
    /// slice shorter than the aggregate list updates only the leading
    /// accumulators. In `Final` mode each argument is a serialized
    /// partial state (the batch programs fetch `Field(agg.name)`), folded
    /// with `merge_partial` like the row path's `push`.
    pub(crate) fn push_values(
        &mut self,
        key: Vec<OrdValue>,
        args: &[Option<&Value>],
    ) -> Result<()> {
        self.saw_any = true;
        let mode = self.mode;
        let accs = if self.group_by.is_empty() {
            &mut self.scalar_accs
        } else {
            let aggs = self.aggs;
            self.groups
                .entry(key)
                .or_insert_with(|| aggs.iter().map(|a| Accumulator::new(a.func)).collect())
        };
        for (acc, arg) in accs.iter_mut().zip(args) {
            match (mode, arg) {
                (AggMode::Final, Some(partial)) => acc.merge_partial(partial)?,
                _ => acc.update(*arg)?,
            }
        }
        Ok(())
    }

    /// Borrow the scalar accumulators for the vectorized fused fold:
    /// `None` unless this is a scalar (no GROUP BY) aggregation folding
    /// raw values (`Complete`/`Partial` mode) — the only shape whose
    /// per-row fold is a plain `Accumulator::update` per argument. A
    /// `Some` return marks the state non-empty (`saw_any`), so callers
    /// must have at least one row to fold.
    pub(crate) fn typed_fold_accs(&mut self) -> Option<&mut [Accumulator]> {
        if !self.group_by.is_empty() || self.mode == AggMode::Final {
            return None;
        }
        self.saw_any = true;
        Some(&mut self.scalar_accs)
    }

    /// Tear the state into its accumulator parts for a cross-morsel merge.
    pub(crate) fn into_parts(self) -> AggParts {
        AggParts {
            groups: self.groups,
            scalar_accs: self.scalar_accs,
            saw_any: self.saw_any,
        }
    }

    /// Fold one morsel's accumulator parts into this state — the
    /// columnar-side final-aggregate merge: accumulator states combine
    /// directly via [`Accumulator::merge_state`] instead of being
    /// serialized to partial rows and re-aggregated.
    pub(crate) fn absorb(&mut self, parts: AggParts) {
        self.saw_any |= parts.saw_any;
        if parts.saw_any {
            for (acc, other) in self.scalar_accs.iter_mut().zip(&parts.scalar_accs) {
                acc.merge_state(other);
            }
        }
        for (key, accs) in parts.groups {
            match self.groups.entry(key) {
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    for (acc, other) in o.get_mut().iter_mut().zip(&accs) {
                        acc.merge_state(other);
                    }
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(accs);
                }
            }
        }
    }

    /// Emit the output rows, ordered by group key.
    pub(crate) fn finish(self) -> Vec<Value> {
        let emit = |key: Option<&[OrdValue]>, accs: &[Accumulator]| -> Value {
            let mut rec = Record::with_capacity(self.group_by.len() + self.aggs.len());
            if let Some(key) = key {
                for ((name, _), k) in self.group_by.iter().zip(key.iter()) {
                    rec.insert(name.clone(), k.0.clone());
                }
            }
            for (agg, acc) in self.aggs.iter().zip(accs.iter()) {
                let v = match self.mode {
                    AggMode::Partial => acc.to_partial(),
                    _ => acc.finalize(),
                };
                rec.insert(agg.name.clone(), v);
            }
            Value::Obj(rec)
        };

        if self.group_by.is_empty() {
            // Scalar aggregation always emits one row — except in Partial
            // mode on an empty shard, where emitting nothing lets Final
            // mode treat absent shards uniformly (COUNT still works
            // because a fresh accumulator contributes zero).
            if self.mode == AggMode::Partial && !self.saw_any {
                return Vec::new();
            }
            vec![emit(None, &self.scalar_accs)]
        } else {
            self.groups
                .iter()
                .map(|(key, accs)| emit(Some(key), accs))
                .collect()
        }
    }
}

/// One morsel's accumulator state, detached from the plan borrows so it
/// can cross the worker/coordinator boundary (see [`AggState::into_parts`]
/// and [`AggState::absorb`]).
pub(crate) struct AggParts {
    groups: BTreeMap<Vec<OrdValue>, Vec<Accumulator>>,
    scalar_accs: Vec<Accumulator>,
    saw_any: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::logical::AggFunc;
    use polyframe_datamodel::record;

    #[test]
    fn merge_join_count_products() {
        let left = [Value::Int(1), Value::Int(2), Value::Int(2), Value::Int(5)];
        let right = [Value::Int(2), Value::Int(2), Value::Int(2), Value::Int(5)];
        // key 2: 2*3 = 6, key 5: 1*1 = 1.
        assert_eq!(merge_join_count(left.iter(), right.iter()), 7);
    }

    #[test]
    fn merge_join_skips_unknowns() {
        let left = [Value::Null, Value::Int(1)];
        let right = [Value::Missing, Value::Int(1)];
        assert_eq!(merge_join_count(left.iter(), right.iter()), 1);
    }

    #[test]
    fn project_merge_stars() {
        let row = make_record([
            ("l".to_string(), Value::Obj(record! {"a" => 1i64})),
            ("r".to_string(), Value::Obj(record! {"b" => 2i64})),
        ]);
        let spec = ProjectSpec::MergeStars(vec!["l".into(), "r".into()]);
        let out = project_row(&spec, &row).unwrap();
        assert_eq!(out.get_path("a"), Value::Int(1));
        assert_eq!(out.get_path("b"), Value::Int(2));
    }

    #[test]
    fn scalar_aggregate_on_empty_input() {
        let rows: RowIter<'_> = Box::new(std::iter::empty());
        let aggs = vec![AggExpr {
            name: "count".into(),
            func: AggFunc::Count,
            arg: AggArg::Star,
        }];
        let out = run_aggregate(rows, &[], &aggs, AggMode::Complete).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get_path("count"), Value::Int(0));
    }

    #[test]
    fn partial_then_final_roundtrip() {
        let aggs = vec![AggExpr {
            name: "avg".into(),
            func: AggFunc::Avg,
            arg: AggArg::Expr(Scalar::Field("x".into())),
        }];
        let make_rows = |vals: Vec<i64>| -> Vec<Value> {
            vals.into_iter()
                .map(|v| Value::Obj(record! {"x" => v}))
                .collect()
        };
        let p1 = run_aggregate(
            Box::new(make_rows(vec![1, 2]).into_iter().map(Ok)),
            &[],
            &aggs,
            AggMode::Partial,
        )
        .unwrap();
        let p2 = run_aggregate(
            Box::new(make_rows(vec![3, 4, 5]).into_iter().map(Ok)),
            &[],
            &aggs,
            AggMode::Partial,
        )
        .unwrap();
        let all: Vec<Value> = p1.into_iter().chain(p2).collect();
        let fin = run_aggregate(
            Box::new(all.into_iter().map(Ok)),
            &[],
            &aggs,
            AggMode::Final,
        )
        .unwrap();
        assert_eq!(fin[0].get_path("avg"), Value::Double(3.0));
    }
}
