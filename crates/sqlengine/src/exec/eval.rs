//! Scalar expression evaluation over rows.

use crate::ast::{BinOp, IsKind, UnaryOp};
use crate::error::{EngineError, Result};
use crate::plan::logical::{Scalar, ScalarFunc};
use polyframe_datamodel::{sql_compare, Record, TriBool, Value};
use std::borrow::Cow;
use std::cmp::Ordering;

/// Evaluate `scalar` against one row.
pub fn eval(scalar: &Scalar, row: &Value) -> Result<Value> {
    Ok(eval_ref(scalar, row)?.into_owned())
}

/// Evaluate `scalar` against one row, borrowing wherever the result is
/// already stored somewhere — literals, field lookups and the input row
/// itself come back as `Cow::Borrowed`, so filters and aggregate arguments
/// never deep-clone per row. Only composite operators allocate.
pub fn eval_ref<'a>(scalar: &'a Scalar, row: &'a Value) -> Result<Cow<'a, Value>> {
    match scalar {
        Scalar::Input => Ok(Cow::Borrowed(row)),
        Scalar::Field(f) => Ok(borrowed_or_missing(row.get_path_ref(f))),
        Scalar::FieldOf(b, f) => Ok(borrowed_or_missing(
            row.get_path_ref(b).and_then(|v| v.get_path_ref(f)),
        )),
        Scalar::BindingRef(b) => Ok(borrowed_or_missing(row.get_path_ref(b))),
        Scalar::Lit(v) => Ok(Cow::Borrowed(v)),
        Scalar::Un(op, a) => {
            let v = eval_ref(a, row)?;
            Ok(Cow::Owned(eval_unop(*op, &v)?))
        }
        Scalar::Bin(op, a, b) => {
            let lhs = eval_ref(a, row)?;
            let rhs = eval_ref(b, row)?;
            Ok(Cow::Owned(eval_binop(*op, &lhs, &rhs)?))
        }
        Scalar::Call(func, args) => {
            let vals = args
                .iter()
                .map(|a| eval_ref(a, row))
                .collect::<Result<Vec<_>>>()?;
            Ok(Cow::Owned(eval_func(
                *func,
                vals.first().map(|c| c.as_ref()),
            )?))
        }
        Scalar::Is(a, kind, negated) => {
            let v = eval_ref(a, row)?;
            Ok(Cow::Owned(eval_is(&v, *kind, *negated)))
        }
    }
}

fn borrowed_or_missing(v: Option<&Value>) -> Cow<'_, Value> {
    match v {
        Some(v) => Cow::Borrowed(v),
        None => Cow::Owned(Value::Missing),
    }
}

/// Unary operator semantics (shared by the row evaluator and the batch
/// kernels).
pub(crate) fn eval_unop(op: UnaryOp, v: &Value) -> Result<Value> {
    match op {
        UnaryOp::Not => Ok(truthy(v).not().to_value()),
        UnaryOp::Neg => match v {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Double(d) => Ok(Value::Double(-d)),
            Value::Missing => Ok(Value::Missing),
            Value::Null => Ok(Value::Null),
            other => Err(EngineError::exec(format!(
                "cannot negate {}",
                other.type_name()
            ))),
        },
    }
}

/// `IS NULL` / `IS MISSING` / `IS UNKNOWN` semantics (shared by the row
/// evaluator and the batch kernels).
pub(crate) fn eval_is(v: &Value, kind: IsKind, negated: bool) -> Value {
    let hit = match kind {
        // `IS NULL` follows relational semantics: a field absent from a
        // loaded JSON record is NULL to SQL. SQL++ callers that need the
        // distinction use IS MISSING.
        IsKind::Null => v.is_unknown(),
        IsKind::Missing => v.is_missing(),
        IsKind::Unknown => v.is_unknown(),
    };
    Value::Bool(hit != negated)
}

/// Truthiness under three-valued logic.
pub fn truthy(v: &Value) -> TriBool {
    match v {
        Value::Bool(true) => TriBool::True,
        Value::Bool(false) => TriBool::False,
        _ => TriBool::Unknown,
    }
}

/// `WHERE`-clause test: evaluate and keep only definite `True`.
pub fn passes_filter(scalar: &Scalar, row: &Value) -> Result<bool> {
    Ok(truthy(eval_ref(scalar, row)?.as_ref()).is_true())
}

/// Binary operator semantics (shared by the row evaluator and the batch
/// kernels).
pub(crate) fn eval_binop(op: BinOp, lhs: &Value, rhs: &Value) -> Result<Value> {
    match op {
        BinOp::And => Ok(truthy(lhs).and(truthy(rhs)).to_value()),
        BinOp::Or => Ok(truthy(lhs).or(truthy(rhs)).to_value()),
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            if lhs.is_unknown() || rhs.is_unknown() {
                // Missing dominates null, mirroring SQL++ semantics.
                return Ok(if lhs.is_missing() || rhs.is_missing() {
                    Value::Missing
                } else {
                    Value::Null
                });
            }
            let cmp = sql_compare(lhs, rhs);
            let tri = match (op, cmp) {
                (BinOp::Eq, Some(Ordering::Equal)) => TriBool::True,
                (BinOp::Eq, Some(_)) => TriBool::False,
                (BinOp::Ne, Some(Ordering::Equal)) => TriBool::False,
                (BinOp::Ne, Some(_)) => TriBool::True,
                (BinOp::Lt, Some(o)) => TriBool::from_bool(o == Ordering::Less),
                (BinOp::Le, Some(o)) => TriBool::from_bool(o != Ordering::Greater),
                (BinOp::Gt, Some(o)) => TriBool::from_bool(o == Ordering::Greater),
                (BinOp::Ge, Some(o)) => TriBool::from_bool(o != Ordering::Less),
                // Incomparable known values: equality is decidable (false),
                // ordering is not.
                (BinOp::Eq, None) => TriBool::False,
                (BinOp::Ne, None) => TriBool::True,
                (_, None) => TriBool::Unknown,
                _ => unreachable!("comparison operators only"),
            };
            Ok(tri.to_value())
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            if lhs.is_missing() || rhs.is_missing() {
                return Ok(Value::Missing);
            }
            if lhs.is_unknown() || rhs.is_unknown() {
                return Ok(Value::Null);
            }
            arith(op, lhs, rhs)
        }
    }
}

fn arith(op: BinOp, lhs: &Value, rhs: &Value) -> Result<Value> {
    match (lhs, rhs) {
        (Value::Int(a), Value::Int(b)) => match op {
            BinOp::Add => Ok(Value::Int(a.wrapping_add(*b))),
            BinOp::Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            BinOp::Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            BinOp::Div => {
                if *b == 0 {
                    Ok(Value::Null)
                } else {
                    // SQL++/MongoDB division is exact; keep integers only
                    // when the division is.
                    if a % b == 0 {
                        Ok(Value::Int(a / b))
                    } else {
                        Ok(Value::Double(*a as f64 / *b as f64))
                    }
                }
            }
            BinOp::Mod => {
                if *b == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(a % b))
                }
            }
            _ => unreachable!(),
        },
        (a, b) if a.is_numeric() && b.is_numeric() => {
            let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
            let r = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => {
                    if y == 0.0 {
                        return Ok(Value::Null);
                    }
                    x / y
                }
                BinOp::Mod => {
                    if y == 0.0 {
                        return Ok(Value::Null);
                    }
                    x % y
                }
                _ => unreachable!(),
            };
            Ok(Value::Double(r))
        }
        (Value::Str(a), Value::Str(b)) if op == BinOp::Add => Ok(Value::Str(format!("{a}{b}"))),
        (a, b) => Err(EngineError::exec(format!(
            "cannot apply {op:?} to {} and {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

/// Scalar function semantics (shared by the row evaluator and the batch
/// kernels). All current functions are unary; extra arguments are
/// evaluated (for their errors) but ignored, as before.
pub(crate) fn eval_func(func: ScalarFunc, arg: Option<&Value>) -> Result<Value> {
    let arg = arg.ok_or_else(|| EngineError::exec("function needs an argument"))?;
    if arg.is_missing() {
        return Ok(Value::Missing);
    }
    if arg.is_null() {
        return Ok(Value::Null);
    }
    match func {
        ScalarFunc::Upper => match arg {
            Value::Str(s) => Ok(Value::Str(s.to_uppercase())),
            _ => Ok(Value::Null),
        },
        ScalarFunc::Lower => match arg {
            Value::Str(s) => Ok(Value::Str(s.to_lowercase())),
            _ => Ok(Value::Null),
        },
        ScalarFunc::Abs => match arg {
            Value::Int(i) => Ok(Value::Int(i.abs())),
            Value::Double(d) => Ok(Value::Double(d.abs())),
            _ => Ok(Value::Null),
        },
        ScalarFunc::Length => match arg {
            Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
            Value::Array(a) => Ok(Value::Int(a.len() as i64)),
            _ => Ok(Value::Null),
        },
        ScalarFunc::ToString => Ok(Value::Str(match arg {
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        })),
        ScalarFunc::ToInt => match arg {
            Value::Int(i) => Ok(Value::Int(*i)),
            Value::Double(d) => Ok(Value::Int(*d as i64)),
            Value::Str(s) => Ok(s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or(Value::Null)),
            Value::Bool(b) => Ok(Value::Int(i64::from(*b))),
            _ => Ok(Value::Null),
        },
    }
}

/// Build a record row from `(name, value)` pairs (helper for projections).
pub fn make_record(fields: impl IntoIterator<Item = (String, Value)>) -> Value {
    let mut r = Record::new();
    for (k, v) in fields {
        r.insert(k, v);
    }
    Value::Obj(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyframe_datamodel::record;

    fn row() -> Value {
        Value::Obj(record! {"a" => 5i64, "s" => "abc", "n" => Value::Null})
    }

    #[test]
    fn field_access() {
        assert_eq!(
            eval(&Scalar::Field("a".into()), &row()).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            eval(&Scalar::Field("zzz".into()), &row()).unwrap(),
            Value::Missing
        );
        assert_eq!(eval(&Scalar::Input, &row()).unwrap(), row());
    }

    #[test]
    fn comparisons_with_unknowns() {
        let cmp = Scalar::eq(Scalar::Field("n".into()), Scalar::Lit(Value::Int(1)));
        assert_eq!(eval(&cmp, &row()).unwrap(), Value::Null);
        let cmp2 = Scalar::eq(Scalar::Field("zz".into()), Scalar::Lit(Value::Int(1)));
        assert_eq!(eval(&cmp2, &row()).unwrap(), Value::Missing);
        assert!(!passes_filter(&cmp, &row()).unwrap());
    }

    #[test]
    fn arithmetic() {
        let e = |op| {
            Scalar::Bin(
                op,
                Box::new(Scalar::Field("a".into())),
                Box::new(Scalar::Lit(Value::Int(2))),
            )
        };
        assert_eq!(eval(&e(BinOp::Add), &row()).unwrap(), Value::Int(7));
        assert_eq!(eval(&e(BinOp::Mul), &row()).unwrap(), Value::Int(10));
        assert_eq!(eval(&e(BinOp::Mod), &row()).unwrap(), Value::Int(1));
        assert_eq!(eval(&e(BinOp::Div), &row()).unwrap(), Value::Double(2.5));
        let exact = Scalar::Bin(
            BinOp::Div,
            Box::new(Scalar::Lit(Value::Int(10))),
            Box::new(Scalar::Lit(Value::Int(2))),
        );
        assert_eq!(eval(&exact, &row()).unwrap(), Value::Int(5));
    }

    #[test]
    fn division_by_zero_is_null() {
        let e = Scalar::Bin(
            BinOp::Div,
            Box::new(Scalar::Lit(Value::Int(1))),
            Box::new(Scalar::Lit(Value::Int(0))),
        );
        assert_eq!(eval(&e, &row()).unwrap(), Value::Null);
    }

    #[test]
    fn string_functions() {
        let up = Scalar::Call(ScalarFunc::Upper, vec![Scalar::Field("s".into())]);
        assert_eq!(eval(&up, &row()).unwrap(), Value::str("ABC"));
        let up_null = Scalar::Call(ScalarFunc::Upper, vec![Scalar::Field("n".into())]);
        assert_eq!(eval(&up_null, &row()).unwrap(), Value::Null);
        let len = Scalar::Call(ScalarFunc::Length, vec![Scalar::Field("s".into())]);
        assert_eq!(eval(&len, &row()).unwrap(), Value::Int(3));
    }

    #[test]
    fn conversions() {
        let ts = Scalar::Call(ScalarFunc::ToString, vec![Scalar::Field("a".into())]);
        assert_eq!(eval(&ts, &row()).unwrap(), Value::str("5"));
        let ti = Scalar::Call(ScalarFunc::ToInt, vec![Scalar::Lit(Value::str("42"))]);
        assert_eq!(eval(&ti, &row()).unwrap(), Value::Int(42));
        let bad = Scalar::Call(ScalarFunc::ToInt, vec![Scalar::Lit(Value::str("x"))]);
        assert_eq!(eval(&bad, &row()).unwrap(), Value::Null);
    }

    #[test]
    fn is_predicates() {
        let isnull = Scalar::Is(Box::new(Scalar::Field("n".into())), IsKind::Null, false);
        assert_eq!(eval(&isnull, &row()).unwrap(), Value::Bool(true));
        let ismissing = Scalar::Is(Box::new(Scalar::Field("n".into())), IsKind::Missing, false);
        assert_eq!(eval(&ismissing, &row()).unwrap(), Value::Bool(false));
        let isunk = Scalar::Is(
            Box::new(Scalar::Field("gone".into())),
            IsKind::Unknown,
            false,
        );
        assert_eq!(eval(&isunk, &row()).unwrap(), Value::Bool(true));
        let neg = Scalar::Is(Box::new(Scalar::Field("a".into())), IsKind::Unknown, true);
        assert_eq!(eval(&neg, &row()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn logic_three_valued() {
        let unknown_and_false = Scalar::Bin(
            BinOp::And,
            Box::new(Scalar::Field("n".into())),
            Box::new(Scalar::Lit(Value::Bool(false))),
        );
        assert_eq!(
            eval(&unknown_and_false, &row()).unwrap(),
            Value::Bool(false)
        );
        let unknown_or_true = Scalar::Bin(
            BinOp::Or,
            Box::new(Scalar::Field("n".into())),
            Box::new(Scalar::Lit(Value::Bool(true))),
        );
        assert_eq!(eval(&unknown_or_true, &row()).unwrap(), Value::Bool(true));
        let not_unknown = Scalar::Un(UnaryOp::Not, Box::new(Scalar::Field("n".into())));
        assert_eq!(eval(&not_unknown, &row()).unwrap(), Value::Null);
    }

    #[test]
    fn string_concat() {
        let e = Scalar::Bin(
            BinOp::Add,
            Box::new(Scalar::Lit(Value::str("a"))),
            Box::new(Scalar::Lit(Value::str("b"))),
        );
        assert_eq!(eval(&e, &row()).unwrap(), Value::str("ab"));
    }

    #[test]
    fn type_errors() {
        let e = Scalar::Bin(
            BinOp::Sub,
            Box::new(Scalar::Lit(Value::str("a"))),
            Box::new(Scalar::Lit(Value::Int(1))),
        );
        assert!(eval(&e, &row()).is_err());
    }
}
