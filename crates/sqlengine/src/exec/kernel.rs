//! Adaptive kernel promotion.
//!
//! Compiling an [`ExprProgram`](super::vector) pipeline down to specialized
//! kernels ([`super::vector::specialize`]) costs a plan walk per query; the
//! payoff only exists for *hot* programs that run repeatedly. This module
//! holds the promotion policy: programs are fingerprinted by shape
//! ([`super::vector::fingerprint`]), execution counts accumulate in a
//! catalog-versioned cache (DDL bumps the version and implicitly drops stale
//! entries), and once a fingerprint has been seen [`PROMOTE_AFTER`] times the
//! specialized [`KernelPlan`](super::vector::KernelPlan) is built once and
//! shared — across subsequent queries *and* across the morsel workers of a
//! single parallel execution.
//!
//! Promotion is purely a scheduling decision: the specialized and generic
//! paths are byte-identical by construction, so a program promoted mid-stream
//! (run N generic, run N+1 specialized) never changes results.

use super::vector::{self, KernelPlan, VecPipeline};
use polyframe_observe::VersionedCache;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Executions of a program shape before it is promoted to specialized
/// kernels. With a threshold of 2, the first execution runs generic and
/// every subsequent execution of the same shape runs specialized.
pub const PROMOTE_AFTER: u64 = 2;

/// How many distinct program shapes the promotion cache tracks.
const KERNEL_CACHE_CAPACITY: usize = 128;

/// Per-shape promotion state: a run counter and the lazily-built plan.
#[derive(Default)]
struct KernelEntry {
    runs: AtomicU64,
    plan: OnceLock<Option<Arc<KernelPlan>>>,
}

/// Catalog-versioned cache of promoted kernel plans, keyed by program
/// fingerprint. Shared behind the engine; safe for concurrent sessions.
pub struct KernelCache {
    cache: VersionedCache<u64, KernelEntry>,
    promotions: AtomicU64,
}

impl Default for KernelCache {
    fn default() -> Self {
        KernelCache::new()
    }
}

impl KernelCache {
    /// New empty cache.
    pub fn new() -> KernelCache {
        KernelCache {
            cache: VersionedCache::new(KERNEL_CACHE_CAPACITY),
            promotions: AtomicU64::new(0),
        }
    }

    /// Total programs promoted to specialized kernels so far.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }

    /// Record one execution of the program with fingerprint `fp` under
    /// catalog `version`, and return the specialized plan if the shape is
    /// (now) hot enough. Returns `None` while the shape is still warming
    /// up or when specialization has nothing to offer for this shape.
    pub(super) fn resolve(
        &self,
        fp: u64,
        version: u64,
        vp: &VecPipeline,
    ) -> Option<Arc<KernelPlan>> {
        let entry = match self.cache.get(&fp, version) {
            Some(entry) => entry,
            None => self.cache.insert(fp, version, KernelEntry::default()),
        };
        let runs = entry.runs.fetch_add(1, Ordering::Relaxed) + 1;
        if runs < PROMOTE_AFTER {
            return None;
        }
        entry
            .plan
            .get_or_init(|| {
                let plan = vector::specialize(vp).map(Arc::new);
                if plan.is_some() {
                    self.promotions.fetch_add(1, Ordering::Relaxed);
                }
                plan
            })
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::super::vector::test_pipeline;
    use super::*;

    #[test]
    fn promotes_on_second_execution() {
        let cache = KernelCache::new();
        let vp = test_pipeline(true);
        let fp = vector::fingerprint("wisconsin", &vp);
        assert!(
            cache.resolve(fp, 1, &vp).is_none(),
            "first run stays generic"
        );
        assert_eq!(cache.promotions(), 0);
        let plan = cache.resolve(fp, 1, &vp);
        assert!(plan.is_some(), "second run promotes");
        assert_eq!(cache.promotions(), 1);
        // Third run reuses the same Arc'd plan; the counter does not grow.
        let again = cache.resolve(fp, 1, &vp).expect("stays promoted");
        assert!(Arc::ptr_eq(&again, &plan.expect("promoted")));
        assert_eq!(cache.promotions(), 1);
    }

    #[test]
    fn ddl_version_bump_resets_warmup() {
        let cache = KernelCache::new();
        let vp = test_pipeline(true);
        let fp = vector::fingerprint("wisconsin", &vp);
        assert!(cache.resolve(fp, 1, &vp).is_none());
        assert!(cache.resolve(fp, 1, &vp).is_some());
        // A DDL bump invalidates the entry: warm-up starts over.
        assert!(cache.resolve(fp, 2, &vp).is_none());
        assert!(cache.resolve(fp, 2, &vp).is_some());
    }

    #[test]
    fn unspecializable_shapes_never_promote() {
        let cache = KernelCache::new();
        // An expression aggregate argument with no filter stage: specialize
        // has nothing to offer, so the shape goes hot but never promotes.
        let vp = test_pipeline(false);
        let fp = vector::fingerprint("wisconsin", &vp);
        assert!(cache.resolve(fp, 1, &vp).is_none());
        assert!(
            cache.resolve(fp, 1, &vp).is_none(),
            "hot but unspecializable"
        );
        assert_eq!(cache.promotions(), 0);
    }
}
