//! Aggregate accumulators with partial/merge support.
//!
//! The same accumulators serve single-node aggregation and the distributed
//! two-phase (partial → merge → finalize) protocol used by
//! `polyframe-cluster`: `COUNT` sums partial counts, `AVG` carries
//! `(sum, count)`, `STDDEV` carries `(sum, sum-of-squares, count)` — the
//! standard decompositions that make speedup experiments (paper Fig. 9)
//! possible on aggregation queries.

use crate::error::{EngineError, Result};
use crate::plan::logical::AggFunc;
use polyframe_datamodel::{cmp_total, record, Value};
use std::cmp::Ordering;

/// Total-order wrapper making [`Value`] usable as a map/set key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrdValue(pub Value);

impl Eq for OrdValue {}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_total(&self.0, &other.0)
    }
}

/// A running aggregate.
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggFunc,
    state: State,
}

#[derive(Debug, Clone)]
enum State {
    Count(i64),
    Sum {
        sum: f64,
        int_only: bool,
        seen: bool,
    },
    MinMax(Option<Value>),
    Avg {
        sum: f64,
        count: i64,
    },
    Std {
        sum: f64,
        sumsq: f64,
        count: i64,
    },
}

impl Accumulator {
    /// Fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> Accumulator {
        let state = match func {
            AggFunc::Count => State::Count(0),
            AggFunc::Sum => State::Sum {
                sum: 0.0,
                int_only: true,
                seen: false,
            },
            AggFunc::Min | AggFunc::Max => State::MinMax(None),
            AggFunc::Avg => State::Avg { sum: 0.0, count: 0 },
            AggFunc::StdDev => State::Std {
                sum: 0.0,
                sumsq: 0.0,
                count: 0,
            },
        };
        Accumulator { func, state }
    }

    /// The aggregate function this accumulator computes.
    pub fn func(&self) -> AggFunc {
        self.func
    }

    /// Fold a row's value in. `COUNT(*)` callers pass `None` for "a row
    /// exists"; expression aggregates pass the evaluated argument (unknown
    /// values are skipped per SQL semantics).
    pub fn update(&mut self, value: Option<&Value>) -> Result<()> {
        match (&mut self.state, value) {
            (State::Count(n), None) => *n += 1,
            (State::Count(n), Some(v)) => {
                if !v.is_unknown() {
                    *n += 1;
                }
            }
            (_, None) => {
                return Err(EngineError::exec("only COUNT accepts a bare row"));
            }
            (
                State::Sum {
                    sum,
                    int_only,
                    seen,
                },
                Some(v),
            ) => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *seen = true;
                    if !matches!(v, Value::Int(_)) {
                        *int_only = false;
                    }
                } else if !v.is_unknown() {
                    return Err(non_numeric("SUM", v));
                }
            }
            (State::MinMax(slot), Some(v)) => {
                if !v.is_unknown() {
                    let better = match (&self.func, slot.as_ref()) {
                        (_, None) => true,
                        (AggFunc::Min, Some(cur)) => cmp_total(v, cur) == Ordering::Less,
                        (AggFunc::Max, Some(cur)) => cmp_total(v, cur) == Ordering::Greater,
                        _ => unreachable!(),
                    };
                    if better {
                        *slot = Some(v.clone());
                    }
                }
            }
            (State::Avg { sum, count }, Some(v)) => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *count += 1;
                } else if !v.is_unknown() {
                    return Err(non_numeric("AVG", v));
                }
            }
            (State::Std { sum, sumsq, count }, Some(v)) => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *sumsq += x * x;
                    *count += 1;
                } else if !v.is_unknown() {
                    return Err(non_numeric("STDDEV", v));
                }
            }
        }
        Ok(())
    }

    /// Typed fast fold: exactly `update(Some(&Value::Int(i)))`, minus the
    /// `Value` dispatch. Int lanes never error (always numeric, never
    /// unknown), so specialized kernels fold raw `i64` vectors through
    /// this in lane order and stay bit-identical to the generic path.
    pub(crate) fn update_int(&mut self, i: i64) {
        match &mut self.state {
            State::Count(n) => *n += 1,
            State::Sum { sum, seen, .. } => {
                // An Int lane leaves `int_only` set, same as `update`.
                *sum += i as f64;
                *seen = true;
            }
            State::MinMax(slot) => {
                let v = Value::Int(i);
                let better = match (&self.func, slot.as_ref()) {
                    (_, None) => true,
                    (AggFunc::Min, Some(cur)) => cmp_total(&v, cur) == Ordering::Less,
                    (AggFunc::Max, Some(cur)) => cmp_total(&v, cur) == Ordering::Greater,
                    _ => unreachable!(),
                };
                if better {
                    *slot = Some(v);
                }
            }
            State::Avg { sum, count } => {
                *sum += i as f64;
                *count += 1;
            }
            State::Std { sum, sumsq, count } => {
                let x = i as f64;
                *sum += x;
                *sumsq += x * x;
                *count += 1;
            }
        }
    }

    /// Typed fast fold: exactly `update(Some(&Value::Double(d)))`. Double
    /// lanes (NaN included — `as_f64` passes NaN through) never error.
    pub(crate) fn update_double(&mut self, d: f64) {
        match &mut self.state {
            State::Count(n) => *n += 1,
            State::Sum {
                sum,
                int_only,
                seen,
            } => {
                *sum += d;
                *seen = true;
                *int_only = false;
            }
            State::MinMax(slot) => {
                let v = Value::Double(d);
                let better = match (&self.func, slot.as_ref()) {
                    (_, None) => true,
                    (AggFunc::Min, Some(cur)) => cmp_total(&v, cur) == Ordering::Less,
                    (AggFunc::Max, Some(cur)) => cmp_total(&v, cur) == Ordering::Greater,
                    _ => unreachable!(),
                };
                if better {
                    *slot = Some(v);
                }
            }
            State::Avg { sum, count } => {
                *sum += d;
                *count += 1;
            }
            State::Std { sum, sumsq, count } => {
                *sum += d;
                *sumsq += d * d;
                *count += 1;
            }
        }
    }

    /// Batched `COUNT(*)`: exactly `n` calls of `update(None)` on a COUNT
    /// accumulator. Callers guarantee the function; other states never
    /// take this path.
    pub(crate) fn add_count(&mut self, n: i64) {
        match &mut self.state {
            State::Count(c) => *c += n,
            _ => unreachable!("add_count on non-COUNT accumulator"),
        }
    }

    /// Final value.
    pub fn finalize(&self) -> Value {
        match &self.state {
            State::Count(n) => Value::Int(*n),
            State::Sum {
                sum,
                int_only,
                seen,
            } => {
                if !*seen {
                    Value::Null
                } else if *int_only {
                    Value::Int(*sum as i64)
                } else {
                    Value::Double(*sum)
                }
            }
            State::MinMax(v) => v.clone().unwrap_or(Value::Null),
            State::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / *count as f64)
                }
            }
            State::Std { sum, sumsq, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    let n = *count as f64;
                    let mean = sum / n;
                    let var = (sumsq / n - mean * mean).max(0.0);
                    Value::Double(var.sqrt())
                }
            }
        }
    }

    /// Serialize the running state for shipping between shards.
    pub fn to_partial(&self) -> Value {
        match &self.state {
            State::Count(n) => Value::Obj(record! {"count" => *n}),
            State::Sum {
                sum,
                int_only,
                seen,
            } => Value::Obj(record! {
                "sum" => *sum,
                "int_only" => *int_only,
                "seen" => *seen,
            }),
            State::MinMax(v) => Value::Obj(record! {
                "value" => v.clone().unwrap_or(Value::Null),
                "present" => v.is_some(),
            }),
            State::Avg { sum, count } => Value::Obj(record! {
                "sum" => *sum,
                "count" => *count,
            }),
            State::Std { sum, sumsq, count } => Value::Obj(record! {
                "sum" => *sum,
                "sumsq" => *sumsq,
                "count" => *count,
            }),
        }
    }

    /// Merge another accumulator's state directly — bit-for-bit the same
    /// arithmetic as `merge_partial(&other.to_partial())`, minus the
    /// record round-trip. The vectorized final-aggregate merge folds
    /// per-morsel states with this instead of rematerializing partial
    /// rows.
    pub fn merge_state(&mut self, other: &Accumulator) {
        match (&mut self.state, &other.state) {
            (State::Count(n), State::Count(m)) => *n += m,
            (
                State::Sum {
                    sum,
                    int_only,
                    seen,
                },
                State::Sum {
                    sum: s2,
                    int_only: i2,
                    seen: e2,
                },
            ) => {
                *sum += s2;
                *int_only &= i2;
                *seen |= e2;
            }
            (State::MinMax(slot), State::MinMax(Some(v))) => {
                let better = match (&self.func, slot.as_ref()) {
                    (_, None) => true,
                    (AggFunc::Min, Some(cur)) => cmp_total(v, cur) == Ordering::Less,
                    (AggFunc::Max, Some(cur)) => cmp_total(v, cur) == Ordering::Greater,
                    _ => unreachable!(),
                };
                if better {
                    *slot = Some(v.clone());
                }
            }
            (State::MinMax(_), State::MinMax(None)) => {}
            (State::Avg { sum, count }, State::Avg { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            (
                State::Std { sum, sumsq, count },
                State::Std {
                    sum: s2,
                    sumsq: q2,
                    count: c2,
                },
            ) => {
                *sum += s2;
                *sumsq += q2;
                *count += c2;
            }
            // Accumulators merged across morsels always share a function.
            _ => unreachable!("merge_state across aggregate kinds"),
        }
    }

    /// Merge a serialized partial state (from [`Accumulator::to_partial`]).
    pub fn merge_partial(&mut self, partial: &Value) -> Result<()> {
        let get_f = |k: &str| partial.get_path(k).as_f64().unwrap_or(0.0);
        let get_i = |k: &str| partial.get_path(k).as_i64().unwrap_or(0);
        let get_b = |k: &str| partial.get_path(k).as_bool().unwrap_or(false);
        match &mut self.state {
            State::Count(n) => *n += get_i("count"),
            State::Sum {
                sum,
                int_only,
                seen,
            } => {
                *sum += get_f("sum");
                *int_only &= get_b("int_only");
                *seen |= get_b("seen");
            }
            State::MinMax(slot) => {
                if get_b("present") {
                    let v = partial.get_path("value");
                    let better = match (&self.func, slot.as_ref()) {
                        (_, None) => true,
                        (AggFunc::Min, Some(cur)) => cmp_total(&v, cur) == Ordering::Less,
                        (AggFunc::Max, Some(cur)) => cmp_total(&v, cur) == Ordering::Greater,
                        _ => unreachable!(),
                    };
                    if better {
                        *slot = Some(v);
                    }
                }
            }
            State::Avg { sum, count } => {
                *sum += get_f("sum");
                *count += get_i("count");
            }
            State::Std { sum, sumsq, count } => {
                *sum += get_f("sum");
                *sumsq += get_f("sumsq");
                *count += get_i("count");
            }
        }
        Ok(())
    }
}

fn non_numeric(func: &str, v: &Value) -> EngineError {
    EngineError::exec(format!("{func} over non-numeric value ({})", v.type_name()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, vals: &[Value]) -> Value {
        let mut acc = Accumulator::new(func);
        for v in vals {
            acc.update(Some(v)).unwrap();
        }
        acc.finalize()
    }

    #[test]
    fn count_skips_unknowns() {
        assert_eq!(
            run(
                AggFunc::Count,
                &[Value::Int(1), Value::Null, Value::Missing, Value::Int(2)]
            ),
            Value::Int(2)
        );
        let mut star = Accumulator::new(AggFunc::Count);
        for _ in 0..5 {
            star.update(None).unwrap();
        }
        assert_eq!(star.finalize(), Value::Int(5));
    }

    #[test]
    fn sum_int_preservation() {
        assert_eq!(
            run(AggFunc::Sum, &[Value::Int(1), Value::Int(2)]),
            Value::Int(3)
        );
        assert_eq!(
            run(AggFunc::Sum, &[Value::Int(1), Value::Double(0.5)]),
            Value::Double(1.5)
        );
        assert_eq!(run(AggFunc::Sum, &[Value::Null]), Value::Null);
    }

    #[test]
    fn min_max() {
        let vals = [Value::Int(5), Value::Null, Value::Int(2), Value::Int(9)];
        assert_eq!(run(AggFunc::Min, &vals), Value::Int(2));
        assert_eq!(run(AggFunc::Max, &vals), Value::Int(9));
        assert_eq!(run(AggFunc::Min, &[]), Value::Null);
    }

    #[test]
    fn avg_and_std() {
        let vals: Vec<Value> = (1..=4).map(Value::Int).collect();
        assert_eq!(run(AggFunc::Avg, &vals), Value::Double(2.5));
        // Population stddev of 1..4 = sqrt(1.25).
        match run(AggFunc::StdDev, &vals) {
            Value::Double(d) => assert!((d - 1.25f64.sqrt()).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn partial_merge_equals_direct() {
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
            AggFunc::StdDev,
        ] {
            let all: Vec<Value> = (1..=10).map(Value::Int).collect();
            let direct = run(func, &all);

            let mut shard1 = Accumulator::new(func);
            let mut shard2 = Accumulator::new(func);
            for v in &all[..4] {
                shard1.update(Some(v)).unwrap();
            }
            for v in &all[4..] {
                shard2.update(Some(v)).unwrap();
            }
            let mut merged = Accumulator::new(func);
            merged.merge_partial(&shard1.to_partial()).unwrap();
            merged.merge_partial(&shard2.to_partial()).unwrap();
            let merged_val = merged.finalize();
            match (&direct, &merged_val) {
                (Value::Double(a), Value::Double(b)) => assert!((a - b).abs() < 1e-9),
                (a, b) => assert_eq!(a, b, "func {func:?}"),
            }
        }
    }

    #[test]
    fn merge_state_equals_partial_roundtrip() {
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
            AggFunc::StdDev,
        ] {
            let vals: Vec<Value> = vec![
                Value::Int(3),
                Value::Double(1.5),
                Value::Null,
                Value::Int(-2),
            ];
            let mut a = Accumulator::new(func);
            let mut b = Accumulator::new(func);
            for v in &vals[..2] {
                a.update(Some(v)).unwrap();
            }
            for v in &vals[2..] {
                b.update(Some(v)).unwrap();
            }
            let mut via_partial = Accumulator::new(func);
            via_partial.merge_partial(&a.to_partial()).unwrap();
            via_partial.merge_partial(&b.to_partial()).unwrap();
            let mut via_state = Accumulator::new(func);
            via_state.merge_state(&a);
            via_state.merge_state(&b);
            // Bit-exact, not approximately equal: both run the same f64
            // additions in the same order.
            assert_eq!(
                format!("{:?}", via_state.finalize()),
                format!("{:?}", via_partial.finalize()),
                "func {func:?}"
            );
            assert_eq!(
                format!("{:?}", via_state.to_partial()),
                format!("{:?}", via_partial.to_partial()),
                "func {func:?} partial"
            );
        }
    }

    #[test]
    fn typed_folds_match_update() {
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
            AggFunc::StdDev,
        ] {
            let mut generic = Accumulator::new(func);
            let mut typed = Accumulator::new(func);
            for &i in &[3i64, -7, 0, 9, i64::MAX] {
                generic.update(Some(&Value::Int(i))).unwrap();
                typed.update_int(i);
            }
            for &d in &[1.5, f64::NAN, -0.0, 2.0, f64::INFINITY] {
                generic.update(Some(&Value::Double(d))).unwrap();
                typed.update_double(d);
            }
            // Bit-exact: same f64 additions in the same order.
            assert_eq!(
                format!("{:?}", typed.finalize()),
                format!("{:?}", generic.finalize()),
                "func {func:?}"
            );
            assert_eq!(
                format!("{:?}", typed.to_partial()),
                format!("{:?}", generic.to_partial()),
                "func {func:?} partial"
            );
        }
        let mut generic = Accumulator::new(AggFunc::Count);
        let mut typed = Accumulator::new(AggFunc::Count);
        for _ in 0..7 {
            generic.update(None).unwrap();
        }
        typed.add_count(7);
        assert_eq!(typed.finalize(), generic.finalize());
    }

    #[test]
    fn errors_on_non_numeric() {
        let mut acc = Accumulator::new(AggFunc::Sum);
        assert!(acc.update(Some(&Value::str("x"))).is_err());
        let mut avg = Accumulator::new(AggFunc::Avg);
        assert!(avg.update(None).is_err());
    }

    #[test]
    fn ordvalue_total_order() {
        let mut v = [
            OrdValue(Value::str("b")),
            OrdValue(Value::Int(1)),
            OrdValue(Value::Null),
        ];
        v.sort();
        assert_eq!(v[0].0, Value::Null);
        assert_eq!(v[2].0, Value::str("b"));
    }
}
