//! Morsel-driven intra-query parallelism.
//!
//! HyPer-style morsel execution adapted to PolyFrame's single-node engines:
//! the scan leaf of a pipeline is split into fixed-size slot-range *morsels*
//! (heap slot ranges for `SeqScan`, chunks of a materialized rid list for
//! `IndexScan`), a small pool of `std::thread::scope` workers pulls morsel
//! indexes off a shared atomic counter, runs the row-local operators
//! (filter/project) plus a per-morsel partial of the blocking terminal
//! (partial aggregation, chunk sort), and the coordinator merges partials
//! **in morsel order** so parallel execution is byte-identical to serial:
//!
//! * plain pipelines concatenate morsel outputs in morsel order — the same
//!   row order a serial scan produces;
//! * aggregates merge per-morsel partial states into a `BTreeMap` keyed by
//!   the group values, the same ordered-group output as the serial path
//!   (and the same combiner protocol the cluster coordinator uses);
//! * sorts stable-sort each chunk and k-way merge with the chunk index as
//!   the tiebreak, reproducing the serial stable sort's tie order.
//!
//! Plans whose shape is not parallel-safe (joins, DISTINCT, `Final`-mode
//! aggregates, LIMIT-topped pipelines that rely on early termination, and
//! the index-only fast paths, which never touch the heap) fall back to the
//! serial streaming executor unchanged.

use super::aggregate::{Accumulator, OrdValue};
use super::eval::{eval, passes_filter};
use super::vector;
use super::{aggregate_rows, project_row, AggState};
use crate::catalog::Database;
use crate::error::{EngineError, Result};
use crate::plan::logical::{AggExpr, AggMode, ProjectSpec, Scalar};
use crate::plan::physical::{DatasetRef, PhysicalPlan};
use polyframe_datamodel::{Record, Value};
use polyframe_observe::sync::Mutex;
use polyframe_storage::{Direction, RecordId, ScanRange, Table};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Default number of heap slots (or index rids) per morsel.
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

pub use polyframe_storage::{DEFAULT_BATCH_ROWS, MAX_BATCH_ROWS};

/// Tuning knobs for query execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker threads used for parallel-safe pipelines. `1` (or `0`)
    /// executes everything single-threaded.
    pub workers: usize,
    /// Heap slots (or index rids) per morsel.
    pub morsel_rows: usize,
    /// Use the vectorized batch path for whitelisted pipeline shapes
    /// (columnar batches + compiled expression programs). Pipelines the
    /// program compiler cannot express fall back to the row path either
    /// way; results are byte-identical.
    pub vectorized: bool,
    /// Rows per column batch on the vectorized path.
    pub batch_rows: usize,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            workers: available_threads(),
            morsel_rows: DEFAULT_MORSEL_ROWS,
            vectorized: true,
            batch_rows: default_batch_rows(),
        }
    }
}

impl ExecOptions {
    /// Force single-threaded execution (vectorization stays on).
    pub fn serial() -> ExecOptions {
        ExecOptions::with_workers(1)
    }

    /// Single-threaded row-at-a-time execution: the reference path every
    /// other configuration must match byte-for-byte.
    pub fn rowwise() -> ExecOptions {
        ExecOptions {
            workers: 1,
            vectorized: false,
            ..ExecOptions::default()
        }
    }

    /// Parallel execution with exactly `workers` threads.
    pub fn with_workers(workers: usize) -> ExecOptions {
        ExecOptions {
            workers,
            ..ExecOptions::default()
        }
    }
}

/// Worker-thread budget: the `POLYFRAME_THREADS` environment variable when
/// set to a positive integer, otherwise the machine's available
/// parallelism.
///
/// Read **once** and cached for the process lifetime: `ExecOptions`
/// defaults sit on the per-query hot path, and re-reading the
/// environment there is both a needless syscall and racy against
/// `set_var` once multiple serving sessions run queries concurrently.
pub fn available_threads() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        thread_override(std::env::var("POLYFRAME_THREADS").ok().as_deref()).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    })
}

/// Parse a `POLYFRAME_THREADS`-style override (split out of
/// [`available_threads`] so the parsing is testable without touching the
/// process environment).
pub fn thread_override(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|n| *n >= 1)
}

/// Batch size for the vectorized path: the `POLYFRAME_BATCH_SIZE`
/// environment variable when set to a valid value, otherwise
/// [`DEFAULT_BATCH_ROWS`]. Read once and cached, like
/// [`available_threads`].
pub fn default_batch_rows() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        batch_rows_override(std::env::var("POLYFRAME_BATCH_SIZE").ok().as_deref())
            .unwrap_or(DEFAULT_BATCH_ROWS)
    })
}

/// Parse a `POLYFRAME_BATCH_SIZE`-style override. Zero and garbage are
/// rejected (the default applies); absurdly large values clamp to
/// [`MAX_BATCH_ROWS`] — an override can never panic or wedge execution.
pub fn batch_rows_override(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|n| *n >= 1)
        .map(|n| n.min(MAX_BATCH_ROWS))
}

/// How one plan execution actually ran.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Worker threads used (`1` means a single-threaded path ran).
    pub parallelism: usize,
    /// Per-morsel wall time, indexed by morsel; empty on the serial path.
    pub morsel_times: Vec<Duration>,
    /// Whether the vectorized batch path ran (`false` = row-path
    /// fallback, or vectorization disabled).
    pub vectorized: bool,
    /// Column batches processed on the vectorized path.
    pub batches: usize,
    /// Configured rows per batch (0 when the row path ran).
    pub batch_rows: usize,
    /// Time spent compiling expression programs (zero when vectorization
    /// was not attempted).
    pub compile_time: Duration,
}

impl ExecReport {
    /// Report for a serial row-path execution.
    pub fn serial() -> ExecReport {
        ExecReport {
            parallelism: 1,
            ..ExecReport::default()
        }
    }
}

/// Row-local operators a worker applies to each scanned row.
pub(super) enum MorselOp<'p> {
    Filter(&'p Scalar),
    Project(&'p ProjectSpec),
}

/// The scan leaf being partitioned.
enum Leaf<'p> {
    Seq(&'p DatasetRef),
    Index {
        dataset: &'p DatasetRef,
        attr: &'p str,
        range: &'p ScanRange,
        direction: Direction,
    },
}

/// The blocking operator (if any) topping the parallel pipeline.
pub(super) enum Terminal<'p> {
    /// No blocking terminal: concatenate morsel outputs in morsel order.
    Collect,
    /// Per-morsel partial aggregation, merged by the coordinator.
    Aggregate {
        group_by: &'p [(String, Scalar)],
        aggs: &'p [AggExpr],
        mode: AggMode,
    },
    /// Per-morsel chunk sort, k-way merged by the coordinator.
    Sort {
        keys: &'p [(Scalar, bool)],
        topk: Option<u64>,
    },
}

/// A parallel-safe decomposition of a physical plan.
pub(super) struct ParallelPlan<'p> {
    /// Projections sitting *above* the blocking terminal, outermost first;
    /// applied per result row after the merge.
    post: Vec<&'p ProjectSpec>,
    pub(super) terminal: Terminal<'p>,
    /// Row-local ops between leaf and terminal, in application order.
    pub(super) ops: Vec<MorselOp<'p>>,
    leaf: Leaf<'p>,
}

/// What one worker hands back for one morsel.
pub(super) enum MorselOut {
    /// Result rows (plain pipelines) or partial-aggregate rows.
    Rows(Vec<Value>),
    /// A sorted chunk of `(sort key, row)` pairs.
    Keyed(Vec<(Vec<SortKey>, Value)>),
}

/// A sort key component with its direction baked in, so chunk sorting and
/// the k-way merge heap share one `Ord`.
#[derive(Clone, PartialEq, Eq)]
pub(super) enum SortKey {
    Asc(OrdValue),
    Desc(OrdValue),
}

impl Ord for SortKey {
    fn cmp(&self, other: &SortKey) -> std::cmp::Ordering {
        match (self, other) {
            (SortKey::Asc(a), SortKey::Asc(b)) => a.cmp(b),
            (SortKey::Desc(a), SortKey::Desc(b)) => b.cmp(a),
            // A key position always has one direction.
            _ => unreachable!("mixed sort-key directions at one position"),
        }
    }
}

impl PartialOrd for SortKey {
    fn partial_cmp(&self, other: &SortKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Decompose `plan` into a parallel-safe shape, or `None` for the serial
/// fallback.
fn analyze(plan: &PhysicalPlan) -> Option<ParallelPlan<'_>> {
    // Peel projections off the top; they re-apply per row after the merge.
    let mut post = Vec::new();
    let mut node = plan;
    while let PhysicalPlan::Project { input, spec } = node {
        post.push(spec);
        node = input;
    }
    match node {
        PhysicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            mode,
        } if *mode != AggMode::Final => {
            let (ops, leaf) = pipeline(input)?;
            Some(ParallelPlan {
                post,
                terminal: Terminal::Aggregate {
                    group_by,
                    aggs,
                    mode: *mode,
                },
                ops,
                leaf,
            })
        }
        PhysicalPlan::Sort { input, keys, topk } => {
            let (ops, leaf) = pipeline(input)?;
            Some(ParallelPlan {
                post,
                terminal: Terminal::Sort { keys, topk: *topk },
                ops,
                leaf,
            })
        }
        _ => {
            // No blocking terminal: every operator (including the peeled
            // projections) is row-local, so re-walk from the root.
            let (ops, leaf) = pipeline(plan)?;
            Some(ParallelPlan {
                post: Vec::new(),
                terminal: Terminal::Collect,
                ops,
                leaf,
            })
        }
    }
}

/// Collect the row-local operator chain down to a partitionable scan leaf.
fn pipeline(plan: &PhysicalPlan) -> Option<(Vec<MorselOp<'_>>, Leaf<'_>)> {
    let mut ops = Vec::new();
    let mut node = plan;
    loop {
        match node {
            PhysicalPlan::Filter { input, predicate } => {
                ops.push(MorselOp::Filter(predicate));
                node = input;
            }
            PhysicalPlan::Project { input, spec } => {
                ops.push(MorselOp::Project(spec));
                node = input;
            }
            PhysicalPlan::SeqScan { dataset } => {
                ops.reverse();
                return Some((ops, Leaf::Seq(dataset)));
            }
            PhysicalPlan::IndexScan {
                dataset,
                attr,
                range,
                direction,
            } => {
                ops.reverse();
                return Some((
                    ops,
                    Leaf::Index {
                        dataset,
                        attr,
                        range,
                        direction: *direction,
                    },
                ));
            }
            // Joins, limits, distinct, nested blocking ops, the index-only
            // fast paths: serial fallback.
            _ => return None,
        }
    }
}

/// Try to run `plan` with morsel parallelism and/or vectorized batches.
/// `None` means neither applies — run the serial row path.
pub(super) fn try_run(
    db: &Database,
    plan: &PhysicalPlan,
    opts: &ExecOptions,
) -> Option<Result<(Vec<Value>, ExecReport)>> {
    let pp = analyze(plan)?;
    // Compile the pipeline's scalar expressions into batch programs once
    // per query; `None` (unsupported shape) falls back to the row path.
    let mut compile_time = Duration::ZERO;
    let vp = if opts.vectorized {
        let started = Instant::now();
        let vp = vector::compile(&pp);
        compile_time = started.elapsed();
        vp
    } else {
        None
    };
    if opts.workers <= 1 && vp.is_none() {
        return None;
    }
    let dataset = match pp.leaf {
        Leaf::Seq(ds) => ds,
        Leaf::Index { dataset, .. } => dataset,
    };
    let table = match db.dataset(&dataset.namespace, &dataset.dataset) {
        Ok(t) => t,
        // The serial path would fail identically; surface the error here.
        Err(e) => return Some(Err(e)),
    };

    // Materialize the scan domain: heap slots, or the rid list of one
    // index scan (one B-tree walk, preserving index order).
    let rids: Option<Vec<RecordId>> = match &pp.leaf {
        Leaf::Seq(_) => None,
        Leaf::Index {
            attr,
            range,
            direction,
            ..
        } => match table.index_on(attr) {
            Some(index) => Some(index.scan(range, *direction).map(|(_, rid)| rid).collect()),
            None => {
                return Some(Err(EngineError::exec(format!(
                    "no index on attribute {attr} (planner bug)"
                ))))
            }
        },
    };
    let domain = match &rids {
        Some(r) => r.len(),
        None => table.heap().num_slots(),
    };
    let step = opts.morsel_rows.max(1);
    let batch_rows = opts.batch_rows.clamp(1, MAX_BATCH_ROWS);
    let ranges: Vec<(usize, usize)> = (0..domain)
        .step_by(step)
        .map(|lo| (lo, (lo + step).min(domain)))
        .collect();
    if opts.workers <= 1 || ranges.len() < 2 {
        // Not enough work (or threads) to parallelize. A compiled
        // pipeline still runs vectorized, single-threaded over the whole
        // domain; otherwise a single morsel gains nothing over serial.
        let vp = vp?;
        return Some(run_sequential(
            table,
            rids.as_deref(),
            domain,
            &pp,
            &vp,
            batch_rows,
            compile_time,
        ));
    }

    let workers = opts.workers.min(ranges.len());
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Duration, Result<MorselOut>)>> =
        Mutex::new(Vec::with_capacity(ranges.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(lo, hi)) = ranges.get(i) else {
                    break;
                };
                let started = Instant::now();
                let out = run_morsel(table, rids.as_deref(), lo, hi, &pp, vp.as_ref(), batch_rows);
                results.lock().push((i, started.elapsed(), out));
            });
        }
    });
    let mut per_morsel = std::mem::take(&mut *results.lock());
    per_morsel.sort_by_key(|(i, _, _)| *i);

    let mut morsel_times = Vec::with_capacity(per_morsel.len());
    let mut parts = Vec::with_capacity(per_morsel.len());
    for (_, elapsed, out) in per_morsel {
        morsel_times.push(elapsed);
        match out {
            Ok(part) => parts.push(part),
            // First error in morsel order, so failures are deterministic.
            Err(e) => return Some(Err(e)),
        }
    }

    let vectorized = vp.is_some();
    let batches = if vectorized {
        ranges
            .iter()
            .map(|(lo, hi)| (hi - lo).div_ceil(batch_rows))
            .sum()
    } else {
        0
    };
    Some(merge(parts, &pp).map(|rows| {
        (
            rows,
            ExecReport {
                parallelism: workers,
                morsel_times,
                vectorized,
                batches,
                batch_rows: if vectorized { batch_rows } else { 0 },
                compile_time,
            },
        )
    }))
}

/// Single-threaded vectorized execution over the whole scan domain: one
/// sink, run in the terminal's *original* aggregate mode (no partial
/// round-trip), so the output is the serial path's, batch-produced.
fn run_sequential(
    table: &Table,
    rids: Option<&[RecordId]>,
    domain: usize,
    pp: &ParallelPlan<'_>,
    vp: &vector::VecPipeline,
    batch_rows: usize,
    compile_time: Duration,
) -> Result<(Vec<Value>, ExecReport)> {
    let mode = match &pp.terminal {
        Terminal::Aggregate { mode, .. } => *mode,
        _ => AggMode::Complete, // unused
    };
    let mut sink = MorselSink::with_agg_mode(&pp.terminal, mode);
    vector::run_range(table, rids, 0, domain, vp, batch_rows, &mut sink)?;
    // One whole-domain "chunk": the sort sink's stable sort + top-k
    // truncation *is* the serial sort here, and collect outputs are
    // already in scan order.
    let mut rows = match sink.finish() {
        MorselOut::Rows(rows) => rows,
        MorselOut::Keyed(keyed) => keyed.into_iter().map(|(_, row)| row).collect(),
    };
    for spec in pp.post.iter().rev() {
        rows = rows
            .into_iter()
            .map(|r| project_row(spec, &r))
            .collect::<Result<Vec<Value>>>()?;
    }
    Ok((
        rows,
        ExecReport {
            parallelism: 1,
            morsel_times: Vec::new(),
            vectorized: true,
            batches: domain.div_ceil(batch_rows),
            batch_rows,
            compile_time,
        },
    ))
}

/// The per-morsel part of the terminal, fed one row at a time. Streaming
/// matters: each scanned row is a fresh record clone, and aggregate
/// morsels that fold rows immediately (dropping each clone right away,
/// like the serial path) run ~2-3x faster than morsels that materialize
/// their input first.
pub(super) enum MorselSink<'p> {
    Collect(Vec<Value>),
    Aggregate(AggState<'p>),
    Sort {
        keys: &'p [(Scalar, bool)],
        topk: Option<u64>,
        keyed: Vec<(Vec<SortKey>, Value)>,
    },
}

impl<'p> MorselSink<'p> {
    fn new(terminal: &Terminal<'p>) -> MorselSink<'p> {
        MorselSink::with_agg_mode(terminal, AggMode::Partial)
    }

    /// Like [`MorselSink::new`], but aggregating in `agg_mode` — the
    /// single-sink sequential vectorized path runs the terminal's
    /// original mode directly instead of the partial/merge round-trip.
    pub(super) fn with_agg_mode(terminal: &Terminal<'p>, agg_mode: AggMode) -> MorselSink<'p> {
        match terminal {
            Terminal::Collect => MorselSink::Collect(Vec::new()),
            Terminal::Aggregate { group_by, aggs, .. } => {
                MorselSink::Aggregate(AggState::new(group_by, aggs, agg_mode))
            }
            Terminal::Sort { keys, topk } => MorselSink::Sort {
                keys,
                topk: *topk,
                keyed: Vec::new(),
            },
        }
    }

    /// Push an already-keyed row (the vectorized path evaluates sort keys
    /// with batch programs).
    pub(super) fn push_keyed(&mut self, key: Vec<SortKey>, row: Value) {
        match self {
            MorselSink::Sort { keyed, .. } => keyed.push((key, row)),
            _ => unreachable!("keyed push on a non-sort sink"),
        }
    }

    /// Fold pre-evaluated group key + aggregate arguments (the vectorized
    /// path evaluates both with batch programs). `args[i] == None` is
    /// `COUNT(*)`; a truncated slice updates only the leading
    /// accumulators (used to reproduce row-order error precedence).
    pub(super) fn push_agg(&mut self, key: Vec<OrdValue>, args: &[Option<&Value>]) -> Result<()> {
        match self {
            MorselSink::Aggregate(state) => state.push_values(key, args),
            _ => unreachable!("aggregate push on a non-aggregate sink"),
        }
    }

    pub(super) fn push(&mut self, row: Value) -> Result<()> {
        match self {
            MorselSink::Collect(rows) => rows.push(row),
            MorselSink::Aggregate(state) => state.push(&row)?,
            MorselSink::Sort { keys, keyed, .. } => {
                let key = sort_keys(keys, &row)?;
                keyed.push((key, row));
            }
        }
        Ok(())
    }

    pub(super) fn finish(self) -> MorselOut {
        match self {
            MorselSink::Collect(rows) => MorselOut::Rows(rows),
            MorselSink::Aggregate(state) => MorselOut::Rows(state.finish()),
            MorselSink::Sort {
                topk, mut keyed, ..
            } => {
                // Stable, like the serial sort, so ties keep scan order.
                keyed.sort_by(|(a, _), (b, _)| a.cmp(b));
                if let Some(k) = topk {
                    // Rows beyond the top-k of any chunk cannot reach the
                    // global top-k.
                    keyed.truncate(k as usize);
                }
                MorselOut::Keyed(keyed)
            }
        }
    }
}

/// Scan one morsel, apply the row-local ops, and stream each surviving row
/// into the per-morsel part of the terminal.
fn run_morsel(
    table: &Table,
    rids: Option<&[RecordId]>,
    lo: usize,
    hi: usize,
    pp: &ParallelPlan<'_>,
    vp: Option<&vector::VecPipeline>,
    batch_rows: usize,
) -> Result<MorselOut> {
    let mut sink = MorselSink::new(&pp.terminal);
    if let Some(vp) = vp {
        vector::run_range(table, rids, lo, hi, vp, batch_rows, &mut sink)?;
        return Ok(sink.finish());
    }
    match rids {
        None => {
            for (_, record) in table.heap().scan_range(lo, hi) {
                if let Some(row) = apply_ops(&pp.ops, Value::Obj(record.clone()))? {
                    sink.push(row)?;
                }
            }
        }
        Some(rids) => {
            for rid in &rids[lo..hi] {
                let record = table
                    .get(*rid)
                    .ok_or_else(|| EngineError::exec("dangling index entry"))?;
                if let Some(row) = apply_ops(&pp.ops, Value::Obj(record.clone()))? {
                    sink.push(row)?;
                }
            }
        }
    }
    Ok(sink.finish())
}

/// Apply filters/projections to one row; `None` means filtered out.
fn apply_ops(ops: &[MorselOp<'_>], mut row: Value) -> Result<Option<Value>> {
    for op in ops {
        match op {
            MorselOp::Filter(pred) => {
                if !passes_filter(pred, &row)? {
                    return Ok(None);
                }
            }
            MorselOp::Project(spec) => row = project_row(spec, &row)?,
        }
    }
    Ok(Some(row))
}

/// Evaluate the sort key vector for one row, directions baked in.
fn sort_keys(keys: &[(Scalar, bool)], row: &Value) -> Result<Vec<SortKey>> {
    keys.iter()
        .map(|(expr, desc)| {
            let v = OrdValue(eval(expr, row)?);
            Ok(if *desc {
                SortKey::Desc(v)
            } else {
                SortKey::Asc(v)
            })
        })
        .collect()
}

/// Merge per-morsel outputs (in morsel order) into the final row set.
fn merge(parts: Vec<MorselOut>, pp: &ParallelPlan<'_>) -> Result<Vec<Value>> {
    let mut rows = match &pp.terminal {
        Terminal::Collect => {
            let mut out = Vec::new();
            for part in parts {
                if let MorselOut::Rows(r) = part {
                    out.extend(r);
                }
            }
            out
        }
        Terminal::Aggregate {
            group_by,
            aggs,
            mode,
        } => {
            let mut partials = Vec::new();
            for part in parts {
                if let MorselOut::Rows(r) = part {
                    partials.extend(r);
                }
            }
            merge_partials(partials, group_by, aggs, *mode)?
        }
        Terminal::Sort { topk, .. } => {
            let chunks: Vec<Vec<(Vec<SortKey>, Value)>> = parts
                .into_iter()
                .map(|p| match p {
                    MorselOut::Keyed(c) => c,
                    MorselOut::Rows(_) => Vec::new(),
                })
                .collect();
            let mut merged = kway_merge(chunks);
            if let Some(k) = topk {
                merged.truncate(*k as usize);
            }
            merged
        }
    };
    // Re-apply the peeled post-terminal projections, innermost first.
    for spec in pp.post.iter().rev() {
        rows = rows
            .into_iter()
            .map(|r| project_row(spec, &r))
            .collect::<Result<Vec<Value>>>()?;
    }
    Ok(rows)
}

/// Merge per-morsel partial-aggregate rows.
///
/// For an originally-`Complete` aggregate this is exactly the cluster
/// coordinator's combiner (`Final` mode over the partial rows). For an
/// originally-`Partial` aggregate (this engine is itself a shard) the
/// merged state is re-serialized with `to_partial` so the coordinator
/// upstream sees one partial row per group, as the serial path emits.
fn merge_partials(
    partials: Vec<Value>,
    group_by: &[(String, Scalar)],
    aggs: &[AggExpr],
    original: AggMode,
) -> Result<Vec<Value>> {
    if original == AggMode::Complete {
        let names: Vec<(String, Scalar)> = group_by
            .iter()
            .map(|(name, _)| (name.clone(), Scalar::Field(name.clone())))
            .collect();
        return aggregate_rows(partials, &names, aggs, AggMode::Final);
    }

    let fresh = || -> Vec<Accumulator> { aggs.iter().map(|a| Accumulator::new(a.func)).collect() };
    let mut groups: BTreeMap<Vec<OrdValue>, Vec<Accumulator>> = BTreeMap::new();
    let mut scalar_accs = fresh();
    let mut saw_any = false;
    for row in partials {
        saw_any = true;
        let accs = if group_by.is_empty() {
            &mut scalar_accs
        } else {
            let key = group_by
                .iter()
                .map(|(name, _)| OrdValue(row.get_path(name)))
                .collect();
            groups.entry(key).or_insert_with(fresh)
        };
        for (agg, acc) in aggs.iter().zip(accs.iter_mut()) {
            acc.merge_partial(&row.get_path(&agg.name))?;
        }
    }

    let emit = |key: Option<&[OrdValue]>, accs: &[Accumulator]| -> Value {
        let mut rec = Record::with_capacity(group_by.len() + aggs.len());
        if let Some(key) = key {
            for ((name, _), k) in group_by.iter().zip(key.iter()) {
                rec.insert(name.clone(), k.0.clone());
            }
        }
        for (agg, acc) in aggs.iter().zip(accs.iter()) {
            rec.insert(agg.name.clone(), acc.to_partial());
        }
        Value::Obj(rec)
    };

    if group_by.is_empty() {
        // Match the serial Partial-on-empty convention: emit nothing.
        if !saw_any {
            return Ok(vec![]);
        }
        Ok(vec![emit(None, &scalar_accs)])
    } else {
        Ok(groups
            .iter()
            .map(|(key, accs)| emit(Some(key), accs))
            .collect())
    }
}

/// K-way merge of sorted chunks. The heap key is `(sort key, chunk index)`
/// so equal keys pop in chunk (= scan) order — the stable-sort tie order
/// the serial path produces.
fn kway_merge(mut chunks: Vec<Vec<(Vec<SortKey>, Value)>>) -> Vec<Value> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let total: usize = chunks.iter().map(Vec::len).sum();
    let mut cursors = vec![0usize; chunks.len()];
    let mut heap: BinaryHeap<Reverse<(Vec<SortKey>, usize)>> = BinaryHeap::new();
    for (ci, chunk) in chunks.iter().enumerate() {
        if let Some((key, _)) = chunk.first() {
            heap.push(Reverse((key.clone(), ci)));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse((_, ci))) = heap.pop() {
        let pos = cursors[ci];
        cursors[ci] += 1;
        out.push(std::mem::replace(&mut chunks[ci][pos].1, Value::Null));
        if let Some((key, _)) = chunks[ci].get(cursors[ci]) {
            heap.push(Reverse((key.clone(), ci)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_override_parsing() {
        assert_eq!(thread_override(Some("4")), Some(4));
        assert_eq!(thread_override(Some(" 8 ")), Some(8));
        assert_eq!(thread_override(Some("0")), None);
        assert_eq!(thread_override(Some("lots")), None);
        assert_eq!(thread_override(None), None);
        assert!(available_threads() >= 1);
    }

    #[test]
    fn env_tuning_is_read_once_and_cached() {
        // Regression: both knobs used to re-read the environment on
        // every query, so a mid-run `set_var` silently changed execution
        // behaviour (and raced against concurrent sessions). Prime the
        // caches, then show later environment changes are ignored.
        let threads = available_threads();
        let batch = default_batch_rows();
        std::env::set_var("POLYFRAME_THREADS", "1");
        std::env::set_var("POLYFRAME_BATCH_SIZE", "17");
        assert_eq!(available_threads(), threads);
        assert_eq!(default_batch_rows(), batch);
        std::env::remove_var("POLYFRAME_THREADS");
        std::env::remove_var("POLYFRAME_BATCH_SIZE");
        let opts = ExecOptions::default();
        assert_eq!(opts.workers, threads);
        assert_eq!(opts.batch_rows, batch);
    }

    #[test]
    fn batch_rows_override_parsing() {
        assert_eq!(batch_rows_override(Some("512")), Some(512));
        assert_eq!(batch_rows_override(Some(" 64 ")), Some(64));
        // Zero and garbage are rejected — the default applies.
        assert_eq!(batch_rows_override(Some("0")), None);
        assert_eq!(batch_rows_override(Some("huge")), None);
        assert_eq!(batch_rows_override(None), None);
        // Absurdly large values clamp instead of panicking or wedging.
        assert_eq!(batch_rows_override(Some("999999999")), Some(MAX_BATCH_ROWS));
        assert!(default_batch_rows() >= 1);
        assert!(default_batch_rows() <= MAX_BATCH_ROWS);
    }

    #[test]
    fn exec_option_presets() {
        let rowwise = ExecOptions::rowwise();
        assert_eq!(rowwise.workers, 1);
        assert!(!rowwise.vectorized);
        let serial = ExecOptions::serial();
        assert_eq!(serial.workers, 1);
        assert!(serial.vectorized);
    }

    #[test]
    fn sort_key_directions() {
        let a = SortKey::Asc(OrdValue(Value::Int(1)));
        let b = SortKey::Asc(OrdValue(Value::Int(2)));
        assert!(a < b);
        let a = SortKey::Desc(OrdValue(Value::Int(1)));
        let b = SortKey::Desc(OrdValue(Value::Int(2)));
        assert!(b < a);
    }

    #[test]
    fn kway_merge_is_stable_across_chunks() {
        let key = |k: i64| vec![SortKey::Asc(OrdValue(Value::Int(k)))];
        let chunks = vec![
            vec![(key(1), Value::str("c0-k1")), (key(3), Value::str("c0-k3"))],
            vec![(key(1), Value::str("c1-k1")), (key(2), Value::str("c1-k2"))],
        ];
        let merged = kway_merge(chunks);
        let names: Vec<&str> = merged
            .iter()
            .map(|v| match v {
                Value::Str(s) => s.as_str(),
                _ => "?",
            })
            .collect();
        // Equal keys keep chunk order (chunk 0 before chunk 1).
        assert_eq!(names, ["c0-k1", "c1-k1", "c1-k2", "c0-k3"]);
    }
}
