//! Morsel-driven intra-query parallelism.
//!
//! HyPer-style morsel execution adapted to PolyFrame's single-node engines:
//! the scan leaf of a pipeline is split into fixed-size slot-range *morsels*
//! (heap slot ranges for `SeqScan`, chunks of a materialized rid list for
//! `IndexScan`), a small pool of `std::thread::scope` workers pulls morsel
//! indexes off a shared atomic counter, runs the row-local operators
//! (filter/project) plus a per-morsel partial of the blocking terminal
//! (partial aggregation, chunk sort), and the coordinator merges partials
//! **in morsel order** so parallel execution is byte-identical to serial:
//!
//! * plain pipelines concatenate morsel outputs in morsel order — the same
//!   row order a serial scan produces;
//! * aggregates fold each morsel in the terminal's own mode and merge the
//!   accumulator states directly (`AggState::absorb`), the same ordered
//!   group output as the serial path;
//! * sorts stable-sort each chunk and k-way merge with the chunk index as
//!   the tiebreak, reproducing the serial stable sort's tie order;
//! * `LIMIT`-topped streaming pipelines run with a cooperative stop flag:
//!   workers stop claiming morsels once the already-determined morsel
//!   prefix satisfies the limit (see [`LimitGate`]);
//! * joins build their hash table (or resolve their inner index) once on
//!   the coordinator and probe per-batch on the vectorized path.
//!
//! Plans whose shape still is not parallel-safe (nested blocking operators,
//! the index-only fast paths, `VALUES`) fall back to the serial streaming
//! executor unchanged, and [`TryRunOutcome::Fallback`] carries *why* so the
//! trace can report `fallback:<cause>`.

use super::aggregate::{Accumulator, OrdValue};
use super::distinct::DistinctSet;
use super::eval::{eval, passes_filter};
use super::join::ValueHashTable;
use super::kernel::KernelCache;
use super::vector;
use super::{project_row, AggState};
use crate::ast::JoinKind;
use crate::catalog::Database;
use crate::error::{EngineError, Result};
use crate::plan::logical::{AggExpr, AggMode, ProjectSpec, Scalar};
use crate::plan::physical::{DatasetRef, PhysicalPlan};
use polyframe_datamodel::{Record, Value};
use polyframe_observe::sync::Mutex;
use polyframe_storage::{Direction, RecordId, ScanRange, Table};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Analysis result: `Err` carries the row-path fallback cause.
type AnalyzeResult<T> = std::result::Result<T, &'static str>;
use std::time::{Duration, Instant};

/// Default number of heap slots (or index rids) per morsel.
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

pub use polyframe_storage::{DEFAULT_BATCH_ROWS, MAX_BATCH_ROWS};

/// Tuning knobs for query execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker threads used for parallel-safe pipelines. `1` (or `0`)
    /// executes everything single-threaded.
    pub workers: usize,
    /// Heap slots (or index rids) per morsel.
    pub morsel_rows: usize,
    /// Use the vectorized batch path for whitelisted pipeline shapes
    /// (columnar batches + compiled expression programs). Pipelines the
    /// program compiler cannot express fall back to the row path either
    /// way; results are byte-identical.
    pub vectorized: bool,
    /// Rows per column batch on the vectorized path.
    pub batch_rows: usize,
    /// Allow specialized (null-fast / fused) kernels on the vectorized
    /// path. Off forces the generic per-lane interpreter everywhere —
    /// the ablation baseline. Results are byte-identical either way.
    pub specialize: bool,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            workers: available_threads(),
            morsel_rows: DEFAULT_MORSEL_ROWS,
            vectorized: true,
            batch_rows: default_batch_rows(),
            specialize: true,
        }
    }
}

impl ExecOptions {
    /// Force single-threaded execution (vectorization stays on).
    pub fn serial() -> ExecOptions {
        ExecOptions::with_workers(1)
    }

    /// Single-threaded row-at-a-time execution: the reference path every
    /// other configuration must match byte-for-byte.
    pub fn rowwise() -> ExecOptions {
        ExecOptions {
            workers: 1,
            vectorized: false,
            ..ExecOptions::default()
        }
    }

    /// Parallel execution with exactly `workers` threads.
    pub fn with_workers(workers: usize) -> ExecOptions {
        ExecOptions {
            workers,
            ..ExecOptions::default()
        }
    }
}

/// Worker-thread budget: the `POLYFRAME_THREADS` environment variable when
/// set to a positive integer, otherwise the machine's available
/// parallelism.
///
/// Read **once** and cached for the process lifetime: `ExecOptions`
/// defaults sit on the per-query hot path, and re-reading the
/// environment there is both a needless syscall and racy against
/// `set_var` once multiple serving sessions run queries concurrently.
pub fn available_threads() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        thread_override(std::env::var("POLYFRAME_THREADS").ok().as_deref()).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    })
}

/// Parse a `POLYFRAME_THREADS`-style override (split out of
/// [`available_threads`] so the parsing is testable without touching the
/// process environment).
pub fn thread_override(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|n| *n >= 1)
}

/// Batch size for the vectorized path: the `POLYFRAME_BATCH_SIZE`
/// environment variable when set to a valid value, otherwise
/// [`DEFAULT_BATCH_ROWS`]. Read once and cached, like
/// [`available_threads`].
pub fn default_batch_rows() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        batch_rows_override(std::env::var("POLYFRAME_BATCH_SIZE").ok().as_deref())
            .unwrap_or(DEFAULT_BATCH_ROWS)
    })
}

/// Parse a `POLYFRAME_BATCH_SIZE`-style override. Zero and garbage are
/// rejected (the default applies); absurdly large values clamp to
/// [`MAX_BATCH_ROWS`] — an override can never panic or wedge execution.
pub fn batch_rows_override(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|n| *n >= 1)
        .map(|n| n.min(MAX_BATCH_ROWS))
}

/// How one plan execution actually ran.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Worker threads used (`1` means a single-threaded path ran).
    pub parallelism: usize,
    /// Per-morsel wall time, indexed by morsel; empty on the serial path.
    pub morsel_times: Vec<Duration>,
    /// Whether the vectorized batch path ran (`false` = row-path
    /// fallback, or vectorization disabled).
    pub vectorized: bool,
    /// Column batches actually processed on the vectorized path (early-exit
    /// `LIMIT` pipelines process fewer than the domain holds).
    pub batches: usize,
    /// Configured rows per batch (0 when the row path ran).
    pub batch_rows: usize,
    /// Time spent compiling expression programs (zero when vectorization
    /// was not attempted).
    pub compile_time: Duration,
    /// Why the vectorized path declined, when it did (`None` when it ran,
    /// or when vectorization was off).
    pub fallback: Option<&'static str>,
    /// Whether specialized kernels (null-fast typed loops, fused
    /// predicate/aggregate passes) were engaged for this execution.
    pub specialized: bool,
    /// Dictionary-encoded string columns built across processed batches.
    pub dict_columns: usize,
    /// Dictionary builds demoted to generic lanes (distinct-value count
    /// overflowed `DICT_CAP`) across processed batches.
    pub dict_demoted: usize,
}

impl ExecReport {
    /// Report for a serial row-path execution.
    pub fn serial() -> ExecReport {
        ExecReport {
            parallelism: 1,
            ..ExecReport::default()
        }
    }
}

/// What [`try_run`] decided.
pub(super) enum TryRunOutcome {
    /// The morsel/batch path ran (successfully or not).
    Ran(Result<(Vec<Value>, ExecReport)>),
    /// Neither morsel parallelism nor batches apply; the named operator or
    /// expression shape is why. Run the serial row path.
    Fallback(&'static str),
}

/// Row-local operators a worker applies to each scanned row.
pub(super) enum MorselOp<'p> {
    Filter(&'p Scalar),
    Project(&'p ProjectSpec),
}

/// The scan leaf being partitioned.
enum Leaf<'p> {
    Seq(&'p DatasetRef),
    Index {
        dataset: &'p DatasetRef,
        attr: &'p str,
        range: &'p ScanRange,
        direction: Direction,
    },
}

/// The blocking operator (if any) topping the parallel pipeline.
pub(super) enum Terminal<'p> {
    /// No blocking terminal: concatenate morsel outputs in morsel order.
    Collect,
    /// Per-morsel aggregation in the terminal's own mode, accumulator
    /// states merged by the coordinator.
    Aggregate {
        group_by: &'p [(String, Scalar)],
        aggs: &'p [AggExpr],
        mode: AggMode,
    },
    /// Per-morsel chunk sort, k-way merged by the coordinator.
    Sort {
        keys: &'p [(Scalar, bool)],
        topk: Option<u64>,
    },
}

/// The join (if any) sitting between the scan leaf and the row-local ops:
/// the leaf side is probed morsel-by-morsel, the other side materializes
/// once on the coordinator (see [`build_join_runtime`]).
pub(super) struct JoinSpec<'p> {
    /// Key expression over probe rows.
    pub(super) probe_key: &'p Scalar,
    /// Binding name for probe rows in the join output object.
    pub(super) probe_binding: &'p str,
    /// Binding name for build rows in the join output object.
    pub(super) build_binding: &'p str,
    /// Filters under the join on the probe side (no projections: the probe
    /// row must stay the scanned record for the key and pair).
    pub(super) probe_ops: Vec<MorselOp<'p>>,
    pub(super) variant: JoinVariantSpec<'p>,
}

pub(super) enum JoinVariantSpec<'p> {
    /// `PhysicalPlan::HashJoin`: build the right side eagerly, probe the
    /// left.
    Hash {
        build: &'p PhysicalPlan,
        build_key: &'p Scalar,
        left: bool,
    },
    /// `PhysicalPlan::IndexNLJoin`: probe the inner index per outer row.
    IndexNl { inner: &'p (DatasetRef, String) },
}

impl JoinSpec<'_> {
    /// Fallback-cause label when this join cannot run vectorized.
    fn cause(&self) -> &'static str {
        match self.variant {
            JoinVariantSpec::Hash { .. } => "hash_join",
            JoinVariantSpec::IndexNl { .. } => "index_nl_join",
        }
    }
}

/// A parallel-safe decomposition of a physical plan.
pub(super) struct ParallelPlan<'p> {
    /// Projections sitting *above* the blocking terminal, outermost first;
    /// applied per result row after the merge.
    post: Vec<&'p ProjectSpec>,
    pub(super) terminal: Terminal<'p>,
    /// Row-local ops between the join (or leaf) and the terminal, in
    /// application order.
    pub(super) ops: Vec<MorselOp<'p>>,
    pub(super) join: Option<JoinSpec<'p>>,
    leaf: Leaf<'p>,
    /// Peeled outermost `LIMIT`.
    limit: Option<usize>,
    /// Peeled `DISTINCT` (under the limit, above everything else).
    distinct: bool,
}

impl ParallelPlan<'_> {
    /// The limit, when satisfying it may stop the scan early: only a
    /// streaming (`Collect`) pipeline without `DISTINCT` reproduces the
    /// row path's `take(n)` — blocking terminals materialize their whole
    /// input first, so every row (and error) beyond the limit still
    /// matters there.
    pub(super) fn early_exit_limit(&self) -> Option<usize> {
        match (&self.terminal, self.distinct) {
            (Terminal::Collect, false) => self.limit,
            _ => None,
        }
    }
}

/// What one worker hands back for one morsel.
pub(super) enum MorselOut {
    /// Result rows (plain pipelines).
    Rows(Vec<Value>),
    /// A sorted chunk of `(sort key, row)` pairs.
    Keyed(Vec<(Vec<SortKey>, Value)>),
    /// Rows collected under an early-exit limit, with the morsel's first
    /// error *after* those rows (the sink stops at whichever comes first).
    Limited {
        rows: Vec<Value>,
        err: Option<EngineError>,
    },
    /// One morsel's aggregate accumulator states.
    Agg(super::AggParts),
}

/// A sort key component with its direction baked in, so chunk sorting and
/// the k-way merge heap share one `Ord`.
#[derive(Clone, PartialEq, Eq)]
pub(super) enum SortKey {
    Asc(OrdValue),
    Desc(OrdValue),
}

impl Ord for SortKey {
    fn cmp(&self, other: &SortKey) -> std::cmp::Ordering {
        match (self, other) {
            (SortKey::Asc(a), SortKey::Asc(b)) => a.cmp(b),
            (SortKey::Desc(a), SortKey::Desc(b)) => b.cmp(a),
            // A key position always has one direction.
            _ => unreachable!("mixed sort-key directions at one position"),
        }
    }
}

impl PartialOrd for SortKey {
    fn partial_cmp(&self, other: &SortKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Decompose `plan` into a parallel-safe shape; `Err` carries the
/// fallback-cause label for the trace.
fn analyze(plan: &PhysicalPlan) -> AnalyzeResult<ParallelPlan<'_>> {
    // Peel the outermost LIMIT and a DISTINCT under it; both re-apply at
    // the coordinator (or, for streaming pipelines, the limit gates the
    // scan itself).
    let mut node = plan;
    let mut limit = None;
    if let PhysicalPlan::Limit { input, n } = node {
        limit = Some(*n as usize);
        node = input;
    }
    let mut distinct = false;
    if let PhysicalPlan::Distinct { input } = node {
        distinct = true;
        node = input;
    }
    let top = node;
    // Peel projections off the top; they re-apply per row after the merge.
    let mut post = Vec::new();
    while let PhysicalPlan::Project { input, spec } = node {
        post.push(spec);
        node = input;
    }
    match node {
        PhysicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            mode,
        } => {
            let (ops, join, leaf) = pipeline(input)?;
            Ok(ParallelPlan {
                post,
                terminal: Terminal::Aggregate {
                    group_by,
                    aggs,
                    mode: *mode,
                },
                ops,
                join,
                leaf,
                limit,
                distinct,
            })
        }
        PhysicalPlan::Sort { input, keys, topk } => {
            let (ops, join, leaf) = pipeline(input)?;
            Ok(ParallelPlan {
                post,
                terminal: Terminal::Sort { keys, topk: *topk },
                ops,
                join,
                leaf,
                limit,
                distinct,
            })
        }
        _ => {
            // No blocking terminal: every operator (including the peeled
            // projections) is row-local, so re-walk from under the
            // limit/distinct peel.
            let (ops, join, leaf) = pipeline(top)?;
            Ok(ParallelPlan {
                post: Vec::new(),
                terminal: Terminal::Collect,
                ops,
                join,
                leaf,
                limit,
                distinct,
            })
        }
    }
}

/// Collect the row-local operator chain (and at most one join) down to a
/// partitionable scan leaf.
#[allow(clippy::type_complexity)]
fn pipeline(
    plan: &PhysicalPlan,
) -> AnalyzeResult<(Vec<MorselOp<'_>>, Option<JoinSpec<'_>>, Leaf<'_>)> {
    let mut ops = Vec::new();
    let mut node = plan;
    loop {
        match node {
            PhysicalPlan::Filter { input, predicate } => {
                ops.push(MorselOp::Filter(predicate));
                node = input;
            }
            PhysicalPlan::Project { input, spec } => {
                ops.push(MorselOp::Project(spec));
                node = input;
            }
            PhysicalPlan::SeqScan { dataset } => {
                ops.reverse();
                return Ok((ops, None, Leaf::Seq(dataset)));
            }
            PhysicalPlan::IndexScan {
                dataset,
                attr,
                range,
                direction,
            } => {
                ops.reverse();
                return Ok((
                    ops,
                    None,
                    Leaf::Index {
                        dataset,
                        attr,
                        range,
                        direction: *direction,
                    },
                ));
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                left_key,
                right_key,
                left_binding,
                right_binding,
                kind,
            } => {
                // Build on the right, probe (= partition) on the left.
                let (probe_ops, leaf) = probe_side(left, "hash_join")?;
                ops.reverse();
                return Ok((
                    ops,
                    Some(JoinSpec {
                        probe_key: left_key,
                        probe_binding: left_binding,
                        build_binding: right_binding,
                        probe_ops,
                        variant: JoinVariantSpec::Hash {
                            build: right,
                            build_key: right_key,
                            left: *kind == JoinKind::Left,
                        },
                    }),
                    leaf,
                ));
            }
            PhysicalPlan::IndexNLJoin {
                outer,
                outer_key,
                inner,
                outer_binding,
                inner_binding,
            } => {
                let (probe_ops, leaf) = probe_side(outer, "index_nl_join")?;
                ops.reverse();
                return Ok((
                    ops,
                    Some(JoinSpec {
                        probe_key: outer_key,
                        probe_binding: outer_binding,
                        build_binding: inner_binding,
                        probe_ops,
                        variant: JoinVariantSpec::IndexNl { inner },
                    }),
                    leaf,
                ));
            }
            // Nested blocking operators under a row-local chain.
            PhysicalPlan::Aggregate { .. } => return Err("aggregate"),
            PhysicalPlan::Sort { .. } => return Err("sort"),
            PhysicalPlan::Limit { .. } => return Err("limit"),
            PhysicalPlan::Distinct { .. } => return Err("distinct"),
            PhysicalPlan::Values { .. } => return Err("values"),
            // The index-only fast paths never touch the heap; there is
            // nothing to partition or batch.
            _ => return Err("index_only"),
        }
    }
}

/// The probe side of a join must be a filter chain over a scan leaf:
/// probe rows have to stay whole scanned records (the key expression and
/// the output pair both reference the record), and a second join would
/// need its own build. `cause` names the join that falls back otherwise.
fn probe_side<'p>(
    plan: &'p PhysicalPlan,
    cause: &'static str,
) -> AnalyzeResult<(Vec<MorselOp<'p>>, Leaf<'p>)> {
    let mut ops = Vec::new();
    let mut node = plan;
    loop {
        match node {
            PhysicalPlan::Filter { input, predicate } => {
                ops.push(MorselOp::Filter(predicate));
                node = input;
            }
            PhysicalPlan::SeqScan { dataset } => {
                ops.reverse();
                return Ok((ops, Leaf::Seq(dataset)));
            }
            PhysicalPlan::IndexScan {
                dataset,
                attr,
                range,
                direction,
            } => {
                ops.reverse();
                return Ok((
                    ops,
                    Leaf::Index {
                        dataset,
                        attr,
                        range,
                        direction: *direction,
                    },
                ));
            }
            _ => return Err(cause),
        }
    }
}

/// Materialize the non-partitioned side of the join: drain the build
/// stream into a [`ValueHashTable`] (hash join) or resolve the inner
/// table + index (index nested-loop). Runs *before* the probe table
/// resolves — the row path drains the build side during stream
/// construction, so build errors outrank probe-side resolution errors.
fn build_join_runtime<'q>(
    db: &'q Database,
    spec: &JoinSpec<'q>,
) -> Result<vector::JoinRuntime<'q>> {
    match &spec.variant {
        JoinVariantSpec::Hash {
            build, build_key, ..
        } => {
            let mut table = ValueHashTable::new();
            // Bare-scan build with a plain field key: keep heap references
            // instead of cloning every build record into the runtime (the
            // generic stream below materializes each row as a `Value`).
            if let PhysicalPlan::SeqScan { dataset } = build {
                if let Scalar::Field(f) | Scalar::BindingRef(f) = build_key {
                    let t = db.dataset(&dataset.namespace, &dataset.dataset)?;
                    let mut refs: Vec<&Record> = Vec::new();
                    let mut hint = 0usize;
                    for (_, rec) in t.heap().scan() {
                        // The row path skips unknown build keys.
                        match rec.get_hinted(f, &mut hint) {
                            Some(key) if !key.is_unknown() => {
                                table.insert(key.clone(), refs.len() as u32);
                                refs.push(rec);
                            }
                            _ => {}
                        }
                    }
                    return Ok(vector::JoinRuntime::Hash {
                        table,
                        rows: vector::BuildRows::Records(refs),
                    });
                }
            }
            let mut rows: Vec<Value> = Vec::new();
            for row in super::Executor::new(db).stream(build)? {
                let row = row?;
                let key = eval(build_key, &row)?;
                // The row path skips unknown build keys before the table.
                if key.is_unknown() {
                    continue;
                }
                table.insert(key, rows.len() as u32);
                rows.push(row);
            }
            Ok(vector::JoinRuntime::Hash {
                table,
                rows: vector::BuildRows::Owned(rows),
            })
        }
        JoinVariantSpec::IndexNl { inner } => {
            let table = db.dataset(&inner.0.namespace, &inner.0.dataset)?;
            let index = table.index_on(&inner.1).ok_or_else(|| {
                EngineError::exec(format!("no index on attribute {} (planner bug)", inner.1))
            })?;
            Ok(vector::JoinRuntime::IndexNl { table, index })
        }
    }
}

/// Cooperative early exit for `LIMIT` pipelines: workers record each
/// completed morsel's row count (or `usize::MAX` for an error), and the
/// gate latches `done` once the *contiguous prefix* of recorded morsels
/// determines the query outcome — enough rows collected, or an error that
/// fires before the limit fills. Morsel claims come off a sequential
/// counter, so claimed morsels always form a prefix and the scan stops
/// without evaluating (or erroring on) rows the serial `take(n)` would
/// never have pulled.
struct LimitGate {
    n: usize,
    done: AtomicBool,
    outcomes: Mutex<Vec<Option<usize>>>,
}

impl LimitGate {
    fn new(n: usize, morsels: usize) -> LimitGate {
        LimitGate {
            n,
            // LIMIT 0 needs no rows at all.
            done: AtomicBool::new(n == 0),
            outcomes: Mutex::new(vec![None; morsels]),
        }
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::Relaxed)
    }

    /// Record morsel `i`'s outcome: surviving row count, or `usize::MAX`
    /// when the morsel hit an error before its own collection satisfied
    /// the limit.
    fn record(&self, i: usize, outcome: usize) {
        let mut outcomes = self.outcomes.lock();
        outcomes[i] = Some(outcome);
        let mut total = 0usize;
        for o in outcomes.iter() {
            match o {
                // An unfinished earlier morsel: outcome still open.
                None => return,
                // An error inside the determined prefix settles the query
                // either way (it fires, or enough rows precede it — the
                // merge walk decides which).
                Some(usize::MAX) => break,
                Some(rows) => {
                    total += rows;
                    if total >= self.n {
                        break;
                    }
                }
            }
        }
        self.done.store(true, Ordering::Relaxed);
    }
}

/// Try to run `plan` with morsel parallelism and/or vectorized batches.
/// `kernels` carries cross-query promotion state: with a cache, programs
/// specialize only once hot; without one, eagerly.
pub(super) fn try_run(
    db: &Database,
    plan: &PhysicalPlan,
    opts: &ExecOptions,
    kernels: Option<&KernelCache>,
) -> TryRunOutcome {
    use TryRunOutcome::{Fallback, Ran};
    let pp = match analyze(plan) {
        Ok(pp) => pp,
        Err(cause) => return Fallback(cause),
    };
    // Compile the pipeline's scalar expressions into batch programs once
    // per query; an unsupported shape names the fallback cause.
    let mut compile_time = Duration::ZERO;
    let compiled = if opts.vectorized {
        let started = Instant::now();
        let vp = vector::compile(&pp);
        compile_time = started.elapsed();
        vp
    } else {
        Err(pp.join.as_ref().map(JoinSpec::cause).unwrap_or("disabled"))
    };
    let (vp, row_fallback) = match compiled {
        Ok(vp) => (Some(vp), None),
        Err(cause) => {
            // Joins and early-exit limits exist only on the batch path:
            // row-at-a-time morsels would drain the whole domain (firing
            // errors `take(n)` never reaches) and cannot probe a build
            // table. Single-worker row morsels gain nothing over serial.
            if pp.join.is_some() || pp.early_exit_limit().is_some() || opts.workers <= 1 {
                return Fallback(cause);
            }
            (None, Some(cause))
        }
    };

    // The join's build side materializes before the probe table resolves
    // (row-path error order: the build stream drains during stream
    // construction).
    let rt = match &pp.join {
        Some(spec) => match build_join_runtime(db, spec) {
            Ok(rt) => Some(rt),
            Err(e) => return Ran(Err(e)),
        },
        None => None,
    };

    let dataset = match pp.leaf {
        Leaf::Seq(ds) => ds,
        Leaf::Index { dataset, .. } => dataset,
    };
    let table = match db.dataset(&dataset.namespace, &dataset.dataset) {
        Ok(t) => t,
        // The serial path would fail identically; surface the error here.
        Err(e) => return Ran(Err(e)),
    };

    // Kernel specialization: with a promotion cache the program must go
    // hot first (the generic path runs while warming up); without one,
    // specialize eagerly. Either way `None` simply means generic kernels.
    let spec: Option<std::sync::Arc<vector::KernelPlan>> = match &vp {
        Some(vp) if opts.specialize => match kernels {
            Some(cache) => {
                cache.resolve(vector::fingerprint(&dataset.dataset, vp), db.version(), vp)
            }
            None => vector::specialize(vp).map(std::sync::Arc::new),
        },
        _ => None,
    };

    // Materialize the scan domain: heap slots, or the rid list of one
    // index scan (one B-tree walk, preserving index order).
    let rids: Option<Vec<RecordId>> = match &pp.leaf {
        Leaf::Seq(_) => None,
        Leaf::Index {
            attr,
            range,
            direction,
            ..
        } => match table.index_on(attr) {
            Some(index) => Some(index.scan(range, *direction).map(|(_, rid)| rid).collect()),
            None => {
                return Ran(Err(EngineError::exec(format!(
                    "no index on attribute {attr} (planner bug)"
                ))))
            }
        },
    };
    let domain = match &rids {
        Some(r) => r.len(),
        None => table.heap().num_slots(),
    };
    let step = opts.morsel_rows.max(1);
    let batch_rows = opts.batch_rows.clamp(1, MAX_BATCH_ROWS);
    let ranges: Vec<(usize, usize)> = (0..domain)
        .step_by(step)
        .map(|lo| (lo, (lo + step).min(domain)))
        .collect();
    // Worker budgeting from the statistics snapshot: the estimated live
    // rows justify at most one worker per *full* morsel they fill, so a
    // tiny table whose tail range is mostly padding stops paying thread
    // setup for workers that would claim almost no work. When the stats
    // report nothing (counters not yet populated), the range count alone
    // decides, as before.
    let est_rows = table.stats().record_count();
    let worker_budget = if est_rows > 0 {
        (est_rows / step).max(1)
    } else {
        ranges.len().max(1)
    };
    if opts.workers <= 1 || ranges.len() < 2 || worker_budget <= 1 {
        // Not enough work (or threads) to parallelize. A compiled
        // pipeline still runs vectorized, single-threaded over the whole
        // domain (with the limit stopping the scan early); otherwise a
        // single morsel gains nothing over serial.
        return match vp {
            Some(vp) => Ran(run_sequential(
                table,
                rids.as_deref(),
                domain,
                &pp,
                &vp,
                rt.as_ref(),
                spec.as_deref(),
                batch_rows,
                compile_time,
            )),
            None => Fallback(row_fallback.unwrap_or("disabled")),
        };
    }

    let early = pp.early_exit_limit();
    let gate = early.map(|n| LimitGate::new(n, ranges.len()));
    let workers = opts.workers.min(ranges.len()).min(worker_budget);
    let next = AtomicUsize::new(0);
    type MorselResult = Result<(MorselOut, vector::RangeStats)>;
    let results: Mutex<Vec<(usize, Duration, MorselResult)>> =
        Mutex::new(Vec::with_capacity(ranges.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if gate.as_ref().is_some_and(LimitGate::is_done) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(lo, hi)) = ranges.get(i) else {
                    break;
                };
                let started = Instant::now();
                let out = run_morsel(
                    table,
                    rids.as_deref(),
                    lo,
                    hi,
                    &pp,
                    vp.as_ref(),
                    rt.as_ref(),
                    spec.as_deref(),
                    early,
                    batch_rows,
                    gate.as_ref().map(|g| &g.done),
                );
                if let Some(g) = &gate {
                    match &out {
                        Ok((MorselOut::Limited { rows, err }, _)) => g.record(
                            i,
                            if err.is_some() {
                                usize::MAX
                            } else {
                                rows.len()
                            },
                        ),
                        Ok(_) => {}
                        Err(_) => g.record(i, usize::MAX),
                    }
                }
                results.lock().push((i, started.elapsed(), out));
            });
        }
    });
    let mut per_morsel = std::mem::take(&mut *results.lock());
    // Claims come off a sequential counter, so the completed morsels are a
    // contiguous prefix of the domain (shorter than `ranges` when the
    // limit gate stopped the scan).
    per_morsel.sort_by_key(|(i, _, _)| *i);

    let mut morsel_times = Vec::with_capacity(per_morsel.len());
    let mut parts = Vec::with_capacity(per_morsel.len());
    let mut stats = vector::RangeStats::default();
    for (_, elapsed, out) in per_morsel {
        morsel_times.push(elapsed);
        match out {
            Ok((part, s)) => {
                parts.push(part);
                stats.batches += s.batches;
                stats.dict_columns += s.dict_columns;
                stats.dict_demoted += s.dict_demoted;
            }
            // First error in morsel order, so failures are deterministic.
            Err(e) => return Ran(Err(e)),
        }
    }

    let vectorized = vp.is_some();
    let specialized = spec.is_some();
    Ran(merge(parts, &pp).map(|rows| {
        (
            rows,
            ExecReport {
                parallelism: workers,
                morsel_times,
                vectorized,
                batches: stats.batches,
                batch_rows: if vectorized { batch_rows } else { 0 },
                compile_time,
                fallback: row_fallback,
                specialized,
                dict_columns: stats.dict_columns,
                dict_demoted: stats.dict_demoted,
            },
        )
    }))
}

/// Single-threaded vectorized execution over the whole scan domain: one
/// sink, run in the terminal's own aggregate mode, so the output is the
/// serial path's, batch-produced. An early-exit limit stops the batch
/// loop as soon as the sink is satisfied.
#[allow(clippy::too_many_arguments)]
fn run_sequential(
    table: &Table,
    rids: Option<&[RecordId]>,
    domain: usize,
    pp: &ParallelPlan<'_>,
    vp: &vector::VecPipeline,
    rt: Option<&vector::JoinRuntime<'_>>,
    spec: Option<&vector::KernelPlan>,
    batch_rows: usize,
    compile_time: Duration,
) -> Result<(Vec<Value>, ExecReport)> {
    let mut sink = MorselSink::new(&pp.terminal, pp.early_exit_limit());
    let stats = vector::run_range(
        table, rids, 0, domain, vp, rt, spec, batch_rows, &mut sink, None,
    )?;
    let rows = match sink {
        MorselSink::Collect { rows, err, .. } => {
            // A recorded error implies the limit never filled (the sink
            // stops at whichever comes first), so it fires.
            if let Some(e) = err {
                return Err(e);
            }
            rows
        }
        MorselSink::Aggregate(state) => state.finish(),
        MorselSink::Sort {
            topk, mut keyed, ..
        } => {
            // One whole-domain "chunk": the stable sort + top-k truncation
            // *is* the serial sort here.
            keyed.sort_by(|(a, _), (b, _)| a.cmp(b));
            if let Some(k) = topk {
                keyed.truncate(k as usize);
            }
            keyed.into_iter().map(|(_, row)| row).collect()
        }
    };
    let rows = finalize_rows(rows, pp)?;
    Ok((
        rows,
        ExecReport {
            parallelism: 1,
            morsel_times: Vec::new(),
            vectorized: true,
            batches: stats.batches,
            batch_rows,
            compile_time,
            fallback: None,
            specialized: spec.is_some(),
            dict_columns: stats.dict_columns,
            dict_demoted: stats.dict_demoted,
        },
    ))
}

/// The per-morsel part of the terminal, fed one row at a time. Streaming
/// matters: each scanned row is a fresh record clone, and aggregate
/// morsels that fold rows immediately (dropping each clone right away,
/// like the serial path) run ~2-3x faster than morsels that materialize
/// their input first.
pub(super) enum MorselSink<'p> {
    Collect {
        rows: Vec<Value>,
        /// Early-exit limit; `None` collects everything.
        limit: Option<usize>,
        /// First error under an early-exit limit (recorded, not raised:
        /// whether it fires depends on how many rows precede it
        /// globally).
        err: Option<EngineError>,
    },
    Aggregate(AggState<'p>),
    Sort {
        keys: &'p [(Scalar, bool)],
        topk: Option<u64>,
        keyed: Vec<(Vec<SortKey>, Value)>,
    },
}

impl<'p> MorselSink<'p> {
    fn new(terminal: &Terminal<'p>, limit: Option<usize>) -> MorselSink<'p> {
        match terminal {
            Terminal::Collect => MorselSink::Collect {
                rows: Vec::new(),
                limit,
                err: None,
            },
            Terminal::Aggregate {
                group_by,
                aggs,
                mode,
            } => MorselSink::Aggregate(AggState::new(group_by, aggs, *mode)),
            Terminal::Sort { keys, topk } => MorselSink::Sort {
                keys,
                topk: *topk,
                keyed: Vec::new(),
            },
        }
    }

    /// The early-exit limit, when this sink runs under one.
    pub(super) fn limit(&self) -> Option<usize> {
        match self {
            MorselSink::Collect { limit, .. } => *limit,
            _ => None,
        }
    }

    /// True once an early-exit limit needs no further input: enough rows
    /// collected, or an error recorded (which settles this morsel's
    /// contribution either way).
    pub(super) fn satisfied(&self) -> bool {
        match self {
            MorselSink::Collect {
                rows,
                limit: Some(n),
                err,
            } => err.is_some() || rows.len() >= *n,
            _ => false,
        }
    }

    /// Record the first error under an early-exit limit.
    pub(super) fn record_err(&mut self, e: EngineError) {
        if let MorselSink::Collect { err, .. } = self {
            if err.is_none() {
                *err = Some(e);
            }
        }
    }

    /// Push an already-keyed row (the vectorized path evaluates sort keys
    /// with batch programs).
    pub(super) fn push_keyed(&mut self, key: Vec<SortKey>, row: Value) {
        match self {
            MorselSink::Sort { keyed, .. } => keyed.push((key, row)),
            _ => unreachable!("keyed push on a non-sort sink"),
        }
    }

    /// Borrow the scalar accumulators for the fused typed aggregate fold
    /// (`None` unless this is a scalar-update aggregation sink — see
    /// [`super::AggState::typed_fold_accs`]). A `Some` return marks the
    /// aggregate state non-empty, so callers must have at least one
    /// surviving lane to fold.
    pub(super) fn fused_accs(&mut self) -> Option<&mut [Accumulator]> {
        match self {
            MorselSink::Aggregate(state) => state.typed_fold_accs(),
            _ => None,
        }
    }

    /// Fold pre-evaluated group key + aggregate arguments (the vectorized
    /// path evaluates both with batch programs). `args[i] == None` is
    /// `COUNT(*)`; a truncated slice updates only the leading
    /// accumulators (used to reproduce row-order error precedence).
    pub(super) fn push_agg(&mut self, key: Vec<OrdValue>, args: &[Option<&Value>]) -> Result<()> {
        match self {
            MorselSink::Aggregate(state) => state.push_values(key, args),
            _ => unreachable!("aggregate push on a non-aggregate sink"),
        }
    }

    pub(super) fn push(&mut self, row: Value) -> Result<()> {
        match self {
            MorselSink::Collect { rows, .. } => rows.push(row),
            MorselSink::Aggregate(state) => state.push(&row)?,
            MorselSink::Sort { keys, keyed, .. } => {
                let key = sort_keys(keys, &row)?;
                keyed.push((key, row));
            }
        }
        Ok(())
    }

    pub(super) fn finish(self) -> MorselOut {
        match self {
            MorselSink::Collect {
                rows,
                limit: Some(_),
                err,
            } => MorselOut::Limited { rows, err },
            MorselSink::Collect { rows, .. } => MorselOut::Rows(rows),
            MorselSink::Aggregate(state) => MorselOut::Agg(state.into_parts()),
            MorselSink::Sort {
                topk, mut keyed, ..
            } => {
                // Stable, like the serial sort, so ties keep scan order.
                keyed.sort_by(|(a, _), (b, _)| a.cmp(b));
                if let Some(k) = topk {
                    // Rows beyond the top-k of any chunk cannot reach the
                    // global top-k.
                    keyed.truncate(k as usize);
                }
                MorselOut::Keyed(keyed)
            }
        }
    }
}

/// Scan one morsel, apply the row-local ops, and stream each surviving row
/// into the per-morsel part of the terminal. Returns the morsel output and
/// the batch-path processing stats (zeroed on the row path).
#[allow(clippy::too_many_arguments)]
fn run_morsel(
    table: &Table,
    rids: Option<&[RecordId]>,
    lo: usize,
    hi: usize,
    pp: &ParallelPlan<'_>,
    vp: Option<&vector::VecPipeline>,
    rt: Option<&vector::JoinRuntime<'_>>,
    spec: Option<&vector::KernelPlan>,
    limit: Option<usize>,
    batch_rows: usize,
    stop: Option<&AtomicBool>,
) -> Result<(MorselOut, vector::RangeStats)> {
    let mut sink = MorselSink::new(&pp.terminal, limit);
    if let Some(vp) = vp {
        let stats = vector::run_range(
            table, rids, lo, hi, vp, rt, spec, batch_rows, &mut sink, stop,
        )?;
        return Ok((sink.finish(), stats));
    }
    match rids {
        None => {
            for (_, record) in table.heap().scan_range(lo, hi) {
                if let Some(row) = apply_ops(&pp.ops, Value::Obj(record.clone()))? {
                    sink.push(row)?;
                }
            }
        }
        Some(rids) => {
            for rid in &rids[lo..hi] {
                let record = table
                    .get(*rid)
                    .ok_or_else(|| EngineError::exec("dangling index entry"))?;
                if let Some(row) = apply_ops(&pp.ops, Value::Obj(record.clone()))? {
                    sink.push(row)?;
                }
            }
        }
    }
    Ok((sink.finish(), vector::RangeStats::default()))
}

/// Apply filters/projections to one row; `None` means filtered out.
fn apply_ops(ops: &[MorselOp<'_>], mut row: Value) -> Result<Option<Value>> {
    for op in ops {
        match op {
            MorselOp::Filter(pred) => {
                if !passes_filter(pred, &row)? {
                    return Ok(None);
                }
            }
            MorselOp::Project(spec) => row = project_row(spec, &row)?,
        }
    }
    Ok(Some(row))
}

/// Evaluate the sort key vector for one row, directions baked in.
fn sort_keys(keys: &[(Scalar, bool)], row: &Value) -> Result<Vec<SortKey>> {
    keys.iter()
        .map(|(expr, desc)| {
            let v = OrdValue(eval(expr, row)?);
            Ok(if *desc {
                SortKey::Desc(v)
            } else {
                SortKey::Asc(v)
            })
        })
        .collect()
}

/// Merge per-morsel outputs (in morsel order) into the final row set.
fn merge(parts: Vec<MorselOut>, pp: &ParallelPlan<'_>) -> Result<Vec<Value>> {
    if let Some(n) = pp.early_exit_limit() {
        // Replay the serial `take(n)`: rows in morsel (= scan) order until
        // the limit fills; a morsel's recorded error fires only if it is
        // reached first. Morsels past the determining prefix may hold
        // partial (aborted) output, but the walk never reaches them.
        let mut out = Vec::new();
        for part in parts {
            let MorselOut::Limited { rows, err } = part else {
                continue;
            };
            for row in rows {
                if out.len() >= n {
                    return Ok(out);
                }
                out.push(row);
            }
            if out.len() >= n {
                break;
            }
            if let Some(e) = err {
                return Err(e);
            }
        }
        out.truncate(n);
        return Ok(out);
    }
    let rows = match &pp.terminal {
        Terminal::Collect => {
            let mut out = Vec::new();
            for part in parts {
                if let MorselOut::Rows(r) = part {
                    out.extend(r);
                }
            }
            out
        }
        Terminal::Aggregate {
            group_by,
            aggs,
            mode,
        } => {
            // Fold every morsel's accumulator states into one state in the
            // terminal's own mode — the columnar-side final-aggregate
            // merge (no partial-row round trip).
            let mut state = AggState::new(group_by, aggs, *mode);
            for part in parts {
                if let MorselOut::Agg(p) = part {
                    state.absorb(p);
                }
            }
            state.finish()
        }
        Terminal::Sort { topk, .. } => {
            let chunks: Vec<Vec<(Vec<SortKey>, Value)>> = parts
                .into_iter()
                .map(|p| match p {
                    MorselOut::Keyed(c) => c,
                    _ => Vec::new(),
                })
                .collect();
            let mut merged = kway_merge(chunks);
            if let Some(k) = topk {
                merged.truncate(*k as usize);
            }
            merged
        }
    };
    finalize_rows(rows, pp)
}

/// Re-apply the peeled post-terminal operators: projections (innermost
/// first), DISTINCT, then the limit. A limit without DISTINCT truncates
/// *before* projecting — the row path's lazy `take(n)` never projects
/// (or errors on) rows past the limit, and projections are 1:1.
fn finalize_rows(mut rows: Vec<Value>, pp: &ParallelPlan<'_>) -> Result<Vec<Value>> {
    if !pp.distinct {
        if let Some(n) = pp.limit {
            rows.truncate(n);
        }
    }
    for spec in pp.post.iter().rev() {
        rows = rows
            .into_iter()
            .map(|r| project_row(spec, &r))
            .collect::<Result<Vec<Value>>>()?;
    }
    if pp.distinct {
        let mut set = DistinctSet::new();
        rows.retain(|r| set.insert(r));
        if let Some(n) = pp.limit {
            rows.truncate(n);
        }
    }
    Ok(rows)
}

/// K-way merge of sorted chunks. The heap key is `(sort key, chunk index)`
/// so equal keys pop in chunk (= scan) order — the stable-sort tie order
/// the serial path produces.
fn kway_merge(mut chunks: Vec<Vec<(Vec<SortKey>, Value)>>) -> Vec<Value> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let total: usize = chunks.iter().map(Vec::len).sum();
    let mut cursors = vec![0usize; chunks.len()];
    let mut heap: BinaryHeap<Reverse<(Vec<SortKey>, usize)>> = BinaryHeap::new();
    for (ci, chunk) in chunks.iter().enumerate() {
        if let Some((key, _)) = chunk.first() {
            heap.push(Reverse((key.clone(), ci)));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse((_, ci))) = heap.pop() {
        let pos = cursors[ci];
        cursors[ci] += 1;
        out.push(std::mem::replace(&mut chunks[ci][pos].1, Value::Null));
        if let Some((key, _)) = chunks[ci].get(cursors[ci]) {
            heap.push(Reverse((key.clone(), ci)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_override_parsing() {
        assert_eq!(thread_override(Some("4")), Some(4));
        assert_eq!(thread_override(Some(" 8 ")), Some(8));
        assert_eq!(thread_override(Some("0")), None);
        assert_eq!(thread_override(Some("lots")), None);
        assert_eq!(thread_override(None), None);
        assert!(available_threads() >= 1);
    }

    #[test]
    fn env_tuning_is_read_once_and_cached() {
        // Regression: both knobs used to re-read the environment on
        // every query, so a mid-run `set_var` silently changed execution
        // behaviour (and raced against concurrent sessions). Prime the
        // caches, then show later environment changes are ignored.
        let threads = available_threads();
        let batch = default_batch_rows();
        std::env::set_var("POLYFRAME_THREADS", "1");
        std::env::set_var("POLYFRAME_BATCH_SIZE", "17");
        assert_eq!(available_threads(), threads);
        assert_eq!(default_batch_rows(), batch);
        std::env::remove_var("POLYFRAME_THREADS");
        std::env::remove_var("POLYFRAME_BATCH_SIZE");
        let opts = ExecOptions::default();
        assert_eq!(opts.workers, threads);
        assert_eq!(opts.batch_rows, batch);
    }

    #[test]
    fn batch_rows_override_parsing() {
        assert_eq!(batch_rows_override(Some("512")), Some(512));
        assert_eq!(batch_rows_override(Some(" 64 ")), Some(64));
        // Zero and garbage are rejected — the default applies.
        assert_eq!(batch_rows_override(Some("0")), None);
        assert_eq!(batch_rows_override(Some("huge")), None);
        assert_eq!(batch_rows_override(None), None);
        // Absurdly large values clamp instead of panicking or wedging.
        assert_eq!(batch_rows_override(Some("999999999")), Some(MAX_BATCH_ROWS));
        assert!(default_batch_rows() >= 1);
        assert!(default_batch_rows() <= MAX_BATCH_ROWS);
    }

    #[test]
    fn exec_option_presets() {
        let rowwise = ExecOptions::rowwise();
        assert_eq!(rowwise.workers, 1);
        assert!(!rowwise.vectorized);
        let serial = ExecOptions::serial();
        assert_eq!(serial.workers, 1);
        assert!(serial.vectorized);
    }

    #[test]
    fn sort_key_directions() {
        let a = SortKey::Asc(OrdValue(Value::Int(1)));
        let b = SortKey::Asc(OrdValue(Value::Int(2)));
        assert!(a < b);
        let a = SortKey::Desc(OrdValue(Value::Int(1)));
        let b = SortKey::Desc(OrdValue(Value::Int(2)));
        assert!(b < a);
    }

    #[test]
    fn kway_merge_is_stable_across_chunks() {
        let key = |k: i64| vec![SortKey::Asc(OrdValue(Value::Int(k)))];
        let chunks = vec![
            vec![(key(1), Value::str("c0-k1")), (key(3), Value::str("c0-k3"))],
            vec![(key(1), Value::str("c1-k1")), (key(2), Value::str("c1-k2"))],
        ];
        let merged = kway_merge(chunks);
        let names: Vec<&str> = merged
            .iter()
            .map(|v| match v {
                Value::Str(s) => s.as_str(),
                _ => "?",
            })
            .collect();
        // Equal keys keep chunk order (chunk 0 before chunk 1).
        assert_eq!(names, ["c0-k1", "c1-k1", "c1-k2", "c0-k3"]);
    }

    #[test]
    fn limit_gate_waits_for_the_prefix() {
        let gate = LimitGate::new(5, 4);
        assert!(!gate.is_done());
        // Morsel 2 alone satisfies the count, but morsels 0/1 are still
        // open — an earlier error could change the outcome.
        gate.record(2, 7);
        assert!(!gate.is_done());
        gate.record(0, 1);
        assert!(!gate.is_done());
        // Prefix complete: 1 + 0 + 7 >= 5.
        gate.record(1, 0);
        assert!(gate.is_done());
    }

    #[test]
    fn limit_gate_errors_and_zero() {
        // An error inside the contiguous prefix settles the outcome.
        let gate = LimitGate::new(100, 3);
        gate.record(0, usize::MAX);
        assert!(gate.is_done());
        // LIMIT 0 needs nothing.
        assert!(LimitGate::new(0, 3).is_done());
    }
}
