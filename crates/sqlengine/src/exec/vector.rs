//! Vectorized batch execution: compiled expression programs over columnar
//! morsels.
//!
//! The morsel scheduler in [`super::parallel`] decomposes a plan into a
//! scan leaf, a chain of row-local operators and one blocking terminal.
//! This module adds a second way to run that decomposition: instead of
//! cloning every scanned record into a [`Value`] and walking the `Scalar`
//! tree per row, a morsel is cut into [`ColumnBatch`]es (typed column
//! vectors + per-lane presence tags, dictionary-encoded strings), and each
//! `Scalar` tree is flattened once per query into an [`ExprProgram`] — a
//! linear register program whose instructions run over a whole selection
//! vector at a time.
//!
//! Byte-identity with the row path is the contract, enforced three ways:
//!
//! * Every instruction reuses the *same* semantic helpers as the row
//!   evaluator (`eval_binop` / `eval_unop` / `eval_func` / `eval_is`), so
//!   a batch kernel can never disagree with `eval()` on a value. The fast
//!   kernels (integer compare/arithmetic, dictionary-memoized string
//!   compare, presence-tag `IS NULL`/`IS MISSING`) are only taken where
//!   they are provably equivalent.
//! * Errors are *poisoned per lane* instead of raised mid-batch: each lane
//!   records the first error it hits in program order, poisoned lanes are
//!   skipped by later instructions, and the batch reports the error of the
//!   lowest poisoned lane — exactly the row the serial scan would have
//!   failed on.
//! * Anything the compiler cannot express (join-scoped references,
//!   `SELECT VALUE` feeding another operator, `MergeStars`) makes
//!   [`compile`] return `None` and the caller falls back to the row path —
//!   the same whitelist discipline `parallel::analyze` applies to plans.

use super::aggregate::OrdValue;
use super::eval::{eval_binop, eval_func, eval_is, eval_unop, truthy};
use super::parallel::{MorselOp, MorselSink, ParallelPlan, SortKey, Terminal};
use crate::ast::{BinOp, IsKind, UnaryOp};
use crate::error::{EngineError, Result};
use crate::plan::logical::{AggArg, ProjectSpec, Scalar, ScalarFunc};
use polyframe_datamodel::{Record, Value};
use polyframe_storage::{Column, ColumnBatch, Presence, RecordId, Table};
use std::borrow::Cow;
use std::collections::BTreeMap;

/// Where an instruction operand comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    /// A scan column (`scan_fields[i]`) or, after a projection stage, a
    /// derived column of the current environment.
    Col(usize),
    /// A literal from the program's literal pool.
    Lit(usize),
    /// The output of instruction `i`.
    Reg(usize),
}

/// One instruction of a flattened expression; instruction `i` writes
/// register `i`.
#[derive(Debug, Clone)]
enum Instr {
    Un(UnaryOp, Src),
    Bin(BinOp, Src, Src),
    /// All arguments are evaluated (for their errors), the first is used —
    /// the row evaluator's convention.
    Call(ScalarFunc, Vec<Src>),
    Is(Src, IsKind, bool),
}

/// A `Scalar` tree flattened into a linear register program.
#[derive(Debug, Clone)]
struct ExprProgram {
    instrs: Vec<Instr>,
    lits: Vec<Value>,
    result: Src,
}

/// One row-local stage of a vectorized pipeline.
enum VecStage {
    Filter(ExprProgram),
    /// Output column names live in the compiler environment (and, for the
    /// final projection, in [`RowEmit::Derived`]); the stage itself only
    /// needs the programs.
    Project(Vec<ExprProgram>),
}

/// How surviving lanes turn back into result rows.
enum RowEmit {
    /// No projection ran: the row is the scanned record.
    Scanned,
    /// The last projection's derived columns, zipped with their names.
    Derived(Vec<String>),
    /// `SELECT VALUE expr`: the row *is* the program's result.
    Value(ExprProgram),
}

/// The compiled form of the pipeline's blocking terminal.
enum VecTerminal {
    Collect(RowEmit),
    Sort {
        emit: RowEmit,
        keys: Vec<(ExprProgram, bool)>,
    },
    /// `args[i] == None` is `COUNT(*)`.
    Agg {
        keys: Vec<ExprProgram>,
        args: Vec<Option<ExprProgram>>,
    },
}

/// A fully compiled vectorized pipeline: which scan fields to transpose
/// into columns, the stage programs, and the terminal.
pub(super) struct VecPipeline {
    scan_fields: Vec<String>,
    stages: Vec<VecStage>,
    terminal: VecTerminal,
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// The column environment a program compiles against: the physical scan
/// columns until the first projection, that projection's output columns
/// after.
struct Compiler {
    scan_fields: Vec<String>,
    derived: Option<Vec<String>>,
}

impl Compiler {
    fn resolve(&mut self, field: &str, lits: &mut Vec<Value>) -> Src {
        match &self.derived {
            // Duplicate output names resolve to the *last* occurrence —
            // record insertion overwrites, so that is the value a field
            // lookup on the projected row would see.
            Some(names) => match names.iter().rposition(|n| n == field) {
                Some(i) => Src::Col(i),
                None => push_lit(lits, Value::Missing),
            },
            None => Src::Col(match self.scan_fields.iter().position(|n| n == field) {
                Some(i) => i,
                None => {
                    self.scan_fields.push(field.to_string());
                    self.scan_fields.len() - 1
                }
            }),
        }
    }

    fn compile_expr(&mut self, scalar: &Scalar) -> Option<ExprProgram> {
        let mut instrs = Vec::new();
        let mut lits = Vec::new();
        let result = self.compile_into(scalar, &mut instrs, &mut lits)?;
        Some(ExprProgram {
            instrs,
            lits,
            result,
        })
    }

    /// Postorder flattening: operands compile before their operator, which
    /// reproduces the row evaluator's evaluation (and therefore error)
    /// order — `eval_binop` never short-circuits, so a linear program is
    /// exact.
    fn compile_into(
        &mut self,
        scalar: &Scalar,
        instrs: &mut Vec<Instr>,
        lits: &mut Vec<Value>,
    ) -> Option<Src> {
        Some(match scalar {
            Scalar::Field(f) => self.resolve(f, lits),
            Scalar::Lit(v) => push_lit(lits, v.clone()),
            Scalar::Un(op, a) => {
                let a = self.compile_into(a, instrs, lits)?;
                instrs.push(Instr::Un(*op, a));
                Src::Reg(instrs.len() - 1)
            }
            Scalar::Bin(op, a, b) => {
                let a = self.compile_into(a, instrs, lits)?;
                let b = self.compile_into(b, instrs, lits)?;
                instrs.push(Instr::Bin(*op, a, b));
                Src::Reg(instrs.len() - 1)
            }
            Scalar::Call(func, args) => {
                let srcs = args
                    .iter()
                    .map(|a| self.compile_into(a, instrs, lits))
                    .collect::<Option<Vec<Src>>>()?;
                instrs.push(Instr::Call(*func, srcs));
                Src::Reg(instrs.len() - 1)
            }
            Scalar::Is(a, kind, negated) => {
                let a = self.compile_into(a, instrs, lits)?;
                instrs.push(Instr::Is(a, *kind, *negated));
                Src::Reg(instrs.len() - 1)
            }
            // Whole-row and join-scoped references need the materialized
            // record; those pipelines stay on the row path.
            Scalar::Input | Scalar::FieldOf(..) | Scalar::BindingRef(_) => return None,
        })
    }
}

fn push_lit(lits: &mut Vec<Value>, v: Value) -> Src {
    lits.push(v);
    Src::Lit(lits.len() - 1)
}

/// Compile a parallel-safe plan decomposition into a vectorized pipeline,
/// or `None` for the row-path fallback.
pub(super) fn compile(pp: &ParallelPlan<'_>) -> Option<VecPipeline> {
    let mut c = Compiler {
        scan_fields: Vec::new(),
        derived: None,
    };
    let mut stages = Vec::new();
    let mut value_emit: Option<ExprProgram> = None;
    for op in &pp.ops {
        if value_emit.is_some() {
            // Operators above a `SELECT VALUE` see scalar rows, not
            // records; the row path handles those.
            return None;
        }
        match op {
            MorselOp::Filter(pred) => stages.push(VecStage::Filter(c.compile_expr(pred)?)),
            MorselOp::Project(ProjectSpec::Columns(cols)) => {
                let mut names = Vec::with_capacity(cols.len());
                let mut progs = Vec::with_capacity(cols.len());
                for (name, expr) in cols {
                    progs.push(c.compile_expr(expr)?);
                    names.push(name.clone());
                }
                stages.push(VecStage::Project(progs));
                c.derived = Some(names);
            }
            MorselOp::Project(ProjectSpec::Value(expr)) => value_emit = Some(c.compile_expr(expr)?),
            MorselOp::Project(ProjectSpec::MergeStars(_)) => return None,
        }
    }
    let emit = match (value_emit, &c.derived) {
        (Some(prog), _) => RowEmit::Value(prog),
        (None, Some(names)) => RowEmit::Derived(names.clone()),
        (None, None) => RowEmit::Scanned,
    };
    let terminal = match &pp.terminal {
        Terminal::Collect => VecTerminal::Collect(emit),
        Terminal::Sort { keys, .. } => {
            if matches!(emit, RowEmit::Value(_)) {
                return None;
            }
            let keys = keys
                .iter()
                .map(|(expr, desc)| c.compile_expr(expr).map(|p| (p, *desc)))
                .collect::<Option<Vec<_>>>()?;
            VecTerminal::Sort { emit, keys }
        }
        Terminal::Aggregate { group_by, aggs, .. } => {
            if matches!(emit, RowEmit::Value(_)) {
                return None;
            }
            let keys = group_by
                .iter()
                .map(|(_, expr)| c.compile_expr(expr))
                .collect::<Option<Vec<_>>>()?;
            let args = aggs
                .iter()
                .map(|agg| match &agg.arg {
                    AggArg::Star => Some(None),
                    AggArg::Expr(expr) => c.compile_expr(expr).map(Some),
                })
                .collect::<Option<Vec<_>>>()?;
            VecTerminal::Agg { keys, args }
        }
    };
    Some(VecPipeline {
        scan_fields: c.scan_fields,
        stages,
        terminal,
    })
}

// ---------------------------------------------------------------------------
// Error poisoning
// ---------------------------------------------------------------------------

/// Per-lane error state of one batch. A lane keeps the first error it hits
/// (programs run in stage order, instructions in program order, so
/// `or_insert` preserves "first in serial evaluation order"), and the
/// batch fails with the error of the *lowest* poisoned lane — the row the
/// serial scan would have failed on.
#[derive(Default)]
struct ErrTracker {
    /// lane -> (terminal stage index, error).
    errs: BTreeMap<u32, (u32, EngineError)>,
}

impl ErrTracker {
    fn poison(&mut self, lane: u32, stage: u32, err: EngineError) {
        self.errs.entry(lane).or_insert((stage, err));
    }

    fn poisoned(&self, lane: u32) -> bool {
        !self.errs.is_empty() && self.errs.contains_key(&lane)
    }

    fn is_empty(&self) -> bool {
        self.errs.is_empty()
    }

    /// The error of the lowest poisoned lane.
    fn first_err(&self) -> Option<EngineError> {
        self.errs.values().next().map(|(_, e)| e.clone())
    }

    /// Lowest poisoned lane with its terminal stage.
    fn first(&self) -> Option<(u32, u32, &EngineError)> {
        self.errs.iter().next().map(|(l, (s, e))| (*l, *s, e))
    }

    fn get(&self, lane: u32) -> Option<(u32, &EngineError)> {
        self.errs.get(&lane).map(|(s, e)| (*s, e))
    }
}

// ---------------------------------------------------------------------------
// Program execution
// ---------------------------------------------------------------------------

fn operand<'a>(
    src: Src,
    k: usize,
    lane: u32,
    batch: &'a ColumnBatch,
    derived: Option<&'a [Vec<Value>]>,
    lits: &'a [Value],
    regs: &'a [Vec<Value>],
) -> Cow<'a, Value> {
    match src {
        Src::Col(c) => match derived {
            Some(cols) => Cow::Borrowed(&cols[c][k]),
            None => batch.column(c).value_at(lane as usize),
        },
        Src::Lit(l) => Cow::Borrowed(&lits[l]),
        Src::Reg(r) => Cow::Borrowed(&regs[r][k]),
    }
}

/// Run one program over the selected lanes; the result vector is aligned
/// with `sel`. Lanes that error are poisoned (placeholder `Null` in the
/// output) rather than aborting the batch.
fn run_program(
    prog: &ExprProgram,
    batch: &ColumnBatch,
    sel: &[u32],
    derived: Option<&[Vec<Value>]>,
    stage: u32,
    tracker: &mut ErrTracker,
) -> Vec<Value> {
    let mut regs: Vec<Vec<Value>> = Vec::with_capacity(prog.instrs.len());
    for instr in &prog.instrs {
        let out = match kernel(instr, batch, sel, derived, &prog.lits) {
            Some(v) => v,
            None => generic_instr(
                instr, batch, sel, derived, &prog.lits, &regs, stage, tracker,
            ),
        };
        regs.push(out);
    }
    match prog.result {
        Src::Reg(r) => {
            // Postorder flattening makes the root the last instruction.
            debug_assert_eq!(r + 1, regs.len());
            regs.pop().unwrap_or_default()
        }
        Src::Col(c) => sel
            .iter()
            .enumerate()
            .map(|(k, &lane)| {
                operand(Src::Col(c), k, lane, batch, derived, &prog.lits, &regs).into_owned()
            })
            .collect(),
        Src::Lit(l) => vec![prog.lits[l].clone(); sel.len()],
    }
}

/// Generic per-lane execution: exact row semantics via the shared `eval_*`
/// helpers, skipping already-poisoned lanes.
#[allow(clippy::too_many_arguments)]
fn generic_instr(
    instr: &Instr,
    batch: &ColumnBatch,
    sel: &[u32],
    derived: Option<&[Vec<Value>]>,
    lits: &[Value],
    regs: &[Vec<Value>],
    stage: u32,
    tracker: &mut ErrTracker,
) -> Vec<Value> {
    let mut out = Vec::with_capacity(sel.len());
    for (k, &lane) in sel.iter().enumerate() {
        if tracker.poisoned(lane) {
            out.push(Value::Null);
            continue;
        }
        let r = match instr {
            Instr::Un(op, a) => {
                let v = operand(*a, k, lane, batch, derived, lits, regs);
                eval_unop(*op, &v)
            }
            Instr::Bin(op, a, b) => {
                let av = operand(*a, k, lane, batch, derived, lits, regs);
                let bv = operand(*b, k, lane, batch, derived, lits, regs);
                eval_binop(*op, &av, &bv)
            }
            Instr::Call(func, args) => {
                let first = args
                    .first()
                    .map(|s| operand(*s, k, lane, batch, derived, lits, regs));
                eval_func(*func, first.as_deref())
            }
            Instr::Is(a, kind, negated) => {
                let v = operand(*a, k, lane, batch, derived, lits, regs);
                Ok(eval_is(&v, *kind, *negated))
            }
        };
        match r {
            Ok(v) => out.push(v),
            Err(e) => {
                tracker.poison(lane, stage, e);
                out.push(Value::Null);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Batch kernels
// ---------------------------------------------------------------------------

fn is_cmp(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    )
}

fn int_cmp(op: BinOp, a: i64, b: i64) -> bool {
    match op {
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        _ => unreachable!("comparison operators only"),
    }
}

/// Column-vs-literal fast paths, taken only where they are provably
/// equivalent to `eval_binop`/`eval_is` (and can never error, so they need
/// no tracker). `None` falls back to the generic per-lane loop.
fn kernel(
    instr: &Instr,
    batch: &ColumnBatch,
    sel: &[u32],
    derived: Option<&[Vec<Value>]>,
    lits: &[Value],
) -> Option<Vec<Value>> {
    if derived.is_some() {
        return None;
    }
    match *instr {
        Instr::Bin(op, Src::Col(c), Src::Lit(l)) => {
            bin_col_lit(op, batch.column(c), &lits[l], sel, false)
        }
        Instr::Bin(op, Src::Lit(l), Src::Col(c)) => {
            bin_col_lit(op, batch.column(c), &lits[l], sel, true)
        }
        Instr::Is(Src::Col(c), kind, negated) => {
            let col = batch.column(c);
            Some(
                sel.iter()
                    .map(|&lane| {
                        let hit = match (kind, col.presence_at(lane as usize)) {
                            (IsKind::Missing, p) => p == Presence::Missing,
                            (IsKind::Null | IsKind::Unknown, p) => p != Presence::Present,
                        };
                        Value::Bool(hit != negated)
                    })
                    .collect(),
            )
        }
        _ => None,
    }
}

fn bin_col_lit(
    op: BinOp,
    col: &Column,
    lit: &Value,
    sel: &[u32],
    lit_is_lhs: bool,
) -> Option<Vec<Value>> {
    match (col, lit) {
        (Column::Int { data, tags }, Value::Int(x)) if is_cmp(op) => Some(
            sel.iter()
                .map(|&lane| {
                    let i = lane as usize;
                    match tags[i] {
                        Presence::Present => Value::Bool(if lit_is_lhs {
                            int_cmp(op, *x, data[i])
                        } else {
                            int_cmp(op, data[i], *x)
                        }),
                        Presence::Null => Value::Null,
                        Presence::Missing => Value::Missing,
                    }
                })
                .collect(),
        ),
        (Column::Int { data, tags }, Value::Int(x))
            if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul) =>
        {
            Some(
                sel.iter()
                    .map(|&lane| {
                        let i = lane as usize;
                        match tags[i] {
                            Presence::Present => {
                                let (a, b) = if lit_is_lhs {
                                    (*x, data[i])
                                } else {
                                    (data[i], *x)
                                };
                                Value::Int(match op {
                                    BinOp::Add => a.wrapping_add(b),
                                    BinOp::Sub => a.wrapping_sub(b),
                                    _ => a.wrapping_mul(b),
                                })
                            }
                            Presence::Null => Value::Null,
                            Presence::Missing => Value::Missing,
                        }
                    })
                    .collect(),
            )
        }
        // Dictionary-encoded strings: evaluate the comparison once per
        // distinct value instead of once per row. Comparisons never error.
        (Column::Str { codes, dict, tags }, lit) if is_cmp(op) => {
            let side = |d: &Value| {
                if lit_is_lhs {
                    eval_binop(op, lit, d)
                } else {
                    eval_binop(op, d, lit)
                }
            };
            let memo: Vec<Value> = dict.iter().map(&side).collect::<Result<_>>().ok()?;
            let null_v = side(&Value::Null).ok()?;
            let miss_v = side(&Value::Missing).ok()?;
            Some(
                sel.iter()
                    .map(|&lane| {
                        let i = lane as usize;
                        match tags[i] {
                            Presence::Present => memo[codes[i] as usize].clone(),
                            Presence::Null => null_v.clone(),
                            Presence::Missing => miss_v.clone(),
                        }
                    })
                    .collect(),
            )
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Pipeline driver
// ---------------------------------------------------------------------------

fn retain_mask<T>(v: &mut Vec<T>, keep: &[bool]) {
    let mut i = 0;
    v.retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
}

/// Drop poisoned lanes from the selection (and the aligned derived
/// columns); their errors stay in the tracker for end-of-batch reporting.
fn compact_poisoned(
    sel: &mut Vec<u32>,
    derived: &mut Option<Vec<Vec<Value>>>,
    tracker: &ErrTracker,
) {
    if tracker.is_empty() {
        return;
    }
    let keep: Vec<bool> = sel.iter().map(|&lane| !tracker.poisoned(lane)).collect();
    retain_mask(sel, &keep);
    if let Some(cols) = derived {
        for col in cols.iter_mut() {
            retain_mask(col, &keep);
        }
    }
}

fn apply_filter(
    prog: &ExprProgram,
    batch: &ColumnBatch,
    sel: &mut Vec<u32>,
    derived: &mut Option<Vec<Vec<Value>>>,
    tracker: &mut ErrTracker,
) {
    // Single-comparison filters over physical columns keep the whole
    // filter inside one typed loop over the selection vector.
    if derived.is_none() && tracker.is_empty() {
        if let [Instr::Bin(op, a, b)] = prog.instrs.as_slice() {
            if prog.result == Src::Reg(0) && is_cmp(*op) {
                let handled = match (*a, *b) {
                    (Src::Col(c), Src::Lit(l)) => {
                        filter_cmp(*op, batch.column(c), &prog.lits[l], sel, false)
                    }
                    (Src::Lit(l), Src::Col(c)) => {
                        filter_cmp(*op, batch.column(c), &prog.lits[l], sel, true)
                    }
                    _ => false,
                };
                if handled {
                    return;
                }
            }
        }
    }
    let vals = run_program(prog, batch, sel, derived.as_deref(), 0, tracker);
    let keep: Vec<bool> = sel
        .iter()
        .zip(&vals)
        .map(|(&lane, v)| !tracker.poisoned(lane) && truthy(v).is_true())
        .collect();
    retain_mask(sel, &keep);
    if let Some(cols) = derived {
        for col in cols.iter_mut() {
            retain_mask(col, &keep);
        }
    }
}

/// In-place selection-vector filter for `col <op> lit` — true when the
/// column/literal pair had a typed fast path.
fn filter_cmp(op: BinOp, col: &Column, lit: &Value, sel: &mut Vec<u32>, lit_is_lhs: bool) -> bool {
    match (col, lit) {
        (Column::Int { data, tags }, Value::Int(x)) => {
            sel.retain(|&lane| {
                let i = lane as usize;
                tags[i] == Presence::Present
                    && if lit_is_lhs {
                        int_cmp(op, *x, data[i])
                    } else {
                        int_cmp(op, data[i], *x)
                    }
            });
            true
        }
        (Column::Str { codes, dict, tags }, lit) => {
            let pass: Vec<bool> = dict
                .iter()
                .map(|d| {
                    let r = if lit_is_lhs {
                        eval_binop(op, lit, d)
                    } else {
                        eval_binop(op, d, lit)
                    };
                    matches!(r, Ok(ref v) if truthy(v).is_true())
                })
                .collect();
            sel.retain(|&lane| {
                let i = lane as usize;
                tags[i] == Presence::Present && pass[codes[i] as usize]
            });
            true
        }
        _ => false,
    }
}

/// Turn surviving lanes back into result rows (aligned with `sel`).
fn emit_rows(
    emit: &RowEmit,
    batch: &ColumnBatch,
    records: &[&Record],
    sel: &[u32],
    derived: &mut Option<Vec<Vec<Value>>>,
    stage: u32,
    tracker: &mut ErrTracker,
) -> Vec<Value> {
    match emit {
        RowEmit::Scanned => sel
            .iter()
            .map(|&lane| Value::Obj(records[lane as usize].clone()))
            .collect(),
        RowEmit::Derived(names) => {
            let Some(cols) = derived else {
                unreachable!("derived emit without a projection stage");
            };
            (0..sel.len())
                .map(|k| {
                    let mut rec = Record::with_capacity(names.len());
                    for (ci, name) in names.iter().enumerate() {
                        rec.insert(
                            name.clone(),
                            std::mem::replace(&mut cols[ci][k], Value::Null),
                        );
                    }
                    Value::Obj(rec)
                })
                .collect()
        }
        RowEmit::Value(prog) => run_program(prog, batch, sel, derived.as_deref(), stage, tracker),
    }
}

/// Run one batch of records through the pipeline into the morsel sink.
fn process_batch(vp: &VecPipeline, records: &[&Record], sink: &mut MorselSink<'_>) -> Result<()> {
    let batch = ColumnBatch::from_records(records, &vp.scan_fields);
    let mut sel: Vec<u32> = (0..records.len() as u32).collect();
    let mut derived: Option<Vec<Vec<Value>>> = None;
    let mut tracker = ErrTracker::default();

    for vs in &vp.stages {
        match vs {
            VecStage::Filter(prog) => {
                apply_filter(prog, &batch, &mut sel, &mut derived, &mut tracker)
            }
            VecStage::Project(progs) => {
                let cols: Vec<Vec<Value>> = progs
                    .iter()
                    .map(|p| run_program(p, &batch, &sel, derived.as_deref(), 0, &mut tracker))
                    .collect();
                derived = Some(cols);
                compact_poisoned(&mut sel, &mut derived, &tracker);
            }
        }
        if sel.is_empty() && tracker.is_empty() {
            return Ok(());
        }
    }

    match &vp.terminal {
        VecTerminal::Collect(emit) => {
            let rows = emit_rows(emit, &batch, records, &sel, &mut derived, 0, &mut tracker);
            if let Some(e) = tracker.first_err() {
                return Err(e);
            }
            for row in rows {
                sink.push(row)?;
            }
        }
        VecTerminal::Sort { emit, keys } => {
            let key_vals: Vec<Vec<Value>> = keys
                .iter()
                .enumerate()
                .map(|(ki, (p, _))| {
                    run_program(p, &batch, &sel, derived.as_deref(), ki as u32, &mut tracker)
                })
                .collect();
            let rows = emit_rows(
                emit,
                &batch,
                records,
                &sel,
                &mut derived,
                keys.len() as u32,
                &mut tracker,
            );
            if let Some(e) = tracker.first_err() {
                return Err(e);
            }
            let mut key_vals = key_vals;
            for (k, row) in rows.into_iter().enumerate() {
                let key = keys
                    .iter()
                    .zip(key_vals.iter_mut())
                    .map(|((_, desc), vals)| {
                        let v = OrdValue(std::mem::replace(&mut vals[k], Value::Null));
                        if *desc {
                            SortKey::Desc(v)
                        } else {
                            SortKey::Asc(v)
                        }
                    })
                    .collect();
                sink.push_keyed(key, row);
            }
        }
        VecTerminal::Agg { keys, args } => {
            fold_aggregates(keys, args, &batch, &sel, &derived, &mut tracker, sink)?;
        }
    }
    Ok(())
}

/// Fold surviving lanes into the aggregate sink, reproducing the serial
/// per-row error order: for each lane in scan order, group-key errors come
/// before any accumulator update, and the update of aggregate `j` runs
/// before the argument error of aggregate `j+1`.
#[allow(clippy::too_many_arguments)]
fn fold_aggregates(
    keys: &[ExprProgram],
    args: &[Option<ExprProgram>],
    batch: &ColumnBatch,
    sel: &[u32],
    derived: &Option<Vec<Vec<Value>>>,
    tracker: &mut ErrTracker,
    sink: &mut MorselSink<'_>,
) -> Result<()> {
    let nkeys = keys.len() as u32;
    let mut key_vals: Vec<Vec<Value>> = keys
        .iter()
        .enumerate()
        .map(|(ki, p)| run_program(p, batch, sel, derived.as_deref(), ki as u32, tracker))
        .collect();
    let arg_vals: Vec<Option<Vec<Value>>> = args
        .iter()
        .enumerate()
        .map(|(ai, p)| {
            p.as_ref().map(|p| {
                run_program(
                    p,
                    batch,
                    sel,
                    derived.as_deref(),
                    nkeys + ai as u32,
                    tracker,
                )
            })
        })
        .collect();

    for (k, &lane) in sel.iter().enumerate() {
        // Errors on earlier (already filtered-out) lanes fire before this
        // lane folds — the serial scan hit that row first.
        if let Some((pl, _, e)) = tracker.first() {
            if pl < lane {
                return Err(e.clone());
            }
        }
        let lane_poison = tracker.get(lane).map(|(s, e)| (s, e.clone()));
        if let Some((s, e)) = &lane_poison {
            if *s < nkeys {
                return Err(e.clone());
            }
        }
        let key: Vec<OrdValue> = key_vals
            .iter_mut()
            .map(|vals| OrdValue(std::mem::replace(&mut vals[k], Value::Null)))
            .collect();
        // An argument-program error at stage `nkeys + j` lets updates
        // 0..j run first: an earlier aggregate's update error (e.g. SUM
        // over a string) outranks a later aggregate's evaluation error,
        // exactly as the row loop interleaves them.
        let upto = match &lane_poison {
            Some((s, _)) => (*s - nkeys) as usize,
            None => args.len(),
        };
        let lane_args: Vec<Option<&Value>> = arg_vals
            .iter()
            .map(|vals| vals.as_ref().map(|v| &v[k]))
            .collect();
        sink.push_agg(key, &lane_args[..upto])?;
        if let Some((_, e)) = lane_poison {
            return Err(e);
        }
    }
    if let Some(e) = tracker.first_err() {
        return Err(e);
    }
    Ok(())
}

/// Scan `[lo, hi)` of the morsel domain (heap slots, or a chunk of the
/// materialized rid list) in `batch_rows`-sized batches, feeding each
/// through the pipeline into `sink`.
pub(super) fn run_range(
    table: &Table,
    rids: Option<&[RecordId]>,
    lo: usize,
    hi: usize,
    vp: &VecPipeline,
    batch_rows: usize,
    sink: &mut MorselSink<'_>,
) -> Result<()> {
    let step = batch_rows.max(1);
    let mut refs: Vec<&Record> = Vec::with_capacity(step.min(hi.saturating_sub(lo)));
    match rids {
        None => {
            let mut start = lo;
            while start < hi {
                let end = (start + step).min(hi);
                refs.clear();
                refs.extend(table.heap().scan_range(start, end).map(|(_, rec)| rec));
                process_batch(vp, &refs, sink)?;
                start = end;
            }
        }
        Some(rids) => {
            for chunk in rids[lo..hi].chunks(step) {
                refs.clear();
                for rid in chunk {
                    refs.push(
                        table
                            .get(*rid)
                            .ok_or_else(|| EngineError::exec("dangling index entry"))?,
                    );
                }
                process_batch(vp, &refs, sink)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::eval::eval;
    use polyframe_datamodel::record;

    fn rows() -> Vec<Record> {
        vec![
            record! {"a" => 1i64, "s" => "x", "d" => 1.5},
            record! {"a" => 2i64, "s" => "y", "n" => Value::Null},
            record! {"a" => Value::Null, "s" => "x"},
            record! {"s" => "z", "d" => 4.0},
            record! {"a" => 5i64},
        ]
    }

    /// Compile `expr`, run it over a batch, and compare every lane to the
    /// row evaluator.
    fn assert_program_matches_eval(expr: &Scalar) {
        let recs = rows();
        let refs: Vec<&Record> = recs.iter().collect();
        let mut c = Compiler {
            scan_fields: Vec::new(),
            derived: None,
        };
        let prog = c.compile_expr(expr).expect("compilable");
        let batch = ColumnBatch::from_records(&refs, &c.scan_fields);
        let sel: Vec<u32> = (0..refs.len() as u32).collect();
        let mut tracker = ErrTracker::default();
        let got = run_program(&prog, &batch, &sel, None, 0, &mut tracker);
        for (k, rec) in recs.iter().enumerate() {
            let row = Value::Obj(rec.clone());
            match eval(expr, &row) {
                Ok(v) => {
                    assert!(!tracker.poisoned(k as u32), "lane {k} wrongly poisoned");
                    assert_eq!(got[k], v, "lane {k} diverges for {expr:?}");
                }
                Err(e) => {
                    let (_, got_e) = tracker.get(k as u32).expect("lane poisoned");
                    assert_eq!(got_e.to_string(), e.to_string(), "lane {k} error");
                }
            }
        }
    }

    fn field(name: &str) -> Scalar {
        Scalar::Field(name.into())
    }

    fn lit(v: impl Into<Value>) -> Scalar {
        Scalar::Lit(v.into())
    }

    fn bin(op: BinOp, a: Scalar, b: Scalar) -> Scalar {
        Scalar::Bin(op, Box::new(a), Box::new(b))
    }

    #[test]
    fn programs_match_row_eval() {
        for expr in [
            bin(BinOp::Lt, field("a"), lit(3i64)),
            bin(BinOp::Eq, field("s"), lit("x")),
            bin(BinOp::Ne, lit("x"), field("s")),
            bin(BinOp::Add, field("a"), lit(10i64)),
            bin(BinOp::Add, field("a"), field("d")),
            bin(BinOp::Div, field("a"), lit(0i64)),
            Scalar::Is(Box::new(field("n")), IsKind::Null, false),
            Scalar::Is(Box::new(field("a")), IsKind::Missing, true),
            Scalar::Un(
                UnaryOp::Not,
                Box::new(bin(BinOp::Gt, field("a"), lit(1i64))),
            ),
            Scalar::Call(ScalarFunc::Upper, vec![field("s")]),
            bin(
                BinOp::And,
                bin(BinOp::Ge, field("a"), lit(1i64)),
                bin(BinOp::Eq, field("s"), lit("x")),
            ),
            // Errors on some lanes only (string minus int).
            bin(BinOp::Sub, field("s"), lit(1i64)),
        ] {
            assert_program_matches_eval(&expr);
        }
    }

    #[test]
    fn poisoned_lanes_report_lowest_lane_first() {
        let recs = rows();
        let refs: Vec<&Record> = recs.iter().collect();
        let mut c = Compiler {
            scan_fields: Vec::new(),
            derived: None,
        };
        // `s - 1` errors on every lane with a string.
        let prog = c
            .compile_expr(&bin(BinOp::Sub, field("s"), lit(1i64)))
            .unwrap();
        let batch = ColumnBatch::from_records(&refs, &c.scan_fields);
        let sel: Vec<u32> = (0..refs.len() as u32).collect();
        let mut tracker = ErrTracker::default();
        run_program(&prog, &batch, &sel, None, 0, &mut tracker);
        let (lane, _, _) = tracker.first().expect("errors recorded");
        assert_eq!(lane, 0, "lowest lane wins");
    }

    #[test]
    fn join_scoped_references_do_not_compile() {
        let mut c = Compiler {
            scan_fields: Vec::new(),
            derived: None,
        };
        assert!(c.compile_expr(&Scalar::Input).is_none());
        assert!(c
            .compile_expr(&Scalar::FieldOf("l".into(), "x".into()))
            .is_none());
        assert!(c.compile_expr(&Scalar::BindingRef("r".into())).is_none());
    }

    #[test]
    fn filter_fast_path_matches_generic() {
        let recs = rows();
        let refs: Vec<&Record> = recs.iter().collect();
        for expr in [
            bin(BinOp::Lt, field("a"), lit(3i64)),
            bin(BinOp::Gt, lit(3i64), field("a")),
            bin(BinOp::Eq, field("s"), lit("x")),
            bin(BinOp::Ne, field("s"), lit(1i64)),
        ] {
            let mut c = Compiler {
                scan_fields: Vec::new(),
                derived: None,
            };
            let prog = c.compile_expr(&expr).unwrap();
            let batch = ColumnBatch::from_records(&refs, &c.scan_fields);
            let mut fast: Vec<u32> = (0..refs.len() as u32).collect();
            let mut tracker = ErrTracker::default();
            apply_filter(&prog, &batch, &mut fast, &mut None, &mut tracker);
            // Reference: generic truthiness over the program output.
            let sel: Vec<u32> = (0..refs.len() as u32).collect();
            let mut t2 = ErrTracker::default();
            let vals = run_program(&prog, &batch, &sel, None, 0, &mut t2);
            let slow: Vec<u32> = sel
                .iter()
                .zip(&vals)
                .filter(|(_, v)| truthy(v).is_true())
                .map(|(&l, _)| l)
                .collect();
            assert_eq!(fast, slow, "filter divergence for {expr:?}");
        }
    }
}
