//! Vectorized batch execution: compiled expression programs over columnar
//! morsels.
//!
//! The morsel scheduler in [`super::parallel`] decomposes a plan into a
//! scan leaf, at most one join, a chain of row-local operators and one
//! blocking terminal. This module adds a second way to run that
//! decomposition: instead of cloning every scanned record into a [`Value`]
//! and walking the `Scalar` tree per row, a morsel is cut into
//! [`ColumnBatch`]es (typed column vectors + per-lane presence tags,
//! dictionary-encoded strings), and each `Scalar` tree is flattened once
//! per query into an [`ExprProgram`] — a linear register program whose
//! instructions run over a whole selection vector at a time.
//!
//! A join splits the batch into two coordinate spaces. Before the join,
//! programs index *lanes* (positions in the scanned batch). The join
//! probes its build table per lane and emits join *events* — one per
//! (probe row, build row) match, in the row path's emission order — and
//! everything downstream (filters, projections, the terminal) runs in
//! event space, reading the join's materialized output columns.
//!
//! Byte-identity with the row path is the contract, enforced three ways:
//!
//! * Every instruction reuses the *same* semantic helpers as the row
//!   evaluator (`eval_binop` / `eval_unop` / `eval_func` / `eval_is`), so
//!   a batch kernel can never disagree with `eval()` on a value. The fast
//!   kernels (integer compare/arithmetic, dictionary-memoized string
//!   compare, presence-tag `IS NULL`/`IS MISSING`, the fused
//!   filter+project pass, dictionary-code join probes) are only taken
//!   where they are provably equivalent.
//! * Errors are *poisoned per lane* (or per event) instead of raised
//!   mid-batch: each lane records the first error it hits in program
//!   order, poisoned lanes are skipped by later instructions, and the
//!   batch reports the error of the lowest poisoned lane — exactly the
//!   row the serial scan would have failed on. Under an early-exit
//!   `LIMIT` the batch instead replays rows and errors in lane order into
//!   the sink, which stops at whichever settles the limit first.
//! * Anything the compiler cannot express makes [`compile`] return the
//!   fallback cause and the caller falls back to the row path — the same
//!   whitelist discipline `parallel::analyze` applies to plans.

use super::aggregate::OrdValue;
use super::eval::{eval_binop, eval_func, eval_is, eval_unop, make_record, truthy};
use super::join::ValueHashTable;
use super::parallel::{JoinVariantSpec, MorselOp, MorselSink, ParallelPlan, SortKey, Terminal};
use crate::ast::{BinOp, IsKind, UnaryOp};
use crate::error::{EngineError, Result};
use crate::plan::logical::{AggArg, AggMode, ProjectSpec, Scalar, ScalarFunc};
use polyframe_datamodel::{Record, Value};
use polyframe_storage::{Column, ColumnBatch, Index, Presence, RecordId, Table};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Compile-time result: `Err` is the fallback cause reported in the trace.
type CompileResult<T> = std::result::Result<T, &'static str>;

/// Where an instruction operand comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    /// A scan column (`scan_fields[i]`) or, after a projection stage or a
    /// join, a derived column of the current environment.
    Col(usize),
    /// A literal from the program's literal pool.
    Lit(usize),
    /// The output of instruction `i`.
    Reg(usize),
}

/// One instruction of a flattened expression; instruction `i` writes
/// register `i`.
#[derive(Debug, Clone)]
enum Instr {
    Un(UnaryOp, Src),
    Bin(BinOp, Src, Src),
    /// All arguments are evaluated (for their errors), the first is used —
    /// the row evaluator's convention.
    Call(ScalarFunc, Vec<Src>),
    Is(Src, IsKind, bool),
    /// `operand.get_path(field)` — field navigation into a row-valued
    /// column (join output rows). Never errors.
    Path(Src, String),
}

/// A `Scalar` tree flattened into a linear register program.
#[derive(Debug, Clone)]
struct ExprProgram {
    instrs: Vec<Instr>,
    lits: Vec<Value>,
    result: Src,
}

/// One row-local stage of a vectorized pipeline.
enum VecStage {
    Filter(ExprProgram),
    /// Output column names live in the compiler environment (and, for the
    /// final projection, in [`RowEmit::Derived`]); the stage itself only
    /// needs the programs.
    Project(Vec<ExprProgram>),
    /// A filter immediately followed by a projection, fused into one
    /// select-and-gather pass over the batch (no intermediate selection
    /// materialization when the typed fast path applies).
    Fused {
        pred: ExprProgram,
        progs: Vec<ExprProgram>,
    },
}

/// How surviving lanes turn back into result rows.
enum RowEmit {
    /// No projection ran: the row is the scanned record.
    Scanned,
    /// The last projection's derived columns, zipped with their names.
    Derived(Vec<String>),
    /// The row *is* derived column `i` (join pair / merged-star output).
    Col(usize),
    /// `SELECT VALUE expr`: the row *is* the program's result.
    Value(ExprProgram),
}

/// The compiled form of the pipeline's blocking terminal.
enum VecTerminal {
    Collect(RowEmit),
    Sort {
        emit: RowEmit,
        keys: Vec<(ExprProgram, bool)>,
    },
    /// `args[i] == None` is `COUNT(*)`. In `Final` aggregate mode every
    /// argument program fetches the serialized partial state
    /// (`Field(agg.name)`) instead of the original argument expression.
    Agg {
        keys: Vec<ExprProgram>,
        args: Vec<Option<ExprProgram>>,
    },
}

/// One output column the join materializes per emitted event.
#[derive(Debug, Clone, PartialEq)]
enum JoinCol {
    /// A field of the probe record, read straight from scan column `i`.
    ProbeField(usize),
    /// The whole probe record as a row value.
    ProbeRow,
    /// The matched build row (or `Null` on a left-join miss).
    BuildRow,
    /// A field of the build row.
    BuildField(String),
    /// `MergeStars([probe, build])`: probe fields overlaid with build
    /// fields, exactly like `project_row`.
    Merged,
    /// One field of the merged record, resolved lazily: the build row's
    /// value when it has the field, the probe's scan column otherwise —
    /// the overlay semantics of `Merged` without materializing the full
    /// record per event.
    MergedField { field: String, probe_col: usize },
    /// The join pair record `{probe_binding: probe, build_binding: build}`
    /// — the row the row-path join emits.
    Pair,
}

/// The compiled join step: key program over probe lanes, plus the output
/// columns downstream programs read.
struct VecJoin {
    key: ExprProgram,
    cols: Vec<JoinCol>,
    /// Left outer join: a probe lane with no match emits one event with a
    /// `Null` build row.
    left: bool,
    /// The pipeline passed through `MergeStars`: every event must have a
    /// mergeable build side (record or unknown), even when no program
    /// materializes the merged record itself.
    merged: bool,
    probe_binding: String,
    build_binding: String,
}

/// The materialized non-probe side of a join, built once per query by the
/// coordinator (`parallel::build_join_runtime`).
pub(super) enum JoinRuntime<'q> {
    /// Hash join: build rows keyed by the build key expression, in the row
    /// path's per-key insertion order.
    Hash {
        table: ValueHashTable,
        rows: BuildRows<'q>,
    },
    /// Index nested-loop join: the inner table and the index probed per
    /// outer row.
    IndexNl { table: &'q Table, index: &'q Index },
}

/// Hash-join build rows: owned values when the build side runs an
/// arbitrary pipeline, zero-copy heap references when it is a bare scan
/// (the dominant case — a whole-table build otherwise clones every
/// record just to park it in the join table).
pub(super) enum BuildRows<'q> {
    Owned(Vec<Value>),
    Records(Vec<&'q Record>),
}

impl BuildRows<'_> {
    fn get(&self, i: u32) -> BuildRef<'_> {
        match self {
            BuildRows::Owned(v) => BuildRef::Val(&v[i as usize]),
            BuildRows::Records(r) => BuildRef::Rec(r[i as usize]),
        }
    }
}

/// One build row as seen by event emission: a value, or a record still
/// living in the dataset heap.
#[derive(Clone, Copy)]
enum BuildRef<'a> {
    Val(&'a Value),
    Rec(&'a Record),
}

impl<'a> BuildRef<'a> {
    /// The build binding's value for the output pair / whole-binding
    /// reads. The record arm materializes here — and only here.
    fn to_value(self) -> Value {
        match self {
            BuildRef::Val(v) => v.clone(),
            BuildRef::Rec(r) => Value::Obj(r.clone()),
        }
    }

    /// `build.get_path(f)` (single-segment field lookup, `Missing` when
    /// absent or non-record), with a layout hint for same-table rows.
    fn field(self, f: &str, hint: &mut usize) -> Option<&'a Value> {
        match self {
            BuildRef::Val(Value::Obj(r)) => r.get_hinted(f, hint),
            BuildRef::Val(_) => None,
            BuildRef::Rec(r) => r.get_hinted(f, hint),
        }
    }

    /// True when `MergeStars` would reject this build side (any value
    /// that is neither a record nor `Null`/`Missing`).
    fn unmergeable(self) -> bool {
        match self {
            BuildRef::Val(v) => !matches!(v, Value::Obj(_) | Value::Null | Value::Missing),
            BuildRef::Rec(_) => false,
        }
    }

    fn type_name(self) -> &'static str {
        match self {
            BuildRef::Val(v) => v.type_name(),
            BuildRef::Rec(_) => "object",
        }
    }
}

/// A fully compiled vectorized pipeline: which scan fields to transpose
/// into columns, probe-side filters, the join, the post-join stages and
/// the terminal.
pub(super) struct VecPipeline {
    scan_fields: Vec<String>,
    /// Probe-side filters (lane space, before the join).
    pre_stages: Vec<VecStage>,
    join: Option<VecJoin>,
    stages: Vec<VecStage>,
    terminal: VecTerminal,
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// The column environment a program compiles against.
enum Env {
    /// Physical scan columns (`scan_fields`).
    Scan,
    /// The output columns of the last projection stage.
    Derived(Vec<String>),
    /// Join output: references resolve against the two bindings and
    /// materialize as join output columns.
    Join { probe: String, build: String },
    /// After `MergeStars`: the row is the merged probe+build record, but
    /// field references resolve lazily through [`JoinCol::MergedField`]
    /// so the record itself only materializes when something needs it
    /// whole.
    Merged,
}

struct Compiler {
    scan_fields: Vec<String>,
    env: Env,
    join_cols: Vec<JoinCol>,
}

impl Compiler {
    fn scan() -> Compiler {
        Compiler {
            scan_fields: Vec::new(),
            env: Env::Scan,
            join_cols: Vec::new(),
        }
    }

    /// Index of scan column `field`, registering it on first use.
    fn scan_col(&mut self, field: &str) -> usize {
        match self.scan_fields.iter().position(|n| n == field) {
            Some(i) => i,
            None => {
                self.scan_fields.push(field.to_string());
                self.scan_fields.len() - 1
            }
        }
    }

    /// Index of join output column `col`, registering it on first use.
    fn join_col(&mut self, col: JoinCol) -> usize {
        match self.join_cols.iter().position(|c| *c == col) {
            Some(i) => i,
            None => {
                self.join_cols.push(col);
                self.join_cols.len() - 1
            }
        }
    }

    /// Which join side `name` references (`true` = probe); only meaningful
    /// in the join environment.
    fn join_side(&self, name: &str) -> Option<bool> {
        match &self.env {
            Env::Join { probe, build } => {
                if name == probe.as_str() {
                    Some(true)
                } else if name == build.as_str() {
                    Some(false)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// `Field(f)` / `BindingRef(f)` — both evaluate as `row.get_path(f)`.
    fn field_src(&mut self, f: &str, lits: &mut Vec<Value>) -> CompileResult<Src> {
        match &self.env {
            Env::Scan => {}
            // Duplicate output names resolve to the *last* occurrence —
            // record insertion overwrites, so that is the value a field
            // lookup on the projected row would see.
            Env::Derived(names) => {
                return Ok(match names.iter().rposition(|n| n == f) {
                    Some(i) => Src::Col(i),
                    None => push_lit(lits, Value::Missing),
                })
            }
            // A field of the merged record is the build row's value when
            // the build has it, the probe's otherwise — resolved per
            // event without materializing the whole record.
            Env::Merged => {
                let probe_col = self.scan_col(f);
                return Ok(Src::Col(self.join_col(JoinCol::MergedField {
                    field: f.to_string(),
                    probe_col,
                })));
            }
            // A join row is `{probe: .., build: ..}`: a field lookup hits
            // one of the two bindings or Missing.
            Env::Join { .. } => {
                return Ok(match self.join_side(f) {
                    Some(true) => Src::Col(self.join_col(JoinCol::ProbeRow)),
                    Some(false) => Src::Col(self.join_col(JoinCol::BuildRow)),
                    None => push_lit(lits, Value::Missing),
                })
            }
        }
        Ok(Src::Col(self.scan_col(f)))
    }

    /// `FieldOf(b, f)` — `row.get_path(b).get_path(f)`.
    fn field_of_src(
        &mut self,
        b: &str,
        f: &str,
        instrs: &mut Vec<Instr>,
        lits: &mut Vec<Value>,
    ) -> CompileResult<Src> {
        if matches!(self.env, Env::Merged) {
            // `merged.get_path(b).get_path(f)`: the binding lookup is a
            // lazy merged field, the inner navigation a Path instruction.
            let base = self.field_src(b, lits)?;
            instrs.push(Instr::Path(base, f.to_string()));
            return Ok(Src::Reg(instrs.len() - 1));
        }
        if matches!(self.env, Env::Join { .. }) {
            return Ok(match self.join_side(b) {
                // Probe rows are scanned records, so a probe field *is* a
                // scan column — no record materialization at all.
                Some(true) => {
                    let ci = self.scan_col(f);
                    Src::Col(self.join_col(JoinCol::ProbeField(ci)))
                }
                Some(false) => Src::Col(self.join_col(JoinCol::BuildField(f.to_string()))),
                None => push_lit(lits, Value::Missing),
            });
        }
        Err("expr")
    }

    /// `Input` — the whole current row.
    fn input_src(&mut self) -> CompileResult<Src> {
        match self.env {
            Env::Join { .. } => Ok(Src::Col(self.join_col(JoinCol::Pair))),
            Env::Merged => Ok(Src::Col(self.join_col(JoinCol::Merged))),
            _ => Err("expr"),
        }
    }

    fn compile_expr(&mut self, scalar: &Scalar) -> CompileResult<ExprProgram> {
        let mut instrs = Vec::new();
        let mut lits = Vec::new();
        let result = self.compile_into(scalar, &mut instrs, &mut lits)?;
        Ok(ExprProgram {
            instrs,
            lits,
            result,
        })
    }

    /// Postorder flattening: operands compile before their operator, which
    /// reproduces the row evaluator's evaluation (and therefore error)
    /// order — `eval_binop` never short-circuits, so a linear program is
    /// exact.
    fn compile_into(
        &mut self,
        scalar: &Scalar,
        instrs: &mut Vec<Instr>,
        lits: &mut Vec<Value>,
    ) -> CompileResult<Src> {
        Ok(match scalar {
            // `BindingRef(b)` evaluates exactly like `Field(b)` (both are
            // `row.get_path`), so they share one resolution.
            Scalar::Field(f) | Scalar::BindingRef(f) => self.field_src(f, lits)?,
            Scalar::FieldOf(b, f) => self.field_of_src(b, f, instrs, lits)?,
            Scalar::Input => self.input_src()?,
            Scalar::Lit(v) => push_lit(lits, v.clone()),
            Scalar::Un(op, a) => {
                let a = self.compile_into(a, instrs, lits)?;
                instrs.push(Instr::Un(*op, a));
                Src::Reg(instrs.len() - 1)
            }
            Scalar::Bin(op, a, b) => {
                let a = self.compile_into(a, instrs, lits)?;
                let b = self.compile_into(b, instrs, lits)?;
                instrs.push(Instr::Bin(*op, a, b));
                Src::Reg(instrs.len() - 1)
            }
            Scalar::Call(func, args) => {
                let srcs = args
                    .iter()
                    .map(|a| self.compile_into(a, instrs, lits))
                    .collect::<CompileResult<Vec<Src>>>()?;
                instrs.push(Instr::Call(*func, srcs));
                Src::Reg(instrs.len() - 1)
            }
            Scalar::Is(a, kind, negated) => {
                let a = self.compile_into(a, instrs, lits)?;
                instrs.push(Instr::Is(a, *kind, *negated));
                Src::Reg(instrs.len() - 1)
            }
        })
    }
}

fn push_lit(lits: &mut Vec<Value>, v: Value) -> Src {
    lits.push(v);
    Src::Lit(lits.len() - 1)
}

/// How the pipeline's surviving rows materialize, given the final
/// environment.
fn row_emit(c: &mut Compiler, value_emit: Option<ExprProgram>) -> RowEmit {
    if let Some(prog) = value_emit {
        return RowEmit::Value(prog);
    }
    match c.env {
        Env::Join { .. } => {
            let pi = c.join_col(JoinCol::Pair);
            return RowEmit::Col(pi);
        }
        // Emitting the merged record itself is the one consumer that
        // genuinely needs it materialized.
        Env::Merged => {
            let mi = c.join_col(JoinCol::Merged);
            return RowEmit::Col(mi);
        }
        _ => {}
    }
    match &c.env {
        Env::Scan => RowEmit::Scanned,
        Env::Derived(names) => RowEmit::Derived(names.clone()),
        Env::Join { .. } | Env::Merged => unreachable!("handled above"),
    }
}

/// Peephole-fuse each filter with an immediately following projection into
/// one [`VecStage::Fused`] pass.
fn fuse_stages(stages: Vec<VecStage>) -> Vec<VecStage> {
    let mut out: Vec<VecStage> = Vec::with_capacity(stages.len());
    for stage in stages {
        match stage {
            VecStage::Project(progs) if matches!(out.last(), Some(VecStage::Filter(_))) => {
                let Some(VecStage::Filter(pred)) = out.pop() else {
                    unreachable!("just matched a filter");
                };
                out.push(VecStage::Fused { pred, progs });
            }
            other => out.push(other),
        }
    }
    out
}

/// Compile a parallel-safe plan decomposition into a vectorized pipeline;
/// `Err` carries the fallback cause for the trace.
pub(super) fn compile(pp: &ParallelPlan<'_>) -> CompileResult<VecPipeline> {
    let mut c = Compiler::scan();
    let mut pre_stages = Vec::new();
    let mut key_prog = None;
    if let Some(spec) = &pp.join {
        // Probe-side filters run in lane space, before the join; the key
        // program compiles against the scan columns too.
        for op in &spec.probe_ops {
            match op {
                MorselOp::Filter(pred) => pre_stages.push(VecStage::Filter(c.compile_expr(pred)?)),
                // `probe_side` only admits filters; defensive.
                MorselOp::Project(_) => return Err("join_probe"),
            }
        }
        key_prog = Some(c.compile_expr(spec.probe_key)?);
        c.env = Env::Join {
            probe: spec.probe_binding.to_string(),
            build: spec.build_binding.to_string(),
        };
    }

    let mut stages = Vec::new();
    let mut value_emit: Option<ExprProgram> = None;
    // Latched when the pipeline passes through `MergeStars`: the row path
    // errors there on any non-record build side, so every join event must
    // check mergeability even if a later projection replaces the env.
    let mut merged = false;
    for op in &pp.ops {
        if value_emit.is_some() {
            // Operators above a `SELECT VALUE` see scalar rows, not
            // records; the row path handles those.
            return Err("select_value");
        }
        match op {
            MorselOp::Filter(pred) => stages.push(VecStage::Filter(c.compile_expr(pred)?)),
            MorselOp::Project(ProjectSpec::Columns(cols)) => {
                let mut names = Vec::with_capacity(cols.len());
                let mut progs = Vec::with_capacity(cols.len());
                for (name, expr) in cols {
                    progs.push(c.compile_expr(expr)?);
                    names.push(name.clone());
                }
                stages.push(VecStage::Project(progs));
                c.env = Env::Derived(names);
            }
            MorselOp::Project(ProjectSpec::Value(expr)) => value_emit = Some(c.compile_expr(expr)?),
            MorselOp::Project(ProjectSpec::MergeStars(bindings)) => {
                // Supported exactly at the join: `SELECT l.*, r.*` over
                // the pair. Field references downstream resolve lazily;
                // the merged record only materializes if emitted whole.
                let ok = match &c.env {
                    Env::Join { probe, build } => {
                        bindings.len() == 2 && bindings[0] == *probe && bindings[1] == *build
                    }
                    _ => false,
                };
                if !ok {
                    return Err("merge_stars");
                }
                merged = true;
                c.env = Env::Merged;
            }
        }
    }

    let terminal = match &pp.terminal {
        Terminal::Collect => VecTerminal::Collect(row_emit(&mut c, value_emit)),
        Terminal::Sort { keys, .. } => {
            if value_emit.is_some() {
                return Err("select_value");
            }
            let emit = row_emit(&mut c, None);
            let keys = keys
                .iter()
                .map(|(expr, desc)| c.compile_expr(expr).map(|p| (p, *desc)))
                .collect::<CompileResult<Vec<_>>>()?;
            VecTerminal::Sort { emit, keys }
        }
        Terminal::Aggregate {
            group_by,
            aggs,
            mode,
        } => {
            if value_emit.is_some() {
                return Err("select_value");
            }
            let keys = group_by
                .iter()
                .map(|(_, expr)| c.compile_expr(expr))
                .collect::<CompileResult<Vec<_>>>()?;
            let mut args = Vec::with_capacity(aggs.len());
            for agg in aggs.iter() {
                args.push(match (*mode, &agg.arg) {
                    // Final mode folds serialized partial states, fetched
                    // by output name — even for `COUNT(*)`.
                    (AggMode::Final, _) => {
                        let partial = Scalar::Field(agg.name.clone());
                        Some(c.compile_expr(&partial)?)
                    }
                    (_, AggArg::Star) => None,
                    (_, AggArg::Expr(expr)) => Some(c.compile_expr(expr)?),
                });
            }
            VecTerminal::Agg { keys, args }
        }
    };

    let join = match (&pp.join, key_prog) {
        (Some(spec), Some(key)) => Some(VecJoin {
            key,
            cols: std::mem::take(&mut c.join_cols),
            left: matches!(spec.variant, JoinVariantSpec::Hash { left: true, .. }),
            merged,
            probe_binding: spec.probe_binding.to_string(),
            build_binding: spec.build_binding.to_string(),
        }),
        _ => None,
    };
    Ok(VecPipeline {
        scan_fields: c.scan_fields,
        pre_stages,
        join,
        stages: fuse_stages(stages),
        terminal,
    })
}

// ---------------------------------------------------------------------------
// Error poisoning
// ---------------------------------------------------------------------------

/// Per-lane error state of one batch. A lane keeps the first error it hits
/// (programs run in stage order, instructions in program order, so
/// `or_insert` preserves "first in serial evaluation order"), and the
/// batch fails with the error of the *lowest* poisoned lane — the row the
/// serial scan would have failed on. After a join the tracker is swapped
/// into event space (see [`run_join`]).
#[derive(Default)]
struct ErrTracker {
    /// lane -> (terminal stage index, error).
    errs: BTreeMap<u32, (u32, EngineError)>,
}

impl ErrTracker {
    fn poison(&mut self, lane: u32, stage: u32, err: EngineError) {
        self.errs.entry(lane).or_insert((stage, err));
    }

    fn poisoned(&self, lane: u32) -> bool {
        !self.errs.is_empty() && self.errs.contains_key(&lane)
    }

    fn is_empty(&self) -> bool {
        self.errs.is_empty()
    }

    /// The error of the lowest poisoned lane.
    fn first_err(&self) -> Option<EngineError> {
        self.errs.values().next().map(|(_, e)| e.clone())
    }

    /// Lowest poisoned lane with its terminal stage.
    fn first(&self) -> Option<(u32, u32, &EngineError)> {
        self.errs.iter().next().map(|(l, (s, e))| (*l, *s, e))
    }

    fn get(&self, lane: u32) -> Option<(u32, &EngineError)> {
        self.errs.get(&lane).map(|(s, e)| (*s, e))
    }
}

// ---------------------------------------------------------------------------
// Program execution
// ---------------------------------------------------------------------------

fn operand<'a>(
    src: Src,
    k: usize,
    lane: u32,
    batch: &'a ColumnBatch,
    derived: Option<&'a [Vec<Value>]>,
    lits: &'a [Value],
    regs: &'a [Vec<Value>],
) -> Cow<'a, Value> {
    match src {
        Src::Col(c) => match derived {
            Some(cols) => Cow::Borrowed(&cols[c][k]),
            None => batch.column(c).value_at(lane as usize),
        },
        Src::Lit(l) => Cow::Borrowed(&lits[l]),
        Src::Reg(r) => Cow::Borrowed(&regs[r][k]),
    }
}

/// Run one program over the selected lanes; the result vector is aligned
/// with `sel`. Lanes that error are poisoned (placeholder `Null` in the
/// output) rather than aborting the batch.
fn run_program(
    prog: &ExprProgram,
    batch: &ColumnBatch,
    sel: &[u32],
    derived: Option<&[Vec<Value>]>,
    stage: u32,
    tracker: &mut ErrTracker,
) -> Vec<Value> {
    let mut regs: Vec<Vec<Value>> = Vec::with_capacity(prog.instrs.len());
    for instr in &prog.instrs {
        let out = match kernel(instr, batch, sel, derived, &prog.lits) {
            Some(v) => v,
            None => generic_instr(
                instr, batch, sel, derived, &prog.lits, &regs, stage, tracker,
            ),
        };
        regs.push(out);
    }
    match prog.result {
        Src::Reg(r) => {
            // Postorder flattening makes the root the last instruction.
            debug_assert_eq!(r + 1, regs.len());
            regs.pop().unwrap_or_default()
        }
        Src::Col(c) => sel
            .iter()
            .enumerate()
            .map(|(k, &lane)| {
                operand(Src::Col(c), k, lane, batch, derived, &prog.lits, &regs).into_owned()
            })
            .collect(),
        Src::Lit(l) => vec![prog.lits[l].clone(); sel.len()],
    }
}

/// Generic per-lane execution: exact row semantics via the shared `eval_*`
/// helpers, skipping already-poisoned lanes.
#[allow(clippy::too_many_arguments)]
fn generic_instr(
    instr: &Instr,
    batch: &ColumnBatch,
    sel: &[u32],
    derived: Option<&[Vec<Value>]>,
    lits: &[Value],
    regs: &[Vec<Value>],
    stage: u32,
    tracker: &mut ErrTracker,
) -> Vec<Value> {
    let mut out = Vec::with_capacity(sel.len());
    for (k, &lane) in sel.iter().enumerate() {
        if tracker.poisoned(lane) {
            out.push(Value::Null);
            continue;
        }
        let r = match instr {
            Instr::Un(op, a) => {
                let v = operand(*a, k, lane, batch, derived, lits, regs);
                eval_unop(*op, &v)
            }
            Instr::Bin(op, a, b) => {
                let av = operand(*a, k, lane, batch, derived, lits, regs);
                let bv = operand(*b, k, lane, batch, derived, lits, regs);
                eval_binop(*op, &av, &bv)
            }
            Instr::Call(func, args) => {
                let first = args
                    .first()
                    .map(|s| operand(*s, k, lane, batch, derived, lits, regs));
                eval_func(*func, first.as_deref())
            }
            Instr::Is(a, kind, negated) => {
                let v = operand(*a, k, lane, batch, derived, lits, regs);
                Ok(eval_is(&v, *kind, *negated))
            }
            Instr::Path(a, f) => {
                let v = operand(*a, k, lane, batch, derived, lits, regs);
                Ok(v.get_path(f))
            }
        };
        match r {
            Ok(v) => out.push(v),
            Err(e) => {
                tracker.poison(lane, stage, e);
                out.push(Value::Null);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Batch kernels
// ---------------------------------------------------------------------------

fn is_cmp(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    )
}

fn int_cmp(op: BinOp, a: i64, b: i64) -> bool {
    match op {
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        _ => unreachable!("comparison operators only"),
    }
}

/// The `is_true` *mask* of a float comparison. Plain IEEE operators are
/// exactly `eval_binop`'s truth set here: `sql_compare` on mixed numerics
/// is `as_f64().partial_cmp`, a NaN operand yields `None` → `Eq` false /
/// `Ne` true / orderings Unknown — and IEEE gives false/true/false for
/// those same cases.
fn f64_cmp_mask(op: BinOp, a: f64, b: f64) -> bool {
    match op {
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        _ => unreachable!("comparison operators only"),
    }
}

/// The *value* of a float comparison: unlike the mask, an incomparable
/// pair (NaN) is `Null` for the ordering operators, decidable for
/// equality — `sql_compare`'s `None` arm exactly.
fn f64_cmp_value(op: BinOp, a: f64, b: f64) -> Value {
    use std::cmp::Ordering;
    match a.partial_cmp(&b) {
        Some(o) => Value::Bool(match op {
            BinOp::Eq => o == Ordering::Equal,
            BinOp::Ne => o != Ordering::Equal,
            BinOp::Lt => o == Ordering::Less,
            BinOp::Le => o != Ordering::Greater,
            BinOp::Gt => o == Ordering::Greater,
            BinOp::Ge => o != Ordering::Less,
            _ => unreachable!("comparison operators only"),
        }),
        None => match op {
            BinOp::Eq => Value::Bool(false),
            BinOp::Ne => Value::Bool(true),
            _ => Value::Null,
        },
    }
}

/// A numeric literal as `f64`, for the float-promoted kernels (the same
/// promotion `arith`/`sql_compare` apply to mixed numeric operands).
fn lit_f64(lit: &Value) -> Option<f64> {
    match lit {
        Value::Int(i) => Some(*i as f64),
        Value::Double(d) => Some(*d),
        _ => None,
    }
}

/// Column-vs-literal fast paths, taken only where they are provably
/// equivalent to `eval_binop`/`eval_is` (and can never error, so they need
/// no tracker). `None` falls back to the generic per-lane loop.
fn kernel(
    instr: &Instr,
    batch: &ColumnBatch,
    sel: &[u32],
    derived: Option<&[Vec<Value>]>,
    lits: &[Value],
) -> Option<Vec<Value>> {
    if derived.is_some() {
        return None;
    }
    match *instr {
        Instr::Bin(op, Src::Col(c), Src::Lit(l)) => bin_col_lit(
            op,
            batch.column(c),
            &lits[l],
            sel,
            false,
            batch.all_valid(c),
        ),
        Instr::Bin(op, Src::Lit(l), Src::Col(c)) => {
            bin_col_lit(op, batch.column(c), &lits[l], sel, true, batch.all_valid(c))
        }
        // Column-vs-column typed loops, only when *both* sides are
        // all-valid (so unknown-propagation never applies and the loop
        // body is pure arithmetic).
        Instr::Bin(op, Src::Col(a), Src::Col(b)) if batch.all_valid(a) && batch.all_valid(b) => {
            bin_col_col(op, batch.column(a), batch.column(b), sel)
        }
        Instr::Is(Src::Col(c), kind, negated) => {
            let col = batch.column(c);
            Some(
                sel.iter()
                    .map(|&lane| {
                        let hit = match (kind, col.presence_at(lane as usize)) {
                            (IsKind::Missing, p) => p == Presence::Missing,
                            (IsKind::Null | IsKind::Unknown, p) => p != Presence::Present,
                        };
                        Value::Bool(hit != negated)
                    })
                    .collect(),
            )
        }
        _ => None,
    }
}

/// Wrap one per-lane closure in the presence dispatch: the `all_valid`
/// fast path runs it branch-free over every selected lane (no tag loads
/// at all), the mixed path falls back lane-wise on the presence tags.
fn presence_map(
    sel: &[u32],
    tags: &[Presence],
    all_valid: bool,
    mut f: impl FnMut(usize) -> Value,
) -> Vec<Value> {
    if all_valid {
        sel.iter().map(|&lane| f(lane as usize)).collect()
    } else {
        sel.iter()
            .map(|&lane| {
                let i = lane as usize;
                match tags[i] {
                    Presence::Present => f(i),
                    Presence::Null => Value::Null,
                    Presence::Missing => Value::Missing,
                }
            })
            .collect()
    }
}

fn bin_col_lit(
    op: BinOp,
    col: &Column,
    lit: &Value,
    sel: &[u32],
    lit_is_lhs: bool,
    all_valid: bool,
) -> Option<Vec<Value>> {
    match (col, lit) {
        (Column::Int { data, tags }, Value::Int(x)) if is_cmp(op) => {
            Some(presence_map(sel, tags, all_valid, |i| {
                Value::Bool(if lit_is_lhs {
                    int_cmp(op, *x, data[i])
                } else {
                    int_cmp(op, data[i], *x)
                })
            }))
        }
        (Column::Int { data, tags }, Value::Int(x))
            if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul) =>
        {
            Some(presence_map(sel, tags, all_valid, |i| {
                let (a, b) = if lit_is_lhs {
                    (*x, data[i])
                } else {
                    (data[i], *x)
                };
                Value::Int(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    _ => a.wrapping_mul(b),
                })
            }))
        }
        // Float comparisons: a double column against any numeric literal,
        // or an int column against a double literal — the mixed-numeric
        // promotion `sql_compare` applies, lane by lane.
        (Column::Double { data, tags }, _) if is_cmp(op) && lit_f64(lit).is_some() => {
            let x = lit_f64(lit)?;
            Some(presence_map(sel, tags, all_valid, |i| {
                if lit_is_lhs {
                    f64_cmp_value(op, x, data[i])
                } else {
                    f64_cmp_value(op, data[i], x)
                }
            }))
        }
        (Column::Int { data, tags }, Value::Double(x)) if is_cmp(op) => {
            Some(presence_map(sel, tags, all_valid, |i| {
                if lit_is_lhs {
                    f64_cmp_value(op, *x, data[i] as f64)
                } else {
                    f64_cmp_value(op, data[i] as f64, *x)
                }
            }))
        }
        // Float arithmetic (`arith`'s mixed-numeric arm): always `Double`,
        // never errors. Div/Mod stay on the generic path (zero divisors
        // produce `Null`, a per-lane decision the typed loop would buy
        // nothing on).
        (Column::Double { data, tags }, _)
            if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul) && lit_f64(lit).is_some() =>
        {
            let x = lit_f64(lit)?;
            Some(presence_map(sel, tags, all_valid, |i| {
                let (a, b) = if lit_is_lhs {
                    (x, data[i])
                } else {
                    (data[i], x)
                };
                Value::Double(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    _ => a * b,
                })
            }))
        }
        (Column::Int { data, tags }, Value::Double(x))
            if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul) =>
        {
            Some(presence_map(sel, tags, all_valid, |i| {
                let (a, b) = if lit_is_lhs {
                    (*x, data[i] as f64)
                } else {
                    (data[i] as f64, *x)
                };
                Value::Double(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    _ => a * b,
                })
            }))
        }
        // Dictionary-encoded strings: evaluate the comparison once per
        // distinct value instead of once per row. Comparisons never error.
        (Column::Str { codes, dict, tags }, lit) if is_cmp(op) => {
            let side = |d: &Value| {
                if lit_is_lhs {
                    eval_binop(op, lit, d)
                } else {
                    eval_binop(op, d, lit)
                }
            };
            let memo: Vec<Value> = dict.iter().map(&side).collect::<Result<_>>().ok()?;
            let null_v = side(&Value::Null).ok()?;
            let miss_v = side(&Value::Missing).ok()?;
            Some(
                sel.iter()
                    .map(|&lane| {
                        let i = lane as usize;
                        match tags[i] {
                            Presence::Present => memo[codes[i] as usize].clone(),
                            Presence::Null => null_v.clone(),
                            Presence::Missing => miss_v.clone(),
                        }
                    })
                    .collect(),
            )
        }
        _ => None,
    }
}

/// Column-vs-column typed loops. Callers guarantee both columns are
/// all-valid, so no presence dispatch (or unknown propagation) is needed
/// and the loops are branch-free over the raw vectors.
fn bin_col_col(op: BinOp, a: &Column, b: &Column, sel: &[u32]) -> Option<Vec<Value>> {
    match (a, b) {
        (Column::Int { data: da, .. }, Column::Int { data: db, .. }) if is_cmp(op) => Some(
            sel.iter()
                .map(|&lane| {
                    let i = lane as usize;
                    Value::Bool(int_cmp(op, da[i], db[i]))
                })
                .collect(),
        ),
        (Column::Int { data: da, .. }, Column::Int { data: db, .. })
            if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul) =>
        {
            Some(
                sel.iter()
                    .map(|&lane| {
                        let i = lane as usize;
                        Value::Int(match op {
                            BinOp::Add => da[i].wrapping_add(db[i]),
                            BinOp::Sub => da[i].wrapping_sub(db[i]),
                            _ => da[i].wrapping_mul(db[i]),
                        })
                    })
                    .collect(),
            )
        }
        (Column::Double { data: da, .. }, Column::Double { data: db, .. }) if is_cmp(op) => Some(
            sel.iter()
                .map(|&lane| {
                    let i = lane as usize;
                    f64_cmp_value(op, da[i], db[i])
                })
                .collect(),
        ),
        (Column::Double { data: da, .. }, Column::Double { data: db, .. })
            if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul) =>
        {
            Some(
                sel.iter()
                    .map(|&lane| {
                        let i = lane as usize;
                        Value::Double(match op {
                            BinOp::Add => da[i] + db[i],
                            BinOp::Sub => da[i] - db[i],
                            _ => da[i] * db[i],
                        })
                    })
                    .collect(),
            )
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Kernel specialization
// ---------------------------------------------------------------------------

/// A filter program statically recognized as a tree of column/literal
/// comparisons and `IS` checks combined with `AND`/`OR` — the shape the
/// specializer fuses into single selection-mask passes. Soundness: every
/// leaf is error-free (comparisons and `IS` never fail), Kleene `AND` is
/// `True` iff both operands are `True` and `OR` iff either is, and a
/// filter keeps a lane only on definite `True` — so bitwise and/or on the
/// per-leaf `is_true` masks is exact, and `Unknown` never needs to be
/// represented.
#[derive(Clone)]
pub(super) enum PredTree {
    Cmp {
        op: BinOp,
        col: usize,
        lit: Value,
        lit_is_lhs: bool,
    },
    Is {
        col: usize,
        kind: IsKind,
        negated: bool,
    },
    And(Box<PredTree>, Box<PredTree>),
    Or(Box<PredTree>, Box<PredTree>),
}

/// Recognize a filter program as a [`PredTree`]; `None` when any node
/// falls outside the fusable shapes (function calls, arithmetic,
/// derived-column or column-column comparisons, `NOT`).
fn pred_tree(prog: &ExprProgram) -> Option<PredTree> {
    let Src::Reg(root) = prog.result else {
        return None;
    };
    pred_node(prog, root)
}

fn pred_node(prog: &ExprProgram, r: usize) -> Option<PredTree> {
    match &prog.instrs[r] {
        Instr::Bin(op, a, b) if is_cmp(*op) => {
            let (col, lit, lit_is_lhs) = match (*a, *b) {
                (Src::Col(c), Src::Lit(l)) => (c, prog.lits[l].clone(), false),
                (Src::Lit(l), Src::Col(c)) => (c, prog.lits[l].clone(), true),
                _ => return None,
            };
            Some(PredTree::Cmp {
                op: *op,
                col,
                lit,
                lit_is_lhs,
            })
        }
        Instr::Bin(op @ (BinOp::And | BinOp::Or), Src::Reg(a), Src::Reg(b)) => {
            let left = Box::new(pred_node(prog, *a)?);
            let right = Box::new(pred_node(prog, *b)?);
            Some(match op {
                BinOp::And => PredTree::And(left, right),
                _ => PredTree::Or(left, right),
            })
        }
        Instr::Is(Src::Col(c), kind, negated) => Some(PredTree::Is {
            col: *c,
            kind: *kind,
            negated: *negated,
        }),
        _ => None,
    }
}

/// Evaluate one predicate tree to an `is_true` mask aligned with `sel`.
/// `None` means a leaf had no typed path for *this batch*'s column
/// layout (e.g. a dictionary overflow demoted the column to generic
/// values) — the caller falls back to the generic stage, which is always
/// correct.
fn pred_mask(tree: &PredTree, batch: &ColumnBatch, sel: &[u32]) -> Option<Vec<bool>> {
    match tree {
        PredTree::Cmp {
            op,
            col,
            lit,
            lit_is_lhs,
        } => cmp_mask(
            *op,
            batch.column(*col),
            lit,
            sel,
            *lit_is_lhs,
            batch.all_valid(*col),
        ),
        PredTree::Is { col, kind, negated } => {
            let c = batch.column(*col);
            Some(
                sel.iter()
                    .map(|&lane| {
                        let hit = match (kind, c.presence_at(lane as usize)) {
                            (IsKind::Missing, p) => p == Presence::Missing,
                            (IsKind::Null | IsKind::Unknown, p) => p != Presence::Present,
                        };
                        hit != *negated
                    })
                    .collect(),
            )
        }
        PredTree::And(a, b) => {
            let mut m = pred_mask(a, batch, sel)?;
            let mb = pred_mask(b, batch, sel)?;
            for (x, y) in m.iter_mut().zip(mb) {
                *x &= y;
            }
            Some(m)
        }
        PredTree::Or(a, b) => {
            let mut m = pred_mask(a, batch, sel)?;
            let mb = pred_mask(b, batch, sel)?;
            for (x, y) in m.iter_mut().zip(mb) {
                *x |= y;
            }
            Some(m)
        }
    }
}

/// The `is_true` mask of `col <op> lit` over the selection. An unknown
/// literal fails every lane (`eval_binop` propagates Null/Missing, never
/// `True`); otherwise the typed loops mirror [`bin_col_lit`]'s — masks
/// only, so the float path can use plain IEEE operators.
fn cmp_mask(
    op: BinOp,
    col: &Column,
    lit: &Value,
    sel: &[u32],
    lit_is_lhs: bool,
    all_valid: bool,
) -> Option<Vec<bool>> {
    if lit.is_unknown() {
        return Some(vec![false; sel.len()]);
    }
    let present = |tags: &[Presence], i: usize| all_valid || tags[i] == Presence::Present;
    match (col, lit) {
        (Column::Int { data, tags }, Value::Int(x)) => Some(
            sel.iter()
                .map(|&lane| {
                    let i = lane as usize;
                    present(tags, i)
                        & if lit_is_lhs {
                            int_cmp(op, *x, data[i])
                        } else {
                            int_cmp(op, data[i], *x)
                        }
                })
                .collect(),
        ),
        (Column::Int { data, tags }, Value::Double(x)) => Some(
            sel.iter()
                .map(|&lane| {
                    let i = lane as usize;
                    present(tags, i)
                        & if lit_is_lhs {
                            f64_cmp_mask(op, *x, data[i] as f64)
                        } else {
                            f64_cmp_mask(op, data[i] as f64, *x)
                        }
                })
                .collect(),
        ),
        (Column::Double { data, tags }, _) if lit_f64(lit).is_some() => {
            let x = lit_f64(lit)?;
            Some(
                sel.iter()
                    .map(|&lane| {
                        let i = lane as usize;
                        present(tags, i)
                            & if lit_is_lhs {
                                f64_cmp_mask(op, x, data[i])
                            } else {
                                f64_cmp_mask(op, data[i], x)
                            }
                    })
                    .collect(),
            )
        }
        (Column::Str { codes, dict, tags }, lit) => {
            let pass: Vec<bool> = dict
                .iter()
                .map(|d| {
                    let r = if lit_is_lhs {
                        eval_binop(op, lit, d)
                    } else {
                        eval_binop(op, d, lit)
                    };
                    matches!(r, Ok(ref v) if truthy(v).is_true())
                })
                .collect();
            Some(
                sel.iter()
                    .map(|&lane| {
                        let i = lane as usize;
                        present(tags, i) && pass[codes[i] as usize]
                    })
                    .collect(),
            )
        }
        _ => None,
    }
}

/// The fused scan→filter→partial-aggregate shape: each aggregate argument
/// is `None` (`COUNT(*)`) or a bare scan column, folded straight off the
/// typed column vectors over the surviving selection — no projected batch,
/// no per-lane `Value` materialization.
pub(super) struct FusedAgg {
    cols: Vec<Option<usize>>,
}

/// A promoted kernel plan for one compiled pipeline: fused predicate
/// trees aligned with the pre-join and post-join stages (`None` = run
/// that stage generically), plus the fused aggregate fold when the
/// terminal qualifies. Built once per hot program by [`specialize`] and
/// shared read-only across morsel workers.
pub(super) struct KernelPlan {
    pre_preds: Vec<Option<PredTree>>,
    stage_preds: Vec<Option<PredTree>>,
    agg: Option<FusedAgg>,
    /// Precompiled record-direct program, present when the whole pipeline
    /// collapses to filter→scalar-aggregate: no join, every stage a fused
    /// predicate tree, fused terminal. Built once here so the per-row
    /// pass is a flat loop with no tree recursion.
    direct: Option<DirectPlan>,
}

/// Compile the specialized form of a pipeline; `None` when no stage or
/// terminal has a fusable shape (running generic costs nothing extra).
pub(super) fn specialize(vp: &VecPipeline) -> Option<KernelPlan> {
    let preds = |stages: &[VecStage]| -> Vec<Option<PredTree>> {
        stages
            .iter()
            .map(|s| match s {
                VecStage::Filter(p) => pred_tree(p),
                _ => None,
            })
            .collect()
    };
    let pre_preds = preds(&vp.pre_stages);
    let stage_preds = preds(&vp.stages);
    let agg = fused_agg_shape(vp);
    if pre_preds.iter().all(Option::is_none)
        && stage_preds.iter().all(Option::is_none)
        && agg.is_none()
    {
        return None;
    }
    let direct = if vp.join.is_none()
        && agg.is_some()
        && pre_preds.iter().all(Option::is_some)
        && stage_preds.iter().all(Option::is_some)
    {
        Some(DirectPlan::build(
            pre_preds.iter().chain(&stage_preds).flatten(),
        ))
    } else {
        None
    };
    Some(KernelPlan {
        pre_preds,
        stage_preds,
        agg,
        direct,
    })
}

/// The terminal qualifies for the fused aggregate fold when it is a
/// scalar (no GROUP BY) aggregation over bare scan columns with no join
/// in between (join events read derived columns, not scan lanes). `Final`
/// mode is excluded at runtime by the sink (its fold is `merge_partial`,
/// not `update`).
fn fused_agg_shape(vp: &VecPipeline) -> Option<FusedAgg> {
    if vp.join.is_some() {
        return None;
    }
    let VecTerminal::Agg { keys, args } = &vp.terminal else {
        return None;
    };
    if !keys.is_empty() {
        return None;
    }
    let mut cols = Vec::with_capacity(args.len());
    for arg in args {
        match arg {
            None => cols.push(None),
            Some(p) if p.instrs.is_empty() => match p.result {
                Src::Col(c) => cols.push(Some(c)),
                _ => return None,
            },
            Some(_) => return None,
        }
    }
    Some(FusedAgg { cols })
}

/// Shape fingerprint of a compiled pipeline over one dataset, the
/// [`KernelCache`](super::kernel::KernelCache) key. Covers the static
/// shape — dataset, scan columns, op sequence of every program, stage and
/// terminal structure; lane types and the all-valid profile are dispatched
/// dynamically per batch, so they do not split cache entries.
pub(super) fn fingerprint(dataset: &str, vp: &VecPipeline) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    dataset.hash(&mut h);
    vp.scan_fields.hash(&mut h);
    let hash_prog = |p: &ExprProgram, h: &mut std::collections::hash_map::DefaultHasher| {
        format!("{:?}", p).hash(h);
    };
    let hash_stages = |stages: &[VecStage], h: &mut std::collections::hash_map::DefaultHasher| {
        for s in stages {
            match s {
                VecStage::Filter(p) => {
                    0u8.hash(h);
                    hash_prog(p, h);
                }
                VecStage::Project(ps) => {
                    1u8.hash(h);
                    for p in ps {
                        hash_prog(p, h);
                    }
                }
                VecStage::Fused { pred, progs } => {
                    2u8.hash(h);
                    hash_prog(pred, h);
                    for p in progs {
                        hash_prog(p, h);
                    }
                }
            }
        }
    };
    hash_stages(&vp.pre_stages, &mut h);
    vp.join.is_some().hash(&mut h);
    if let Some(j) = &vp.join {
        hash_prog(&j.key, &mut h);
        format!("{:?}", j.cols).hash(&mut h);
        j.left.hash(&mut h);
        j.merged.hash(&mut h);
    }
    hash_stages(&vp.stages, &mut h);
    match &vp.terminal {
        VecTerminal::Collect(_) => 0u8.hash(&mut h),
        VecTerminal::Sort { keys, .. } => {
            1u8.hash(&mut h);
            for (p, desc) in keys {
                hash_prog(p, &mut h);
                desc.hash(&mut h);
            }
        }
        VecTerminal::Agg { keys, args } => {
            2u8.hash(&mut h);
            for p in keys {
                hash_prog(p, &mut h);
            }
            for p in args {
                p.is_some().hash(&mut h);
                if let Some(p) = p {
                    hash_prog(p, &mut h);
                }
            }
        }
    }
    h.finish()
}

/// Build a scan→filter→scalar-aggregate pipeline for promotion-policy
/// tests in sibling modules (VecPipeline's fields are module-private).
/// `specializable` toggles between a fusable shape (`COUNT(*)` behind a
/// column predicate) and one `specialize` declines (an expression
/// argument, no filter).
#[cfg(test)]
pub(super) fn test_pipeline(specializable: bool) -> VecPipeline {
    use crate::ast::BinOp;
    let mut c = Compiler::scan();
    if specializable {
        let pred = c
            .compile_expr(&Scalar::Bin(
                BinOp::Lt,
                Box::new(Scalar::Field("a".into())),
                Box::new(Scalar::Lit(Value::Int(3))),
            ))
            .expect("pred compiles");
        VecPipeline {
            scan_fields: c.scan_fields.clone(),
            pre_stages: Vec::new(),
            join: None,
            stages: vec![VecStage::Filter(pred)],
            terminal: VecTerminal::Agg {
                keys: Vec::new(),
                args: vec![None],
            },
        }
    } else {
        let arg = c
            .compile_expr(&Scalar::Bin(
                BinOp::Add,
                Box::new(Scalar::Field("a".into())),
                Box::new(Scalar::Lit(Value::Int(1))),
            ))
            .expect("arg compiles");
        VecPipeline {
            scan_fields: c.scan_fields.clone(),
            pre_stages: Vec::new(),
            join: None,
            stages: Vec::new(),
            terminal: VecTerminal::Agg {
                keys: Vec::new(),
                args: vec![Some(arg)],
            },
        }
    }
}

/// Fold the surviving selection straight into the sink's accumulators
/// with typed per-column loops — the fused scan→filter→aggregate kernel.
/// Returns `false` (without touching the sink) when this batch cannot
/// take the typed path: a fused column is not Int/Double here, or the
/// sink is grouped/Final. Callers guarantee `sel` is non-empty, the
/// tracker is clean, and no derived columns are in play, so the fold is
/// error-free and byte-identical to the generic per-lane updates.
fn fold_fused(
    fused: &FusedAgg,
    batch: &ColumnBatch,
    sel: &[u32],
    sink: &mut MorselSink<'_>,
) -> bool {
    for c in fused.cols.iter().flatten() {
        if !matches!(batch.column(*c), Column::Int { .. } | Column::Double { .. }) {
            return false;
        }
    }
    // `fused_accs` marks the aggregate state non-empty, so the type check
    // above must run first (a `false` return must leave the sink as-is).
    let Some(accs) = sink.fused_accs() else {
        return false;
    };
    debug_assert_eq!(accs.len(), fused.cols.len());
    for (acc, col) in accs.iter_mut().zip(&fused.cols) {
        match col {
            // COUNT(*) counts every surviving lane, unknown or not.
            None => acc.add_count(sel.len() as i64),
            Some(c) => match batch.column(*c) {
                Column::Int { data, tags } => {
                    if batch.all_valid(*c) {
                        for &lane in sel {
                            acc.update_int(data[lane as usize]);
                        }
                    } else {
                        for &lane in sel {
                            let i = lane as usize;
                            if tags[i] == Presence::Present {
                                acc.update_int(data[i]);
                            }
                        }
                    }
                }
                Column::Double { data, tags } => {
                    if batch.all_valid(*c) {
                        for &lane in sel {
                            acc.update_double(data[lane as usize]);
                        }
                    } else {
                        for &lane in sel {
                            let i = lane as usize;
                            if tags[i] == Presence::Present {
                                acc.update_double(data[i]);
                            }
                        }
                    }
                }
                _ => unreachable!("column types checked above"),
            },
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Record-direct fused kernel
// ---------------------------------------------------------------------------

/// A numeric-literal comparison term of the record-direct predicate
/// pass, laid out so the hot loop is monomorphic: Int rows take exact
/// `int_cmp` (when the literal is an Int), Double rows and mixed pairs
/// take the IEEE `f64_cmp_mask`, and any other present value falls back
/// to [`cmp_row`]'s `eval_binop` arm — the same verdicts as the leaf's
/// generic mask for every value shape.
struct FastCmp {
    op: BinOp,
    col: usize,
    lit_is_lhs: bool,
    /// `Some` iff the literal is an Int: Int/Int pairs must compare
    /// exactly (an `i64` does not round-trip through `f64`).
    lit_int: Option<i64>,
    /// The literal as `f64`, for Double rows and Int/Double pairs.
    lit_num: f64,
    /// The literal itself, for the non-numeric fallback arm.
    lit: Value,
}

/// A non-fast term: `IS` checks, `OR` subtrees (kept recursive), and
/// comparisons against non-numeric literals.
enum DirectLeaf {
    Cmp {
        op: BinOp,
        col: usize,
        lit: Value,
        lit_is_lhs: bool,
    },
    Is {
        col: usize,
        kind: IsKind,
        negated: bool,
    },
    Or(PredTree),
}

/// Precompiled record-direct filter program: the AND-flattened predicate
/// leaves of every fused stage, split into the compact numeric-compare
/// tier and the general tier. Built once per promoted pipeline so the
/// per-row check is a flat loop — no per-row tree recursion, no
/// per-batch re-walk of the trees. Evaluating `fast` before `rest`
/// reorders the conjunction, which is sound because every leaf is total
/// and side-effect free: no term can observe whether another ran.
pub(super) struct DirectPlan {
    fast: Vec<FastCmp>,
    rest: Vec<DirectLeaf>,
    /// Some conjoined comparison literal is itself NULL/MISSING: that
    /// term never passes (the generic `cmp_mask` is all-false for it),
    /// so no row survives and the sink must stay untouched.
    const_false: bool,
}

impl DirectPlan {
    fn build<'t>(trees: impl Iterator<Item = &'t PredTree>) -> DirectPlan {
        let mut plan = DirectPlan {
            fast: Vec::new(),
            rest: Vec::new(),
            const_false: false,
        };
        for tree in trees {
            plan.flatten(tree);
        }
        plan
    }

    fn flatten(&mut self, tree: &PredTree) {
        match tree {
            PredTree::And(a, b) => {
                self.flatten(a);
                self.flatten(b);
            }
            PredTree::Cmp {
                op,
                col,
                lit,
                lit_is_lhs,
            } => {
                if lit.is_unknown() {
                    self.const_false = true;
                    return;
                }
                match lit {
                    Value::Int(i) => self.fast.push(FastCmp {
                        op: *op,
                        col: *col,
                        lit_is_lhs: *lit_is_lhs,
                        lit_int: Some(*i),
                        lit_num: *i as f64,
                        lit: lit.clone(),
                    }),
                    Value::Double(d) => self.fast.push(FastCmp {
                        op: *op,
                        col: *col,
                        lit_is_lhs: *lit_is_lhs,
                        lit_int: None,
                        lit_num: *d,
                        lit: lit.clone(),
                    }),
                    _ => self.rest.push(DirectLeaf::Cmp {
                        op: *op,
                        col: *col,
                        lit: lit.clone(),
                        lit_is_lhs: *lit_is_lhs,
                    }),
                }
            }
            PredTree::Is { col, kind, negated } => self.rest.push(DirectLeaf::Is {
                col: *col,
                kind: *kind,
                negated: *negated,
            }),
            or @ PredTree::Or(..) => self.rest.push(DirectLeaf::Or(or.clone())),
        }
    }

    /// The first column the per-row pass probes — the prefetch target.
    fn probe_col(&self) -> Option<usize> {
        self.fast.first().map(|f| f.col).or_else(|| {
            self.rest.iter().find_map(|l| match l {
                DirectLeaf::Cmp { col, .. } | DirectLeaf::Is { col, .. } => Some(*col),
                DirectLeaf::Or(_) => None,
            })
        })
    }
}

/// How many rows ahead the record-direct kernel touches the next row's
/// probe column: far enough to overlap several DRAM fetches, close
/// enough that the warmed lines survive until the row is processed.
const PF_DIST: usize = 16;

/// Row-level conjunction over the flattened leaves — the mask semantics
/// of [`pred_mask`]: keep only on definite `True`.
#[inline]
fn direct_row(plan: &DirectPlan, rec: &Record, fields: &[String], hints: &mut [usize]) -> bool {
    for f in &plan.fast {
        let pass = match rec.get_hinted(&fields[f.col], &mut hints[f.col]) {
            Some(Value::Int(a)) => match f.lit_int {
                Some(x) => {
                    if f.lit_is_lhs {
                        int_cmp(f.op, x, *a)
                    } else {
                        int_cmp(f.op, *a, x)
                    }
                }
                None => {
                    if f.lit_is_lhs {
                        f64_cmp_mask(f.op, f.lit_num, *a as f64)
                    } else {
                        f64_cmp_mask(f.op, *a as f64, f.lit_num)
                    }
                }
            },
            Some(Value::Double(d)) => {
                if f.lit_is_lhs {
                    f64_cmp_mask(f.op, f.lit_num, *d)
                } else {
                    f64_cmp_mask(f.op, *d, f.lit_num)
                }
            }
            None | Some(Value::Null) | Some(Value::Missing) => false,
            Some(v) => cmp_row(f.op, v, &f.lit, f.lit_is_lhs),
        };
        if !pass {
            return false;
        }
    }
    for leaf in &plan.rest {
        let pass = match leaf {
            DirectLeaf::Cmp {
                op,
                col,
                lit,
                lit_is_lhs,
            } => match rec.get_hinted(&fields[*col], &mut hints[*col]) {
                None | Some(Value::Null) | Some(Value::Missing) => false,
                Some(v) => cmp_row(*op, v, lit, *lit_is_lhs),
            },
            DirectLeaf::Is { col, kind, negated } => {
                let p = match rec.get_hinted(&fields[*col], &mut hints[*col]) {
                    None | Some(Value::Missing) => Presence::Missing,
                    Some(Value::Null) => Presence::Null,
                    Some(_) => Presence::Present,
                };
                let hit = match kind {
                    IsKind::Missing => p == Presence::Missing,
                    IsKind::Null | IsKind::Unknown => p != Presence::Present,
                };
                hit != *negated
            }
            DirectLeaf::Or(tree) => pred_row(tree, rec, fields, hints),
        };
        if !pass {
            return false;
        }
    }
    true
}

/// Row-level [`PredTree`] evaluation, exactly the mask semantics of
/// [`pred_mask`]: a lane is kept only on definite `True`, so `Null`/
/// `Missing`/absent fields fail every comparison, and `AND`/`OR`
/// short-circuit soundly because every leaf is total and side-effect
/// free.
#[inline]
fn pred_row(tree: &PredTree, rec: &Record, fields: &[String], hints: &mut [usize]) -> bool {
    match tree {
        PredTree::Cmp {
            op,
            col,
            lit,
            lit_is_lhs,
        } => {
            if lit.is_unknown() {
                return false;
            }
            match rec.get_hinted(&fields[*col], &mut hints[*col]) {
                None | Some(Value::Null) | Some(Value::Missing) => false,
                Some(v) => cmp_row(*op, v, lit, *lit_is_lhs),
            }
        }
        PredTree::Is { col, kind, negated } => {
            let p = match rec.get_hinted(&fields[*col], &mut hints[*col]) {
                None | Some(Value::Missing) => Presence::Missing,
                Some(Value::Null) => Presence::Null,
                Some(_) => Presence::Present,
            };
            let hit = match kind {
                IsKind::Missing => p == Presence::Missing,
                IsKind::Null | IsKind::Unknown => p != Presence::Present,
            };
            hit != *negated
        }
        PredTree::And(a, b) => pred_row(a, rec, fields, hints) && pred_row(b, rec, fields, hints),
        PredTree::Or(a, b) => pred_row(a, rec, fields, hints) || pred_row(b, rec, fields, hints),
    }
}

/// One comparison leaf on a concrete (present) value — the row form of
/// [`cmp_mask`]'s typed loops. Typed pairs take the same `int_cmp`/
/// `f64_cmp_mask` fast paths; anything else (strings, booleans, mixed
/// shapes) goes through `eval_binop`, which is what the generic lane
/// kernels evaluate for those lanes, so the verdict is identical however
/// the batch path would have typed the column.
#[inline]
fn cmp_row(op: BinOp, v: &Value, lit: &Value, lit_is_lhs: bool) -> bool {
    match (v, lit) {
        (Value::Int(a), Value::Int(x)) => {
            if lit_is_lhs {
                int_cmp(op, *x, *a)
            } else {
                int_cmp(op, *a, *x)
            }
        }
        (Value::Int(a), Value::Double(x)) => {
            if lit_is_lhs {
                f64_cmp_mask(op, *x, *a as f64)
            } else {
                f64_cmp_mask(op, *a as f64, *x)
            }
        }
        (Value::Double(a), _) if lit_f64(lit).is_some() => {
            let x = lit_f64(lit).unwrap_or(0.0);
            if lit_is_lhs {
                f64_cmp_mask(op, x, *a)
            } else {
                f64_cmp_mask(op, *a, x)
            }
        }
        _ => {
            let r = if lit_is_lhs {
                eval_binop(op, lit, v)
            } else {
                eval_binop(op, v, lit)
            };
            matches!(r, Ok(ref x) if truthy(x).is_true())
        }
    }
}

/// Run one batch of records through the record-direct fused kernel: one
/// walk over the records, no column materialization. Byte-identity with
/// the generic path holds because predicate leaves are total (so no
/// error can be lost to short-circuiting) and surviving rows fold
/// through [`MorselSink::push_agg`] in scan order — the exact fold the
/// generic terminal performs, including its error precedence.
fn process_direct(
    vp: &VecPipeline,
    spec: &KernelPlan,
    direct: &DirectPlan,
    records: &[&Record],
    sink: &mut MorselSink<'_>,
) -> Result<()> {
    const MISSING: Value = Value::Missing;
    let Some(fused) = spec.agg.as_ref() else {
        return Err(EngineError::exec("direct kernel without a fused terminal"));
    };
    if direct.const_false {
        return Ok(());
    }
    let fields = vp.scan_fields.as_slice();
    let mut hints = vec![0usize; fields.len()];

    // Records are row-at-a-time heap objects, so each row's first field
    // access is two dependent cache misses: the fields buffer, then the
    // field name's bytes for the probe compare. Issue non-blocking
    // prefetches for the probe column two distances ahead — the slot
    // line far out, the name bytes (which need the slot line) closer in
    // — so the misses overlap row work instead of serializing on it.
    let mut pf_cols: Vec<usize> = direct
        .probe_col()
        .into_iter()
        .chain(fused.cols.iter().flatten().copied())
        .collect();
    pf_cols.dedup();
    let prefetch = |i: usize, hints: &[usize]| {
        if let Some(far) = records.get(i + 2 * PF_DIST) {
            for &col in &pf_cols {
                far.prefetch_slot(hints[col]);
            }
        }
        if let Some(near) = records.get(i + PF_DIST) {
            for &col in &pf_cols {
                near.prefetch_slot_name(hints[col]);
            }
        }
    };

    // Phase 1: scan to the first surviving row. The aggregate state must
    // stay untouched (`saw_any` unset) when no row survives, exactly like
    // the generic fold, so the accumulators are only borrowed once a
    // survivor exists.
    let mut first = None;
    for (i, rec) in records.iter().enumerate() {
        prefetch(i, &hints);
        if direct_row(direct, rec, fields, &mut hints) {
            first = Some(i);
            break;
        }
    }
    let Some(first) = first else {
        return Ok(());
    };

    if let Some(accs) = sink.fused_accs() {
        // Scalar-update sink: fold each survivor straight into the
        // accumulators — the exact per-row `update` loop of
        // `push_values`, minus its per-row sink and mode dispatch. Int
        // and Double arguments take the typed folds, which are defined
        // (and property-tested) to be bit-exact with `update` and never
        // error; everything else keeps the erroring `update` path with
        // its serial precedence.
        for (k, rec) in records[first..].iter().enumerate() {
            prefetch(first + k, &hints);
            if k > 0 && !direct_row(direct, rec, fields, &mut hints) {
                continue;
            }
            for (acc, col) in accs.iter_mut().zip(&fused.cols) {
                match col {
                    None => acc.update(None)?,
                    Some(c) => match rec.get_hinted(&fields[*c], &mut hints[*c]) {
                        Some(Value::Int(i)) => acc.update_int(*i),
                        Some(Value::Double(d)) => acc.update_double(*d),
                        Some(v) => acc.update(Some(v))?,
                        None => acc.update(Some(&MISSING))?,
                    },
                }
            }
        }
        return Ok(());
    }

    // `Final`-mode merge: route through `push_agg` like the generic fold.
    let mut args_buf: Vec<Option<&Value>> = Vec::with_capacity(fused.cols.len());
    for (k, rec) in records[first..].iter().enumerate() {
        prefetch(first + k, &hints);
        if k > 0 && !direct_row(direct, rec, fields, &mut hints) {
            continue;
        }
        args_buf.clear();
        for col in &fused.cols {
            args_buf.push(col.map(|c| {
                rec.get_hinted(&fields[c], &mut hints[c])
                    .unwrap_or(&MISSING)
            }));
        }
        sink.push_agg(Vec::new(), &args_buf)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Pipeline driver
// ---------------------------------------------------------------------------

fn retain_mask<T>(v: &mut Vec<T>, keep: &[bool]) {
    let mut i = 0;
    v.retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
}

/// Drop poisoned lanes from the selection (and the aligned derived
/// columns); their errors stay in the tracker for end-of-batch reporting.
fn compact_poisoned(
    sel: &mut Vec<u32>,
    derived: &mut Option<Vec<Vec<Value>>>,
    tracker: &ErrTracker,
) {
    if tracker.is_empty() {
        return;
    }
    let keep: Vec<bool> = sel.iter().map(|&lane| !tracker.poisoned(lane)).collect();
    retain_mask(sel, &keep);
    if let Some(cols) = derived {
        for col in cols.iter_mut() {
            retain_mask(col, &keep);
        }
    }
}

fn apply_filter(
    prog: &ExprProgram,
    batch: &ColumnBatch,
    sel: &mut Vec<u32>,
    derived: &mut Option<Vec<Vec<Value>>>,
    tracker: &mut ErrTracker,
) {
    // Single-comparison filters over physical columns keep the whole
    // filter inside one typed loop over the selection vector.
    if derived.is_none() && tracker.is_empty() {
        if let [Instr::Bin(op, a, b)] = prog.instrs.as_slice() {
            if prog.result == Src::Reg(0) && is_cmp(*op) {
                let handled = match (*a, *b) {
                    (Src::Col(c), Src::Lit(l)) => filter_cmp(
                        *op,
                        batch.column(c),
                        &prog.lits[l],
                        sel,
                        false,
                        batch.all_valid(c),
                    ),
                    (Src::Lit(l), Src::Col(c)) => filter_cmp(
                        *op,
                        batch.column(c),
                        &prog.lits[l],
                        sel,
                        true,
                        batch.all_valid(c),
                    ),
                    _ => false,
                };
                if handled {
                    return;
                }
            }
        }
    }
    let vals = run_program(prog, batch, sel, derived.as_deref(), 0, tracker);
    let keep: Vec<bool> = sel
        .iter()
        .zip(&vals)
        .map(|(&lane, v)| !tracker.poisoned(lane) && truthy(v).is_true())
        .collect();
    retain_mask(sel, &keep);
    if let Some(cols) = derived {
        for col in cols.iter_mut() {
            retain_mask(col, &keep);
        }
    }
}

/// In-place selection-vector filter for `col <op> lit` — true when the
/// column/literal pair had a typed fast path. The surviving lanes are
/// compacted branch-free: every slot is written unconditionally and the
/// write index advances by the comparison result, so the loop body has no
/// data-dependent branches for the optimizer to trip on.
fn filter_cmp(
    op: BinOp,
    col: &Column,
    lit: &Value,
    sel: &mut Vec<u32>,
    lit_is_lhs: bool,
    all_valid: bool,
) -> bool {
    // Branch-free selection compaction over one per-lane keep closure;
    // the all-valid variant never touches the presence tags.
    fn compact(sel: &mut Vec<u32>, mut keep: impl FnMut(usize) -> bool) {
        let mut w = 0usize;
        for i in 0..sel.len() {
            let lane = sel[i];
            sel[w] = lane;
            w += keep(lane as usize) as usize;
        }
        sel.truncate(w);
    }
    match (col, lit) {
        (Column::Int { data, tags }, Value::Int(x)) => {
            let cmp = |li: usize| {
                if lit_is_lhs {
                    int_cmp(op, *x, data[li])
                } else {
                    int_cmp(op, data[li], *x)
                }
            };
            if all_valid {
                compact(sel, cmp);
            } else {
                compact(sel, |li| (tags[li] == Presence::Present) & cmp(li));
            }
            true
        }
        // Float comparisons (double column vs numeric literal, int column
        // vs double literal): IEEE operators are exactly the `is_true`
        // mask — NaN fails every ordering and `Eq`, passes `Ne`, matching
        // `sql_compare`'s incomparable arm for filtering purposes.
        (Column::Double { data, tags }, _) if lit_f64(lit).is_some() => {
            let Some(x) = lit_f64(lit) else { return false };
            let cmp = |li: usize| {
                if lit_is_lhs {
                    f64_cmp_mask(op, x, data[li])
                } else {
                    f64_cmp_mask(op, data[li], x)
                }
            };
            if all_valid {
                compact(sel, cmp);
            } else {
                compact(sel, |li| (tags[li] == Presence::Present) & cmp(li));
            }
            true
        }
        (Column::Int { data, tags }, Value::Double(x)) => {
            let cmp = |li: usize| {
                if lit_is_lhs {
                    f64_cmp_mask(op, *x, data[li] as f64)
                } else {
                    f64_cmp_mask(op, data[li] as f64, *x)
                }
            };
            if all_valid {
                compact(sel, cmp);
            } else {
                compact(sel, |li| (tags[li] == Presence::Present) & cmp(li));
            }
            true
        }
        (Column::Str { codes, dict, tags }, lit) => {
            // One comparison per distinct dictionary value, then a
            // branch-free code-indexed sweep.
            let pass: Vec<bool> = dict
                .iter()
                .map(|d| {
                    let r = if lit_is_lhs {
                        eval_binop(op, lit, d)
                    } else {
                        eval_binop(op, d, lit)
                    };
                    matches!(r, Ok(ref v) if truthy(v).is_true())
                })
                .collect();
            if all_valid {
                compact(sel, |li| pass[codes[li] as usize]);
            } else {
                compact(sel, |li| {
                    tags[li] == Presence::Present && pass[codes[li] as usize]
                });
            }
            true
        }
        _ => false,
    }
}

/// Fused filter+project: run the filter and the projection with the exact
/// stage semantics (the typed one-pass loop when possible, the composed
/// general path otherwise).
fn run_fused(
    pred: &ExprProgram,
    progs: &[ExprProgram],
    batch: &ColumnBatch,
    sel: &mut Vec<u32>,
    derived: &mut Option<Vec<Vec<Value>>>,
    tracker: &mut ErrTracker,
) {
    if derived.is_none() && tracker.is_empty() {
        if let Some(cols) = fused_fast(pred, progs, batch, sel) {
            *derived = Some(cols);
            return;
        }
    }
    apply_filter(pred, batch, sel, derived, tracker);
    let cols: Vec<Vec<Value>> = progs
        .iter()
        .map(|p| run_program(p, batch, sel, derived.as_deref(), 0, tracker))
        .collect();
    *derived = Some(cols);
    compact_poisoned(sel, derived, tracker);
}

/// One-pass select-and-gather for a single-comparison filter feeding a
/// plain column/literal projection: the selection is compacted branch-free
/// and the projected values are gathered in the same sweep, with no
/// intermediate selection vector between the two stages. `None` when the
/// shapes don't fit (the caller composes the general stages instead).
fn fused_fast(
    pred: &ExprProgram,
    progs: &[ExprProgram],
    batch: &ColumnBatch,
    sel: &mut Vec<u32>,
) -> Option<Vec<Vec<Value>>> {
    let [Instr::Bin(op, a, b)] = pred.instrs.as_slice() else {
        return None;
    };
    if pred.result != Src::Reg(0) || !is_cmp(*op) {
        return None;
    }
    let (col, lit, lit_is_lhs) = match (*a, *b) {
        (Src::Col(c), Src::Lit(l)) => (c, &pred.lits[l], false),
        (Src::Lit(l), Src::Col(c)) => (c, &pred.lits[l], true),
        _ => return None,
    };
    // Every projected column must be a plain gather: a scan column or a
    // literal, no instructions (instructions can error, which would need
    // the poison machinery).
    for p in progs {
        if !p.instrs.is_empty() || matches!(p.result, Src::Reg(_)) {
            return None;
        }
    }
    enum Pred<'a> {
        Int {
            data: &'a [i64],
            tags: &'a [Presence],
            x: i64,
        },
        Float {
            data: &'a [f64],
            tags: &'a [Presence],
            x: f64,
        },
        Dict {
            codes: &'a [u32],
            tags: &'a [Presence],
            pass: Vec<bool>,
        },
    }
    let all_valid = batch.all_valid(col);
    let pred_k = match (batch.column(col), lit) {
        (Column::Int { data, tags }, Value::Int(x)) => Pred::Int { data, tags, x: *x },
        (Column::Double { data, tags }, lit) if lit_f64(lit).is_some() => Pred::Float {
            data,
            tags,
            x: lit_f64(lit)?,
        },
        (Column::Str { codes, dict, tags }, lit) => {
            let pass: Vec<bool> = dict
                .iter()
                .map(|d| {
                    let r = if lit_is_lhs {
                        eval_binop(*op, lit, d)
                    } else {
                        eval_binop(*op, d, lit)
                    };
                    matches!(r, Ok(ref v) if truthy(v).is_true())
                })
                .collect();
            Pred::Dict { codes, tags, pass }
        }
        _ => return None,
    };
    let mut cols: Vec<Vec<Value>> = vec![Vec::new(); progs.len()];
    let mut w = 0usize;
    for i in 0..sel.len() {
        let lane = sel[i];
        let li = lane as usize;
        let keep = match &pred_k {
            Pred::Int { data, tags, x } => {
                (all_valid || tags[li] == Presence::Present)
                    & if lit_is_lhs {
                        int_cmp(*op, *x, data[li])
                    } else {
                        int_cmp(*op, data[li], *x)
                    }
            }
            Pred::Float { data, tags, x } => {
                (all_valid || tags[li] == Presence::Present)
                    & if lit_is_lhs {
                        f64_cmp_mask(*op, *x, data[li])
                    } else {
                        f64_cmp_mask(*op, data[li], *x)
                    }
            }
            Pred::Dict { codes, tags, pass } => {
                (all_valid || tags[li] == Presence::Present) && pass[codes[li] as usize]
            }
        };
        sel[w] = lane;
        if keep {
            for (ci, p) in progs.iter().enumerate() {
                cols[ci].push(match p.result {
                    Src::Col(c) => batch.column(c).value_at(li).into_owned(),
                    Src::Lit(l) => p.lits[l].clone(),
                    Src::Reg(_) => unreachable!("trivial programs only"),
                });
            }
        }
        w += keep as usize;
    }
    sel.truncate(w);
    Some(cols)
}

// ---------------------------------------------------------------------------
// Join probing
// ---------------------------------------------------------------------------

/// Probe the join per surviving lane and switch the batch into event
/// space: `sel` becomes the surviving event ids, `derived` the join's
/// output columns, and the tracker an event-space tracker. Event order is
/// the row path's emission order — probe lanes in scan order; per lane,
/// hash matches in build insertion order, index matches in the pending
/// stack's pop order; a left-join miss emits one `Null`-build event.
fn run_join(
    join: &VecJoin,
    rt: &JoinRuntime<'_>,
    batch: &ColumnBatch,
    records: &[&Record],
    sel: &mut Vec<u32>,
    derived: &mut Option<Vec<Vec<Value>>>,
    tracker: &mut ErrTracker,
) {
    // A bare-column key needs no gathered key vector: each lane's key
    // reads straight from the typed column (zero-copy for strings, a
    // stack `Value` for ints/doubles).
    let trivial_key = match (join.key.instrs.is_empty(), join.key.result) {
        (true, Src::Col(c)) => Some(c),
        _ => None,
    };
    // Dictionary-code probing: a bare string column key looks up each
    // distinct dictionary value at most once per batch. Dictionary values
    // are strings (always hash-safe), so the memo agrees with per-row
    // lookups exactly.
    let dict_probe = match (trivial_key, rt) {
        (Some(c), JoinRuntime::Hash { .. }) => match batch.column(c) {
            Column::Str { codes, dict, tags } => Some((codes, dict, tags)),
            _ => None,
        },
        _ => None,
    };
    let key_vals = if trivial_key.is_some() {
        Vec::new()
    } else {
        run_program(&join.key, batch, sel, None, 0, tracker)
    };
    // The key of lane `lane` (selection position `k`), for the non-dict
    // paths.
    let key_at = |lane: u32, k: usize| -> Cow<'_, Value> {
        match trivial_key {
            Some(c) => batch.column(c).value_at(lane as usize),
            None => Cow::Borrowed(&key_vals[k]),
        }
    };

    // The event walk visits surviving lanes *and* poisoned lanes in lane
    // order: a lane that errored earlier (probe filter or key program)
    // becomes one poisoned event, exactly the one `Err` the row stream
    // yields for that row. With no poisoned lanes (the common case) the
    // selection vector itself is the visit order — no side table needed.
    let mut visits: Vec<(u32, usize)> = Vec::new();
    if !tracker.is_empty() {
        visits.extend(sel.iter().enumerate().map(|(k, &l)| (l, k)));
        for &lane in tracker.errs.keys() {
            if sel.binary_search(&lane).is_err() {
                visits.push((lane, usize::MAX));
            }
        }
        visits.sort_unstable();
    }

    let mut memo: Vec<Option<Option<&[u32]>>> = match &dict_probe {
        Some((_, dict, _)) => vec![None; dict.len()],
        None => Vec::new(),
    };
    let mut ev: u32 = 0;
    let mut sel_out: Vec<u32> = Vec::with_capacity(sel.len());
    let mut cols: Vec<Vec<Value>> = (0..join.cols.len())
        .map(|_| Vec::with_capacity(sel.len()))
        .collect();
    // Build rows of one table share a field layout: position hints turn
    // the per-event record lookups into single slot probes.
    let mut hints: Vec<usize> = vec![0; join.cols.len()];
    let mut ev_tracker = ErrTracker::default();

    let nvisits = if visits.is_empty() {
        sel.len()
    } else {
        visits.len()
    };
    for idx in 0..nvisits {
        let (lane, k) = if visits.is_empty() {
            (sel[idx], idx)
        } else {
            visits[idx]
        };
        if let Some((_, e)) = tracker.get(lane) {
            ev_tracker.poison(ev, 0, e.clone());
            ev += 1;
            continue;
        }
        match rt {
            JoinRuntime::Hash { table, rows } => {
                let matches: Option<&[u32]> = match &dict_probe {
                    Some((codes, _, tags)) => {
                        if tags[lane as usize] == Presence::Present {
                            let code = codes[lane as usize] as usize;
                            let (_, dict, _) = dict_probe.as_ref().expect("dict probe");
                            *memo[code].get_or_insert_with(|| table.lookup(&dict[code]))
                        } else {
                            // Null/Missing keys never match (the row path
                            // skips unknown keys before the lookup).
                            None
                        }
                    }
                    None => {
                        let key = key_at(lane, k);
                        if key.is_unknown() {
                            None
                        } else {
                            table.lookup(&key)
                        }
                    }
                };
                match matches {
                    Some(idxs) => {
                        for &bi in idxs {
                            emit_join_event(
                                join,
                                batch,
                                records,
                                lane,
                                rows.get(bi),
                                &mut cols,
                                &mut hints,
                                &mut sel_out,
                                &mut ev,
                                &mut ev_tracker,
                            );
                        }
                    }
                    None if join.left => emit_join_event(
                        join,
                        batch,
                        records,
                        lane,
                        BuildRef::Val(&Value::Null),
                        &mut cols,
                        &mut hints,
                        &mut sel_out,
                        &mut ev,
                        &mut ev_tracker,
                    ),
                    None => {}
                }
            }
            JoinRuntime::IndexNl { table, index } => {
                let key = key_at(lane, k);
                if key.is_unknown() {
                    continue;
                }
                let mut fetched: Vec<&Record> = Vec::new();
                let mut dangling = false;
                for rid in index.lookup(&key) {
                    match table.get(rid) {
                        Some(rec) => fetched.push(rec),
                        None => {
                            dangling = true;
                            break;
                        }
                    }
                }
                if dangling {
                    // The row path returns this error before any of the
                    // lane's matches are observable (consumers stop at the
                    // first `Err`), so the whole lane is one poisoned
                    // event.
                    ev_tracker.poison(ev, 0, EngineError::exec("dangling index entry"));
                    ev += 1;
                    continue;
                }
                // The row path pushes matches onto a pending stack and
                // pops, so they emit in reverse lookup order.
                for rec in fetched.iter().rev() {
                    emit_join_event(
                        join,
                        batch,
                        records,
                        lane,
                        BuildRef::Rec(rec),
                        &mut cols,
                        &mut hints,
                        &mut sel_out,
                        &mut ev,
                        &mut ev_tracker,
                    );
                }
            }
        }
    }
    *sel = sel_out;
    *derived = Some(cols);
    *tracker = ev_tracker;
}

/// Materialize one join event's output columns. A `MergeStars` error
/// poisons the event instead of emitting it (the row path fails on that
/// row's projection).
#[allow(clippy::too_many_arguments)]
fn emit_join_event(
    join: &VecJoin,
    batch: &ColumnBatch,
    records: &[&Record],
    lane: u32,
    build: BuildRef<'_>,
    cols: &mut [Vec<Value>],
    hints: &mut [usize],
    sel_out: &mut Vec<u32>,
    ev: &mut u32,
    tracker: &mut ErrTracker,
) {
    // The row path's `MergeStars` projection errors on any non-record
    // build side whether or not a downstream expression reads it, so the
    // check runs per event, up front.
    if join.merged && build.unmergeable() {
        tracker.poison(
            *ev,
            0,
            EngineError::exec(format!(
                "cannot flatten non-record binding {} ({})",
                join.build_binding,
                build.type_name()
            )),
        );
        *ev += 1;
        return;
    }
    sel_out.push(*ev);
    for ((c, col), hint) in cols.iter_mut().zip(&join.cols).zip(hints.iter_mut()) {
        let v = match col {
            JoinCol::ProbeField(ci) => batch.column(*ci).value_at(lane as usize).into_owned(),
            JoinCol::ProbeRow => Value::Obj(records[lane as usize].clone()),
            JoinCol::BuildRow => build.to_value(),
            JoinCol::BuildField(f) => build.field(f, hint).cloned().unwrap_or(Value::Missing),
            // `Merged` columns only come from `Env::Merged` contexts,
            // which always latch `join.merged`, so the up-front check
            // above guarantees this flatten cannot fail.
            JoinCol::Merged => {
                match merge_stars_pair(records[lane as usize], build, &join.build_binding) {
                    Ok(v) => v,
                    Err(_) => unreachable!("build validated by the merged check"),
                }
            }
            // The merged record's field without the record: build's value
            // when the (validated) build row has it, the probe's scan
            // column otherwise — record insertion order makes the build
            // side win on shared names.
            JoinCol::MergedField { field, probe_col } => match build.field(field, hint) {
                Some(v) => v.clone(),
                None => batch
                    .column(*probe_col)
                    .value_at(lane as usize)
                    .into_owned(),
            },
            JoinCol::Pair => make_record([
                (
                    join.probe_binding.clone(),
                    Value::Obj(records[lane as usize].clone()),
                ),
                (join.build_binding.clone(), build.to_value()),
            ]),
        };
        c.push(v);
    }
    *ev += 1;
}

/// `SELECT l.*, r.*` over one join pair, byte-identical to
/// `project_row(MergeStars([probe, build]))` on the pair record: probe
/// fields first, build fields overlaid; an unknown build side contributes
/// nothing; any other non-record build value is the row path's flatten
/// error.
fn merge_stars_pair(probe: &Record, build: BuildRef<'_>, build_binding: &str) -> Result<Value> {
    // Scanned records never hold duplicate field names (`Record::insert`
    // overwrites), so cloning the probe wholesale matches inserting its
    // fields one by one — without the quadratic duplicate scan.
    let mut rec = probe.clone();
    match build {
        BuildRef::Rec(inner) => {
            for (k, v) in inner.iter() {
                rec.insert(k.to_string(), v.clone());
            }
        }
        BuildRef::Val(Value::Obj(inner)) => {
            for (k, v) in inner.iter() {
                rec.insert(k.to_string(), v.clone());
            }
        }
        BuildRef::Val(Value::Missing | Value::Null) => {}
        BuildRef::Val(other) => {
            return Err(EngineError::exec(format!(
                "cannot flatten non-record binding {build_binding} ({})",
                other.type_name()
            )))
        }
    }
    Ok(Value::Obj(rec))
}

// ---------------------------------------------------------------------------
// Batch driver
// ---------------------------------------------------------------------------

/// Turn surviving lanes back into result rows (aligned with `sel`).
fn emit_rows(
    emit: &RowEmit,
    batch: &ColumnBatch,
    records: &[&Record],
    sel: &[u32],
    derived: &mut Option<Vec<Vec<Value>>>,
    stage: u32,
    tracker: &mut ErrTracker,
) -> Vec<Value> {
    match emit {
        RowEmit::Scanned => sel
            .iter()
            .map(|&lane| Value::Obj(records[lane as usize].clone()))
            .collect(),
        RowEmit::Derived(names) => {
            let Some(cols) = derived else {
                unreachable!("derived emit without a projection stage");
            };
            (0..sel.len())
                .map(|k| {
                    let mut rec = Record::with_capacity(names.len());
                    for (ci, name) in names.iter().enumerate() {
                        rec.insert(
                            name.clone(),
                            std::mem::replace(&mut cols[ci][k], Value::Null),
                        );
                    }
                    Value::Obj(rec)
                })
                .collect()
        }
        RowEmit::Col(c) => {
            let Some(cols) = derived else {
                unreachable!("column emit without derived columns");
            };
            (0..sel.len())
                .map(|k| std::mem::replace(&mut cols[*c][k], Value::Null))
                .collect()
        }
        RowEmit::Value(prog) => run_program(prog, batch, sel, derived.as_deref(), stage, tracker),
    }
}

/// Run one row-local stage over the current selection.
fn run_stage(
    vs: &VecStage,
    batch: &ColumnBatch,
    sel: &mut Vec<u32>,
    derived: &mut Option<Vec<Vec<Value>>>,
    tracker: &mut ErrTracker,
) {
    match vs {
        VecStage::Filter(prog) => apply_filter(prog, batch, sel, derived, tracker),
        VecStage::Project(progs) => {
            let cols: Vec<Vec<Value>> = progs
                .iter()
                .map(|p| run_program(p, batch, sel, derived.as_deref(), 0, tracker))
                .collect();
            *derived = Some(cols);
            compact_poisoned(sel, derived, tracker);
        }
        VecStage::Fused { pred, progs } => run_fused(pred, progs, batch, sel, derived, tracker),
    }
}

/// Run one stage chain with its aligned promoted predicate trees: a stage
/// whose tree applies (and whose batch state is clean) collapses to one
/// fused selection-mask pass; everything else runs the generic stage.
/// Returns `false` when the batch is exhausted (empty selection, no
/// pending errors).
fn run_stages(
    stages: &[VecStage],
    preds: Option<&[Option<PredTree>]>,
    batch: &ColumnBatch,
    sel: &mut Vec<u32>,
    derived: &mut Option<Vec<Vec<Value>>>,
    tracker: &mut ErrTracker,
) -> bool {
    for (si, vs) in stages.iter().enumerate() {
        let tree = preds.and_then(|p| p.get(si)).and_then(Option::as_ref);
        let fused = match tree {
            // Predicate trees read physical scan columns and never error,
            // so they only engage on a clean, un-projected batch.
            Some(tree) if derived.is_none() && tracker.is_empty() => pred_mask(tree, batch, sel),
            _ => None,
        };
        match fused {
            Some(mask) => {
                let mut w = 0usize;
                for i in 0..sel.len() {
                    let lane = sel[i];
                    sel[w] = lane;
                    w += mask[i] as usize;
                }
                sel.truncate(w);
            }
            None => run_stage(vs, batch, sel, derived, tracker),
        }
        if sel.is_empty() && tracker.is_empty() {
            return false;
        }
    }
    true
}

/// Run one batch of records through the pipeline into the morsel sink.
/// `spec` is the promoted kernel plan, when this query's program is hot
/// enough to have one; `stats` accumulates per-batch dictionary
/// observability counters.
fn process_batch(
    vp: &VecPipeline,
    rt: Option<&JoinRuntime<'_>>,
    spec: Option<&KernelPlan>,
    records: &[&Record],
    sink: &mut MorselSink<'_>,
    stats: &mut RangeStats,
) -> Result<()> {
    if let Some(spec) = spec {
        if let (None, Some(direct)) = (rt, spec.direct.as_ref()) {
            // Fully fused pipeline: skip column materialization entirely.
            // No batch means no dictionary builds, so the dict counters
            // stay at the generic runs' values.
            return process_direct(vp, spec, direct, records, sink);
        }
    }
    let batch = ColumnBatch::from_records(records, &vp.scan_fields);
    stats.dict_columns += batch.dict_columns();
    stats.dict_demoted += batch.dict_demoted();
    let mut sel: Vec<u32> = (0..records.len() as u32).collect();
    let mut derived: Option<Vec<Vec<Value>>> = None;
    let mut tracker = ErrTracker::default();

    if !run_stages(
        &vp.pre_stages,
        spec.map(|s| s.pre_preds.as_slice()),
        &batch,
        &mut sel,
        &mut derived,
        &mut tracker,
    ) {
        return Ok(());
    }
    if let Some(join) = &vp.join {
        let Some(rt) = rt else {
            return Err(EngineError::exec("join runtime missing (executor bug)"));
        };
        run_join(
            join,
            rt,
            &batch,
            records,
            &mut sel,
            &mut derived,
            &mut tracker,
        );
        if sel.is_empty() && tracker.is_empty() {
            return Ok(());
        }
    }
    if !run_stages(
        &vp.stages,
        spec.map(|s| s.stage_preds.as_slice()),
        &batch,
        &mut sel,
        &mut derived,
        &mut tracker,
    ) {
        return Ok(());
    }

    match &vp.terminal {
        VecTerminal::Collect(emit) => {
            let rows = emit_rows(emit, &batch, records, &sel, &mut derived, 0, &mut tracker);
            match sink.limit() {
                None => {
                    if let Some(e) = tracker.first_err() {
                        return Err(e);
                    }
                    for row in rows {
                        sink.push(row)?;
                    }
                }
                Some(_) => {
                    // Early-exit limit: replay rows and recorded errors in
                    // lane order; the sink stops at whichever settles the
                    // limit first — the serial `take(n)`'s event order.
                    let mut events: BTreeMap<u32, Result<Value>> = tracker
                        .errs
                        .iter()
                        .map(|(&l, (_, e))| (l, Err(e.clone())))
                        .collect();
                    for (&lane, row) in sel.iter().zip(rows) {
                        events.entry(lane).or_insert(Ok(row));
                    }
                    for (_, event) in events {
                        if sink.satisfied() {
                            break;
                        }
                        match event {
                            Ok(row) => sink.push(row)?,
                            Err(e) => {
                                sink.record_err(e);
                                break;
                            }
                        }
                    }
                }
            }
        }
        VecTerminal::Sort { emit, keys } => {
            let key_vals: Vec<Vec<Value>> = keys
                .iter()
                .enumerate()
                .map(|(ki, (p, _))| {
                    run_program(p, &batch, &sel, derived.as_deref(), ki as u32, &mut tracker)
                })
                .collect();
            let rows = emit_rows(
                emit,
                &batch,
                records,
                &sel,
                &mut derived,
                keys.len() as u32,
                &mut tracker,
            );
            if let Some(e) = tracker.first_err() {
                return Err(e);
            }
            let mut key_vals = key_vals;
            for (k, row) in rows.into_iter().enumerate() {
                let key = keys
                    .iter()
                    .zip(key_vals.iter_mut())
                    .map(|((_, desc), vals)| {
                        let v = OrdValue(std::mem::replace(&mut vals[k], Value::Null));
                        if *desc {
                            SortKey::Desc(v)
                        } else {
                            SortKey::Asc(v)
                        }
                    })
                    .collect();
                sink.push_keyed(key, row);
            }
        }
        VecTerminal::Agg { keys, args } => {
            // The fused scan→filter→aggregate kernel: no key/argument
            // program materialization at all. Only on a clean batch (the
            // fold is error-free and `saw_any` must reflect real lanes).
            if let Some(fused) = spec.and_then(|s| s.agg.as_ref()) {
                if derived.is_none()
                    && tracker.is_empty()
                    && !sel.is_empty()
                    && fold_fused(fused, &batch, &sel, sink)
                {
                    return Ok(());
                }
            }
            fold_aggregates(keys, args, &batch, &sel, &derived, &mut tracker, sink)?;
        }
    }
    Ok(())
}

/// Fold surviving lanes into the aggregate sink, reproducing the serial
/// per-row error order: for each lane in scan order, group-key errors come
/// before any accumulator update, and the update of aggregate `j` runs
/// before the argument error of aggregate `j+1`.
#[allow(clippy::too_many_arguments)]
fn fold_aggregates(
    keys: &[ExprProgram],
    args: &[Option<ExprProgram>],
    batch: &ColumnBatch,
    sel: &[u32],
    derived: &Option<Vec<Vec<Value>>>,
    tracker: &mut ErrTracker,
    sink: &mut MorselSink<'_>,
) -> Result<()> {
    let nkeys = keys.len() as u32;
    let mut key_vals: Vec<Vec<Value>> = keys
        .iter()
        .enumerate()
        .map(|(ki, p)| run_program(p, batch, sel, derived.as_deref(), ki as u32, tracker))
        .collect();
    let arg_vals: Vec<Option<Vec<Value>>> = args
        .iter()
        .enumerate()
        .map(|(ai, p)| {
            p.as_ref().map(|p| {
                run_program(
                    p,
                    batch,
                    sel,
                    derived.as_deref(),
                    nkeys + ai as u32,
                    tracker,
                )
            })
        })
        .collect();

    for (k, &lane) in sel.iter().enumerate() {
        // Errors on earlier (already filtered-out or join-poisoned) lanes
        // fire before this lane folds — the serial scan hit that row
        // first.
        if let Some((pl, _, e)) = tracker.first() {
            if pl < lane {
                return Err(e.clone());
            }
        }
        let lane_poison = tracker.get(lane).map(|(s, e)| (s, e.clone()));
        if let Some((s, e)) = &lane_poison {
            if *s < nkeys {
                return Err(e.clone());
            }
        }
        let key: Vec<OrdValue> = key_vals
            .iter_mut()
            .map(|vals| OrdValue(std::mem::replace(&mut vals[k], Value::Null)))
            .collect();
        // An argument-program error at stage `nkeys + j` lets updates
        // 0..j run first: an earlier aggregate's update error (e.g. SUM
        // over a string) outranks a later aggregate's evaluation error,
        // exactly as the row loop interleaves them.
        let upto = match &lane_poison {
            Some((s, _)) => (*s - nkeys) as usize,
            None => args.len(),
        };
        let lane_args: Vec<Option<&Value>> = arg_vals
            .iter()
            .map(|vals| vals.as_ref().map(|v| &v[k]))
            .collect();
        sink.push_agg(key, &lane_args[..upto])?;
        if let Some((_, e)) = lane_poison {
            return Err(e);
        }
    }
    if let Some(e) = tracker.first_err() {
        return Err(e);
    }
    Ok(())
}

/// Per-range execution counters: batches actually processed, plus the
/// dictionary observability totals (string columns built, and how many
/// overflowed `DICT_CAP` and demoted to generic value lanes).
#[derive(Debug, Clone, Copy, Default)]
pub(super) struct RangeStats {
    pub(super) batches: usize,
    pub(super) dict_columns: usize,
    pub(super) dict_demoted: usize,
}

/// Scan `[lo, hi)` of the morsel domain (heap slots, or a chunk of the
/// materialized rid list) in `batch_rows`-sized batches, feeding each
/// through the pipeline into `sink`. Returns the per-range counters: the
/// loop stops as soon as the sink is satisfied (its own early-exit limit)
/// or the shared `stop` flag latches (another worker's morsel settled the
/// query).
#[allow(clippy::too_many_arguments)]
pub(super) fn run_range(
    table: &Table,
    rids: Option<&[RecordId]>,
    lo: usize,
    hi: usize,
    vp: &VecPipeline,
    rt: Option<&JoinRuntime<'_>>,
    spec: Option<&KernelPlan>,
    batch_rows: usize,
    sink: &mut MorselSink<'_>,
    stop: Option<&AtomicBool>,
) -> Result<RangeStats> {
    let step = batch_rows.max(1);
    let halted =
        |sink: &MorselSink<'_>| sink.satisfied() || stop.is_some_and(|s| s.load(Ordering::Relaxed));
    let mut stats = RangeStats::default();
    let mut refs: Vec<&Record> = Vec::with_capacity(step.min(hi.saturating_sub(lo)));
    match rids {
        None => {
            let mut start = lo;
            while start < hi {
                if halted(sink) {
                    break;
                }
                let end = (start + step).min(hi);
                refs.clear();
                refs.extend(table.heap().scan_range(start, end).map(|(_, rec)| rec));
                process_batch(vp, rt, spec, &refs, sink, &mut stats)?;
                stats.batches += 1;
                start = end;
            }
        }
        Some(rids) => {
            for chunk in rids[lo..hi].chunks(step) {
                if halted(sink) {
                    break;
                }
                refs.clear();
                let mut dangling = None;
                for rid in chunk {
                    match table.get(*rid) {
                        Some(rec) => refs.push(rec),
                        None => {
                            dangling = Some(EngineError::exec("dangling index entry"));
                            break;
                        }
                    }
                }
                match dangling {
                    None => {
                        process_batch(vp, rt, spec, &refs, sink, &mut stats)?;
                        stats.batches += 1;
                    }
                    Some(e) => {
                        // Under an early-exit limit the rows before the
                        // dangling rid may still satisfy the query on
                        // their own; feed them, then record the error for
                        // the merge walk to place.
                        if sink.limit().is_some() {
                            process_batch(vp, rt, spec, &refs, sink, &mut stats)?;
                            stats.batches += 1;
                            if !sink.satisfied() {
                                sink.record_err(e);
                            }
                            break;
                        }
                        return Err(e);
                    }
                }
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::eval::eval;
    use polyframe_datamodel::record;

    fn rows() -> Vec<Record> {
        vec![
            record! {"a" => 1i64, "s" => "x", "d" => 1.5},
            record! {"a" => 2i64, "s" => "y", "n" => Value::Null},
            record! {"a" => Value::Null, "s" => "x"},
            record! {"s" => "z", "d" => 4.0},
            record! {"a" => 5i64},
            record! {"a" => -3i64, "s" => "x", "d" => f64::NAN},
            record! {"a" => 7i64, "s" => "w", "d" => 2.0},
        ]
    }

    /// Compile `expr`, run it over a batch, and compare every lane to the
    /// row evaluator.
    fn assert_program_matches_eval(expr: &Scalar) {
        let recs = rows();
        let refs: Vec<&Record> = recs.iter().collect();
        let mut c = Compiler::scan();
        let prog = c.compile_expr(expr).expect("compilable");
        let batch = ColumnBatch::from_records(&refs, &c.scan_fields);
        let sel: Vec<u32> = (0..refs.len() as u32).collect();
        let mut tracker = ErrTracker::default();
        let got = run_program(&prog, &batch, &sel, None, 0, &mut tracker);
        for (k, rec) in recs.iter().enumerate() {
            let row = Value::Obj(rec.clone());
            match eval(expr, &row) {
                Ok(v) => {
                    assert!(!tracker.poisoned(k as u32), "lane {k} wrongly poisoned");
                    // Debug-compare: Value's PartialEq is IEEE, so NaN
                    // never equals itself even when both paths agree.
                    assert_eq!(
                        format!("{:?}", got[k]),
                        format!("{v:?}"),
                        "lane {k} diverges for {expr:?}"
                    );
                }
                Err(e) => {
                    let (_, got_e) = tracker.get(k as u32).expect("lane poisoned");
                    assert_eq!(got_e.to_string(), e.to_string(), "lane {k} error");
                }
            }
        }
    }

    fn field(name: &str) -> Scalar {
        Scalar::Field(name.into())
    }

    fn lit(v: impl Into<Value>) -> Scalar {
        Scalar::Lit(v.into())
    }

    fn bin(op: BinOp, a: Scalar, b: Scalar) -> Scalar {
        Scalar::Bin(op, Box::new(a), Box::new(b))
    }

    #[test]
    fn programs_match_row_eval() {
        for expr in [
            bin(BinOp::Lt, field("a"), lit(3i64)),
            bin(BinOp::Eq, field("s"), lit("x")),
            bin(BinOp::Ne, lit("x"), field("s")),
            bin(BinOp::Add, field("a"), lit(10i64)),
            bin(BinOp::Add, field("a"), field("d")),
            bin(BinOp::Div, field("a"), lit(0i64)),
            Scalar::Is(Box::new(field("n")), IsKind::Null, false),
            Scalar::Is(Box::new(field("a")), IsKind::Missing, true),
            Scalar::Un(
                UnaryOp::Not,
                Box::new(bin(BinOp::Gt, field("a"), lit(1i64))),
            ),
            Scalar::Call(ScalarFunc::Upper, vec![field("s")]),
            bin(
                BinOp::And,
                bin(BinOp::Ge, field("a"), lit(1i64)),
                bin(BinOp::Eq, field("s"), lit("x")),
            ),
            // Errors on some lanes only (string minus int).
            bin(BinOp::Sub, field("s"), lit(1i64)),
            // Float kernels: double column vs numeric literal (NaN lanes
            // included), int column vs double literal.
            bin(BinOp::Lt, field("d"), lit(2.0)),
            bin(BinOp::Ge, lit(2.0), field("d")),
            bin(BinOp::Eq, field("d"), lit(1.5)),
            bin(BinOp::Ne, field("d"), lit(4i64)),
            bin(BinOp::Add, field("d"), lit(0.5)),
            bin(BinOp::Mul, lit(3.0), field("d")),
            bin(BinOp::Lt, field("a"), lit(2.5)),
            bin(BinOp::Sub, field("a"), lit(0.5)),
        ] {
            assert_program_matches_eval(&expr);
        }
    }

    #[test]
    fn null_fast_col_col_kernels_match_row_eval() {
        // Fully-present records: every column is all-valid, so the
        // branch-free typed loops (including column-vs-column) engage.
        let recs: Vec<Record> = (0..8)
            .map(|i| {
                record! {
                    "a" => i as i64,
                    "b" => (7 - i) as i64,
                    "x" => i as f64 * 0.5,
                    "y" => if i == 3 { f64::NAN } else { 2.0 - i as f64 },
                    "s" => if i % 2 == 0 { "even" } else { "odd" }
                }
            })
            .collect();
        let refs: Vec<&Record> = recs.iter().collect();
        for expr in [
            bin(BinOp::Lt, field("a"), field("b")),
            bin(BinOp::Eq, field("a"), field("b")),
            bin(BinOp::Add, field("a"), field("b")),
            bin(BinOp::Mul, field("a"), field("b")),
            bin(BinOp::Le, field("x"), field("y")),
            bin(BinOp::Ne, field("x"), field("y")),
            bin(BinOp::Sub, field("x"), field("y")),
            bin(BinOp::Gt, field("a"), lit(3i64)),
            bin(BinOp::Lt, field("x"), lit(1.25)),
            bin(BinOp::Eq, field("s"), lit("even")),
        ] {
            let recs2 = recs.clone();
            let refs2: Vec<&Record> = recs2.iter().collect();
            let mut c = Compiler::scan();
            let prog = c.compile_expr(&expr).expect("compilable");
            let batch = ColumnBatch::from_records(&refs, &c.scan_fields);
            for (ci, _) in c.scan_fields.iter().enumerate() {
                assert!(batch.all_valid(ci), "expected all-valid batch");
            }
            let sel: Vec<u32> = (0..refs.len() as u32).collect();
            let mut tracker = ErrTracker::default();
            let got = run_program(&prog, &batch, &sel, None, 0, &mut tracker);
            assert!(tracker.is_empty());
            for (k, rec) in refs2.iter().enumerate() {
                let want = eval(&expr, &Value::Obj((*rec).clone())).expect("row eval");
                // Debug-compare so NaN lanes (NaN != NaN) still count as
                // byte-identical.
                assert_eq!(
                    format!("{:?}", got[k]),
                    format!("{want:?}"),
                    "lane {k} diverges for {expr:?}"
                );
            }
        }
    }

    #[test]
    fn pred_tree_masks_match_generic_filter() {
        let recs = rows();
        let refs: Vec<&Record> = recs.iter().collect();
        let and = |a, b| bin(BinOp::And, a, b);
        let or = |a, b| bin(BinOp::Or, a, b);
        for expr in [
            and(
                bin(BinOp::Lt, field("a"), lit(3i64)),
                bin(BinOp::Eq, field("s"), lit("x")),
            ),
            or(
                bin(BinOp::Ge, field("a"), lit(5i64)),
                bin(BinOp::Lt, field("d"), lit(2.0)),
            ),
            or(
                and(
                    bin(BinOp::Gt, field("a"), lit(0i64)),
                    bin(BinOp::Ne, field("s"), lit("y")),
                ),
                Scalar::Is(Box::new(field("d")), IsKind::Missing, false),
            ),
            and(
                Scalar::Is(Box::new(field("n")), IsKind::Null, false),
                bin(BinOp::Gt, field("a"), lit(0i64)),
            ),
            // Single leaves are valid (degenerate) trees too.
            bin(BinOp::Le, field("d"), lit(2.5)),
            Scalar::Is(Box::new(field("a")), IsKind::Null, true),
        ] {
            let mut c = Compiler::scan();
            let prog = c.compile_expr(&expr).expect("compilable");
            let tree = pred_tree(&prog).expect("fusable predicate");
            let batch = ColumnBatch::from_records(&refs, &c.scan_fields);
            let sel: Vec<u32> = (0..refs.len() as u32).collect();
            let mask = pred_mask(&tree, &batch, &sel).expect("typed mask");
            // Reference: generic truthiness over the program output.
            let mut tracker = ErrTracker::default();
            let vals = run_program(&prog, &batch, &sel, None, 0, &mut tracker);
            assert!(tracker.is_empty());
            let want: Vec<bool> = vals.iter().map(|v| truthy(v).is_true()).collect();
            assert_eq!(mask, want, "mask divergence for {expr:?}");
        }
        // Shapes outside the fusable grammar are rejected, not mis-fused.
        for expr in [
            bin(BinOp::Add, field("a"), lit(1i64)),
            Scalar::Un(
                UnaryOp::Not,
                Box::new(bin(BinOp::Lt, field("a"), lit(3i64))),
            ),
            bin(BinOp::Lt, field("a"), field("d")),
        ] {
            let mut c = Compiler::scan();
            let prog = c.compile_expr(&expr).expect("compilable");
            assert!(pred_tree(&prog).is_none(), "should not fuse {expr:?}");
        }
    }

    #[test]
    fn fused_agg_fold_matches_generic_updates() {
        use crate::plan::logical::{AggExpr, AggFunc};
        let aggs = vec![
            AggExpr {
                name: "c".into(),
                func: AggFunc::Count,
                arg: AggArg::Star,
            },
            AggExpr {
                name: "s".into(),
                func: AggFunc::Sum,
                arg: AggArg::Expr(field("a")),
            },
            AggExpr {
                name: "m".into(),
                func: AggFunc::Min,
                arg: AggArg::Expr(field("d")),
            },
            AggExpr {
                name: "x".into(),
                func: AggFunc::Max,
                arg: AggArg::Expr(field("a")),
            },
        ];
        let recs = rows();
        let refs: Vec<&Record> = recs.iter().collect();
        let fields = vec!["a".to_string(), "d".to_string()];
        let batch = ColumnBatch::from_records(&refs, &fields);
        let sel: Vec<u32> = (0..refs.len() as u32).collect();
        let fused = FusedAgg {
            cols: vec![None, Some(0), Some(1), Some(0)],
        };
        for mode in [AggMode::Complete, AggMode::Partial] {
            let group_by: Vec<(String, Scalar)> = Vec::new();
            let mut sink =
                MorselSink::Aggregate(super::super::AggState::new(&group_by, &aggs, mode));
            assert!(fold_fused(&fused, &batch, &sel, &mut sink));
            let MorselSink::Aggregate(state) = sink else {
                unreachable!("aggregate sink");
            };
            let got = state.finish();
            // Reference: the generic per-row fold.
            let mut want_state = super::super::AggState::new(&group_by, &aggs, mode);
            for rec in &recs {
                want_state.push(&Value::Obj(rec.clone())).expect("push");
            }
            let want = want_state.finish();
            assert_eq!(
                format!("{got:?}"),
                format!("{want:?}"),
                "fused fold diverges in {mode:?} mode"
            );
        }
    }

    #[test]
    fn specialize_covers_filter_and_scalar_agg_shapes() {
        // A scan→filter→aggregate pipeline specializes both the predicate
        // and the fold; a grouped or expression-argument terminal only the
        // predicate.
        let mut c = Compiler::scan();
        let pred = c
            .compile_expr(&bin(BinOp::Lt, field("a"), lit(3i64)))
            .expect("pred");
        let arg = c.compile_expr(&field("d")).expect("arg");
        let vp = VecPipeline {
            scan_fields: c.scan_fields.clone(),
            pre_stages: Vec::new(),
            join: None,
            stages: vec![VecStage::Filter(pred)],
            terminal: VecTerminal::Agg {
                keys: Vec::new(),
                args: vec![None, Some(arg)],
            },
        };
        let plan = specialize(&vp).expect("specializable");
        assert!(plan.stage_preds[0].is_some());
        let agg = plan.agg.as_ref().expect("fused agg");
        assert_eq!(agg.cols, vec![None, Some(1)]);
        // Fingerprints are stable for one shape and differ across shapes.
        assert_eq!(fingerprint("t", &vp), fingerprint("t", &vp));
        assert_ne!(fingerprint("t", &vp), fingerprint("u", &vp));
        // An expression argument (instructions) blocks the fused fold.
        let mut c2 = Compiler::scan();
        let expr_arg = c2
            .compile_expr(&bin(BinOp::Add, field("a"), lit(1i64)))
            .expect("arg");
        let vp2 = VecPipeline {
            scan_fields: c2.scan_fields.clone(),
            pre_stages: Vec::new(),
            join: None,
            stages: Vec::new(),
            terminal: VecTerminal::Agg {
                keys: Vec::new(),
                args: vec![Some(expr_arg)],
            },
        };
        assert!(specialize(&vp2).is_none());
    }

    #[test]
    fn poisoned_lanes_report_lowest_lane_first() {
        let recs = rows();
        let refs: Vec<&Record> = recs.iter().collect();
        let mut c = Compiler::scan();
        // `s - 1` errors on every lane with a string.
        let prog = c
            .compile_expr(&bin(BinOp::Sub, field("s"), lit(1i64)))
            .unwrap();
        let batch = ColumnBatch::from_records(&refs, &c.scan_fields);
        let sel: Vec<u32> = (0..refs.len() as u32).collect();
        let mut tracker = ErrTracker::default();
        run_program(&prog, &batch, &sel, None, 0, &mut tracker);
        let (lane, _, _) = tracker.first().expect("errors recorded");
        assert_eq!(lane, 0, "lowest lane wins");
    }

    #[test]
    fn scan_env_rejects_row_scoped_references() {
        let mut c = Compiler::scan();
        assert!(c.compile_expr(&Scalar::Input).is_err());
        assert!(c
            .compile_expr(&Scalar::FieldOf("l".into(), "x".into()))
            .is_err());
        // BindingRef evaluates exactly like Field — it compiles as a scan
        // column.
        let prog = c.compile_expr(&Scalar::BindingRef("r".into())).unwrap();
        assert_eq!(prog.result, Src::Col(0));
        assert_eq!(c.scan_fields, vec!["r".to_string()]);
    }

    #[test]
    fn join_env_maps_references_to_join_columns() {
        let mut c = Compiler::scan();
        c.env = Env::Join {
            probe: "l".into(),
            build: "r".into(),
        };
        // A probe-side field reads its scan column through the join.
        let p = c
            .compile_expr(&Scalar::FieldOf("l".into(), "x".into()))
            .unwrap();
        assert_eq!(p.result, Src::Col(0));
        assert_eq!(c.join_cols[0], JoinCol::ProbeField(0));
        assert_eq!(c.scan_fields, vec!["x".to_string()]);
        // Whole-binding references.
        let p = c.compile_expr(&field("l")).unwrap();
        assert_eq!(p.result, Src::Col(1));
        assert_eq!(c.join_cols[1], JoinCol::ProbeRow);
        let p = c.compile_expr(&Scalar::BindingRef("r".into())).unwrap();
        assert_eq!(p.result, Src::Col(2));
        assert_eq!(c.join_cols[2], JoinCol::BuildRow);
        // Build-side field.
        let p = c
            .compile_expr(&Scalar::FieldOf("r".into(), "y".into()))
            .unwrap();
        assert_eq!(p.result, Src::Col(3));
        assert_eq!(c.join_cols[3], JoinCol::BuildField("y".into()));
        // The whole pair row.
        let p = c.compile_expr(&Scalar::Input).unwrap();
        assert_eq!(p.result, Src::Col(4));
        assert_eq!(c.join_cols[4], JoinCol::Pair);
        // A name that is neither binding is Missing on the pair record.
        let p = c.compile_expr(&field("z")).unwrap();
        assert_eq!(p.result, Src::Lit(0));
        assert_eq!(p.lits[0], Value::Missing);
        // Repeated references reuse the same join column.
        let p = c.compile_expr(&field("l")).unwrap();
        assert_eq!(p.result, Src::Col(1));
        assert_eq!(c.join_cols.len(), 5);
    }

    #[test]
    fn filter_fast_path_matches_generic() {
        let recs = rows();
        let refs: Vec<&Record> = recs.iter().collect();
        for expr in [
            bin(BinOp::Lt, field("a"), lit(3i64)),
            bin(BinOp::Gt, lit(3i64), field("a")),
            bin(BinOp::Eq, field("s"), lit("x")),
            bin(BinOp::Ne, field("s"), lit(1i64)),
        ] {
            let mut c = Compiler::scan();
            let prog = c.compile_expr(&expr).unwrap();
            let batch = ColumnBatch::from_records(&refs, &c.scan_fields);
            let mut fast: Vec<u32> = (0..refs.len() as u32).collect();
            let mut tracker = ErrTracker::default();
            apply_filter(&prog, &batch, &mut fast, &mut None, &mut tracker);
            // Reference: generic truthiness over the program output.
            let sel: Vec<u32> = (0..refs.len() as u32).collect();
            let mut t2 = ErrTracker::default();
            let vals = run_program(&prog, &batch, &sel, None, 0, &mut t2);
            let slow: Vec<u32> = sel
                .iter()
                .zip(&vals)
                .filter(|(_, v)| truthy(v).is_true())
                .map(|(&l, _)| l)
                .collect();
            assert_eq!(fast, slow, "filter divergence for {expr:?}");
        }
    }

    #[test]
    fn fused_fast_matches_composed_stages() {
        let recs = rows();
        let refs: Vec<&Record> = recs.iter().collect();
        for pred_expr in [
            bin(BinOp::Lt, field("a"), lit(3i64)),
            bin(BinOp::Eq, field("s"), lit("x")),
        ] {
            let mut c = Compiler::scan();
            let pred = c.compile_expr(&pred_expr).unwrap();
            let progs = vec![
                c.compile_expr(&field("a")).unwrap(),
                c.compile_expr(&field("s")).unwrap(),
                c.compile_expr(&lit(7i64)).unwrap(),
            ];
            let batch = ColumnBatch::from_records(&refs, &c.scan_fields);
            // Fast path.
            let mut fast_sel: Vec<u32> = (0..refs.len() as u32).collect();
            let fast_cols =
                fused_fast(&pred, &progs, &batch, &mut fast_sel).expect("fast path applies");
            // General composition: filter then project.
            let mut sel: Vec<u32> = (0..refs.len() as u32).collect();
            let mut derived = None;
            let mut tracker = ErrTracker::default();
            apply_filter(&pred, &batch, &mut sel, &mut derived, &mut tracker);
            let slow_cols: Vec<Vec<Value>> = progs
                .iter()
                .map(|p| run_program(p, &batch, &sel, None, 0, &mut tracker))
                .collect();
            assert!(tracker.is_empty());
            assert_eq!(fast_sel, sel, "selection divergence for {pred_expr:?}");
            assert_eq!(fast_cols, slow_cols, "column divergence for {pred_expr:?}");
        }
    }

    #[test]
    fn merge_stars_pair_overlays_build_fields() {
        let probe = record! {"a" => 1i64, "b" => "p"};
        // Build object overlays shared fields.
        let build = Value::Obj(record! {"b" => "q", "c" => 3i64});
        let merged = merge_stars_pair(&probe, BuildRef::Val(&build), "r").unwrap();
        assert_eq!(
            merged,
            Value::Obj(record! {"a" => 1i64, "b" => "q", "c" => 3i64})
        );
        // Unknown build side (left-join miss) contributes nothing.
        for miss in [Value::Null, Value::Missing] {
            let merged = merge_stars_pair(&probe, BuildRef::Val(&miss), "r").unwrap();
            assert_eq!(merged, Value::Obj(probe.clone()));
        }
        // Non-record build value is the row path's flatten error.
        let err = merge_stars_pair(&probe, BuildRef::Val(&Value::Int(9)), "r").unwrap_err();
        assert_eq!(
            err.to_string(),
            EngineError::exec("cannot flatten non-record binding r (int)").to_string()
        );
    }
}
