//! Hash-set DISTINCT for the vectorized path.
//!
//! The row path deduplicates with `BTreeSet<OrdValue>` — O(log n) deep
//! `cmp_total` comparisons per row. [`DistinctSet`] replaces the tree
//! with hash probing (O(1) bucket check + one verifying comparison) for
//! the *hash-safe* value domain, where hashing provably agrees with
//! `cmp_total` equality (see [`super::join`]).
//!
//! The first non-hash-safe row (`NaN` anywhere inside it, or an integer
//! past 2^53) permanently degrades the set to the row path's actual
//! `BTreeSet`, rebuilt by replaying the kept rows in first-seen order —
//! the same insertion sequence the row path performed, so the tree (and
//! therefore every later broken-`Ord` membership test) is identical.

use super::aggregate::OrdValue;
use super::join::{hash_safe, value_hash};
use polyframe_datamodel::{cmp_total, Value};
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};

/// Order-preserving distinct filter, byte-identical to
/// `BTreeSet<OrdValue>` insertion.
pub(crate) struct DistinctSet {
    /// Kept values in first-seen order (the replay sequence).
    keys: Vec<Value>,
    buckets: HashMap<u64, Vec<u32>>,
    tree: Option<BTreeSet<OrdValue>>,
}

impl DistinctSet {
    pub(crate) fn new() -> DistinctSet {
        DistinctSet {
            keys: Vec::new(),
            buckets: HashMap::new(),
            tree: None,
        }
    }

    /// Number of kept (distinct) values so far.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if `row` is new (the caller should keep it), false if it
    /// duplicates an earlier row — exactly `BTreeSet::insert`'s answer on
    /// the row path.
    pub(crate) fn insert(&mut self, row: &Value) -> bool {
        if self.tree.is_none() && !hash_safe(row) {
            // Degrade: replay the kept rows in first-seen order. Within
            // the hash-safe prefix cmp_total is a genuine total order, so
            // this rebuilds the row path's tree node-for-node.
            let mut tree = BTreeSet::new();
            for k in &self.keys {
                tree.insert(OrdValue(k.clone()));
            }
            self.tree = Some(tree);
        }
        if let Some(tree) = &mut self.tree {
            let fresh = tree.insert(OrdValue(row.clone()));
            if fresh {
                self.keys.push(row.clone());
            }
            return fresh;
        }
        let h = value_hash(row);
        let bucket = self.buckets.entry(h).or_default();
        for &ki in bucket.iter() {
            if cmp_total(&self.keys[ki as usize], row) == Ordering::Equal {
                return false;
            }
        }
        let idx = self.keys.len() as u32;
        self.keys.push(row.clone());
        bucket.push(idx);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyframe_datamodel::record;

    /// Reference: the row path's dedup.
    fn reference(rows: &[Value]) -> Vec<Value> {
        let mut seen: BTreeSet<OrdValue> = BTreeSet::new();
        let mut out = Vec::new();
        for row in rows {
            if seen.insert(OrdValue(row.clone())) {
                out.push(row.clone());
            }
        }
        out
    }

    fn assert_matches_reference(rows: &[Value]) {
        let mut set = DistinctSet::new();
        let kept: Vec<Value> = rows.iter().filter(|r| set.insert(r)).cloned().collect();
        assert_eq!(kept, reference(rows));
        assert_eq!(set.len(), kept.len());
    }

    #[test]
    fn dedups_mixed_safe_values() {
        assert_matches_reference(&[
            Value::Int(1),
            Value::str("a"),
            Value::Int(1),
            Value::Double(1.0), // cmp_total-equal to Int(1): duplicate
            Value::Null,
            Value::Null,
            Value::Obj(record! {"a" => 1i64}),
            Value::Obj(record! {"a" => 1i64}),
            Value::Obj(record! {"a" => 2i64}),
            Value::Missing,
        ]);
    }

    #[test]
    fn degrades_on_nan_and_matches_tree() {
        // NaN compares Equal to every number under cmp_total, so what
        // counts as a "duplicate" after it depends on tree shape. The
        // degraded set must agree with the row path exactly.
        assert_matches_reference(&[
            Value::Int(3),
            Value::Int(5),
            Value::Double(f64::NAN),
            Value::Int(3),
            Value::Int(4),
            Value::Double(f64::NAN),
            Value::str("s"),
        ]);
    }

    #[test]
    fn degrades_on_oversized_int() {
        let big = (1i64 << 53) + 1;
        assert_matches_reference(&[
            Value::Int(big),
            Value::Double(big as f64),
            Value::Int(big),
            Value::Int(1),
        ]);
    }

    #[test]
    fn nested_rows_dedup() {
        let row = |a: i64, s: &str| Value::Obj(record! {"a" => a, "s" => s});
        assert_matches_reference(&[
            row(1, "x"),
            row(1, "y"),
            row(1, "x"),
            row(2, "x"),
            row(1, "x"),
        ]);
    }
}
