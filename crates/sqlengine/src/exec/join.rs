//! Hash table over [`Value`] join keys for the vectorized hash join.
//!
//! The row-path hash join builds a `BTreeMap<OrdValue, Vec<Value>>` and
//! probes it with `cmp_total`-ordered lookups — O(log n) three-way
//! comparisons per probe. This table replaces that with open hashing:
//! O(1) bucket probes verified by a single `cmp_total == Equal` check.
//!
//! Byte-identity with the tree is the contract, and it hinges on one
//! subtlety: `cmp_total` is only a *genuine* total order on a subset of
//! the value domain. `NaN` compares `Equal` to every number (broken
//! `Ord`), and `Int`/`Double` cross-type comparison goes through `f64`,
//! which is exact only for integers up to 2^53. Inside that *hash-safe*
//! subset, "hash equal + `cmp_total` verifies `Equal`" coincides exactly
//! with tree lookup, so the hash table is a drop-in replacement. Outside
//! it, equality becomes order- and tree-shape-dependent, so the table
//! **degrades to the row path's actual structure**: it rebuilds the
//! `BTreeMap` by replaying the distinct keys in first-seen order — the
//! same insertion sequence the row path performed — and serves every
//! later operation from that tree. Degradation is exact, not
//! approximate: the replayed tree is node-for-node the row path's tree,
//! so even broken-`Ord` probes walk it identically.

use super::aggregate::OrdValue;
use polyframe_datamodel::{cmp_total, Value};
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::sync::OnceLock;

/// Largest integer magnitude exactly representable as an `f64`: the
/// boundary past which `cmp_total`'s Int/Double comparison loses
/// precision.
const MAX_SAFE_INT: i64 = 1 << 53;

/// True when hashing `v` (numerics as normalized `f64` bits) agrees
/// exactly with `cmp_total` equality — the precondition for serving this
/// value from the hash structures instead of the row path's tree.
pub(crate) fn hash_safe(v: &Value) -> bool {
    match v {
        Value::Missing | Value::Null | Value::Bool(_) | Value::Str(_) => true,
        Value::Int(i) => i.abs() <= MAX_SAFE_INT,
        Value::Double(d) => !d.is_nan(),
        Value::Array(items) => items.iter().all(hash_safe),
        Value::Obj(rec) => rec.iter().all(|(_, v)| hash_safe(v)),
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

#[inline]
fn fnv(h: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(h, |h, b| (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME))
}

/// FNV-1a over a hash-safe value. `Int` and `Double` hash as `f64` bits
/// (with `-0.0` normalized to `+0.0`) so cross-type `cmp_total`-equal
/// numerics collide, mirroring the comparison they must agree with.
fn hash_value(h: u64, v: &Value) -> u64 {
    match v {
        Value::Missing => fnv(h, &[0x01]),
        Value::Null => fnv(h, &[0x02]),
        Value::Bool(b) => fnv(h, &[0x03, u8::from(*b)]),
        Value::Int(i) => {
            let d = *i as f64;
            fnv(fnv(h, &[0x04]), &d.to_bits().to_le_bytes())
        }
        Value::Double(d) => {
            let d = if *d == 0.0 { 0.0 } else { *d };
            fnv(fnv(h, &[0x04]), &d.to_bits().to_le_bytes())
        }
        Value::Str(s) => fnv(fnv(h, &[0x05]), s.as_bytes()),
        Value::Array(items) => {
            let h = fnv(h, &[0x06]);
            items.iter().fold(h, hash_value)
        }
        Value::Obj(rec) => {
            // Records compare as (name, value) pairs in insertion order,
            // so hash exactly that sequence.
            let h = fnv(h, &[0x07]);
            rec.iter().fold(h, |h, (k, v)| {
                hash_value(fnv(fnv(h, &[0x08]), k.as_bytes()), v)
            })
        }
    }
}

/// Hash one value from the offset basis.
pub(crate) fn value_hash(v: &Value) -> u64 {
    hash_value(FNV_OFFSET, v)
}

/// Hash table from join-key values to build-side row indexes.
///
/// Distinct keys live in `keys` in first-seen order with their matching
/// build rows (insertion order) in `rows`; `buckets` maps hashes to key
/// indexes. `tree` is the degraded form (see module docs): pre-built
/// when a non-hash-safe *build* key forced degradation, lazily built the
/// first time a non-hash-safe *probe* key needs row-path lookup
/// semantics. `OnceLock` makes the lazy build safe under concurrent
/// probing morsels.
pub(crate) struct ValueHashTable {
    keys: Vec<Value>,
    rows: Vec<Vec<u32>>,
    buckets: HashMap<u64, Vec<u32>>,
    tree: OnceLock<BTreeMap<OrdValue, u32>>,
    build_degraded: bool,
}

impl ValueHashTable {
    pub(crate) fn new() -> ValueHashTable {
        ValueHashTable {
            keys: Vec::new(),
            rows: Vec::new(),
            buckets: HashMap::new(),
            tree: OnceLock::new(),
            build_degraded: false,
        }
    }

    /// Number of distinct keys.
    #[cfg(test)]
    pub(crate) fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// The row path's tree, replayed from the distinct keys in first-seen
    /// order. Within the hash-safe prefix that replay is exact: the row
    /// path's duplicate inserts found `Equal` nodes without restructuring
    /// the tree, and `entry()` keeps the original key, so first-seen
    /// distinct keys in first-seen order rebuild the identical B-tree.
    fn build_tree(&self) -> BTreeMap<OrdValue, u32> {
        let mut tree = BTreeMap::new();
        for (i, key) in self.keys.iter().enumerate() {
            tree.entry(OrdValue(key.clone())).or_insert(i as u32);
        }
        tree
    }

    /// Insert one build row under `key`. Unknown keys must be filtered by
    /// the caller (the row path skips them before the table).
    pub(crate) fn insert(&mut self, key: Value, row: u32) {
        if !self.build_degraded && !hash_safe(&key) {
            // First non-hash-safe build key: snap to the row path's tree
            // and stay there (its shape now matters for every later
            // broken-`Ord` lookup).
            let tree = self.build_tree();
            let _ = self.tree.set(tree);
            self.build_degraded = true;
        }
        if self.build_degraded {
            if let Some(tree) = self.tree.get_mut() {
                match tree.entry(OrdValue(key)) {
                    std::collections::btree_map::Entry::Occupied(o) => {
                        self.rows[*o.get() as usize].push(row);
                    }
                    std::collections::btree_map::Entry::Vacant(v) => {
                        let idx = self.rows.len() as u32;
                        // `keys` keeps growing so a later full rebuild (or
                        // introspection) still sees every distinct key.
                        self.keys.push(v.key().0.clone());
                        self.rows.push(vec![row]);
                        v.insert(idx);
                    }
                }
            }
            return;
        }
        let h = value_hash(&key);
        let bucket = self.buckets.entry(h).or_default();
        for &ki in bucket.iter() {
            if cmp_total(&self.keys[ki as usize], &key) == Ordering::Equal {
                self.rows[ki as usize].push(row);
                return;
            }
        }
        let idx = self.keys.len() as u32;
        self.keys.push(key);
        self.rows.push(vec![row]);
        bucket.push(idx);
    }

    /// Build-side rows matching `key`, in build insertion order — exactly
    /// `BTreeMap::get` on the row path's table. Unknown keys return no
    /// match (callers handle the join's unknown-key semantics *before*
    /// the lookup, as the row path does).
    pub(crate) fn lookup(&self, key: &Value) -> Option<&[u32]> {
        if !self.build_degraded && hash_safe(key) {
            let h = value_hash(key);
            let bucket = self.buckets.get(&h)?;
            for &ki in bucket.iter() {
                if cmp_total(&self.keys[ki as usize], key) == Ordering::Equal {
                    return Some(&self.rows[ki as usize]);
                }
            }
            return None;
        }
        // Row-path semantics required: a degraded build, or a probe key
        // (NaN, oversized int) whose equality depends on tree shape.
        let tree = self.tree.get_or_init(|| self.build_tree());
        tree.get(&OrdValue(key.clone()))
            .map(|&ki| self.rows[ki as usize].as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyframe_datamodel::record;

    /// Reference: the row path's build/probe structure.
    fn reference(pairs: &[(Value, u32)]) -> BTreeMap<OrdValue, Vec<u32>> {
        let mut tree: BTreeMap<OrdValue, Vec<u32>> = BTreeMap::new();
        for (k, r) in pairs {
            tree.entry(OrdValue(k.clone())).or_default().push(*r);
        }
        tree
    }

    fn assert_matches_reference(build: &[(Value, u32)], probes: &[Value]) {
        let mut table = ValueHashTable::new();
        for (k, r) in build {
            table.insert(k.clone(), *r);
        }
        let tree = reference(build);
        for p in probes {
            let want = tree.get(&OrdValue(p.clone())).map(|v| v.as_slice());
            assert_eq!(table.lookup(p), want, "probe {p:?}");
        }
    }

    #[test]
    fn hash_safe_boundaries() {
        assert!(hash_safe(&Value::Int(MAX_SAFE_INT)));
        assert!(!hash_safe(&Value::Int(MAX_SAFE_INT + 1)));
        assert!(hash_safe(&Value::Double(1.5)));
        assert!(!hash_safe(&Value::Double(f64::NAN)));
        assert!(hash_safe(&Value::Array(vec![Value::Int(1), Value::Null])));
        assert!(!hash_safe(&Value::Array(vec![Value::Double(f64::NAN)])));
        assert!(hash_safe(&Value::Obj(record! {"a" => 1i64})));
    }

    #[test]
    fn cross_type_numeric_keys_collide() {
        // cmp_total(Int(2), Double(2.0)) == Equal, so they must share a
        // hash and a key slot.
        assert_eq!(value_hash(&Value::Int(2)), value_hash(&Value::Double(2.0)));
        assert_eq!(
            value_hash(&Value::Double(0.0)),
            value_hash(&Value::Double(-0.0))
        );
        assert_matches_reference(
            &[(Value::Int(2), 0), (Value::Double(2.0), 1)],
            &[Value::Int(2), Value::Double(2.0), Value::Int(3)],
        );
    }

    #[test]
    fn lookup_matches_tree_on_mixed_keys() {
        let build = vec![
            (Value::Int(1), 0),
            (Value::str("a"), 1),
            (Value::Int(1), 2),
            (Value::Bool(true), 3),
            (Value::Double(1.0), 4),
            (Value::Array(vec![Value::Int(7)]), 5),
            (Value::Obj(record! {"k" => "v"}), 6),
        ];
        let probes = vec![
            Value::Int(1),
            Value::Double(1.0),
            Value::str("a"),
            Value::str("b"),
            Value::Bool(true),
            Value::Bool(false),
            Value::Array(vec![Value::Int(7)]),
            Value::Array(vec![Value::Int(8)]),
            Value::Obj(record! {"k" => "v"}),
            Value::Int(99),
        ];
        assert_matches_reference(&build, &probes);
    }

    #[test]
    fn non_safe_build_key_degrades_to_tree() {
        let build = vec![
            (Value::Int(5), 0),
            (Value::Double(f64::NAN), 1),
            (Value::Int(5), 2),
            (Value::Int(6), 3),
        ];
        // Probes include the broken-Ord case: NaN compares Equal to every
        // number, so the outcome depends on tree shape — which the table
        // reproduces exactly.
        let probes = vec![
            Value::Int(5),
            Value::Int(6),
            Value::Double(f64::NAN),
            Value::Int(7),
        ];
        assert_matches_reference(&build, &probes);
    }

    #[test]
    fn non_safe_probe_uses_row_path_tree() {
        let build = vec![(Value::Int(1), 0), (Value::Int(2), 1), (Value::Int(3), 2)];
        let mut table = ValueHashTable::new();
        for (k, r) in &build {
            table.insert(k.clone(), *r);
        }
        let tree = reference(&build);
        let nan = Value::Double(f64::NAN);
        assert_eq!(
            table.lookup(&nan),
            tree.get(&OrdValue(nan.clone())).map(|v| v.as_slice())
        );
        // Hash-safe probes still work after the lazy tree build.
        assert_eq!(table.lookup(&Value::Int(2)), Some(&[1u32][..]));
    }

    #[test]
    fn duplicate_rows_keep_insertion_order() {
        let mut table = ValueHashTable::new();
        for (i, k) in [1i64, 2, 1, 1, 2].into_iter().enumerate() {
            table.insert(Value::Int(k), i as u32);
        }
        assert_eq!(table.lookup(&Value::Int(1)), Some(&[0u32, 2, 3][..]));
        assert_eq!(table.lookup(&Value::Int(2)), Some(&[1u32, 4][..]));
        assert_eq!(table.num_keys(), 2);
    }
}
