//! Abstract syntax tree for the SQL / SQL++ subset.

use polyframe_datamodel::Value;

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT VALUE` (SQL++ only): the single item is the row itself.
    pub value_mode: bool,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Select list.
    pub items: Vec<SelectItem>,
    /// `FROM` clause (optional: `SELECT 1` is legal).
    pub from: Option<FromClause>,
    /// `WHERE` predicate.
    pub where_clause: Option<AstExpr>,
    /// `GROUP BY` keys.
    pub group_by: Vec<AstExpr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT` row count.
    pub limit: Option<u64>,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression.
    pub expr: AstExpr,
    /// Descending?
    pub desc: bool,
}

/// One entry of a select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// `t.*`
    QualifiedStar(String),
    /// `expr [AS alias]`
    Expr {
        /// The projected expression.
        expr: AstExpr,
        /// Optional output name.
        alias: Option<String>,
    },
}

/// `FROM` clause: one base item plus any number of joins.
#[derive(Debug, Clone, PartialEq)]
pub struct FromClause {
    /// The first (leftmost) item.
    pub first: FromItem,
    /// Subsequent `JOIN ... ON ...` clauses.
    pub joins: Vec<JoinClause>,
}

/// One join.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Join type.
    pub kind: JoinKind,
    /// The joined item.
    pub item: FromItem,
    /// The `ON` condition.
    pub on: AstExpr,
}

/// Supported join types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN`
    Inner,
    /// `LEFT JOIN`
    Left,
}

/// A `FROM` item: a named dataset or a parenthesized subquery.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// `Namespace.Dataset [alias]` (a single-part name uses the default
    /// namespace).
    Dataset {
        /// Dotted name parts.
        path: Vec<String>,
        /// Binding alias.
        alias: Option<String>,
    },
    /// `( SELECT ... ) alias`
    Subquery {
        /// The nested query.
        query: Box<SelectStmt>,
        /// Binding alias.
        alias: Option<String>,
    },
}

impl FromItem {
    /// The binding name this item introduces (alias, or last path part).
    pub fn binding(&self) -> Option<&str> {
        match self {
            FromItem::Dataset { path, alias } => {
                alias.as_deref().or_else(|| path.last().map(String::as_str))
            }
            FromItem::Subquery { alias, .. } => alias.as_deref(),
        }
    }
}

/// Expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Dotted path: `x`, `t.x` — resolution against FROM bindings happens
    /// during planning.
    Path(Vec<String>),
    /// Literal value.
    Lit(Value),
    /// `*` (only valid inside `COUNT(*)`).
    Star,
    /// Unary operator.
    Unary(UnaryOp, Box<AstExpr>),
    /// Binary operator.
    Binary(BinOp, Box<AstExpr>, Box<AstExpr>),
    /// Function call (scalar or aggregate; classified during planning).
    Func {
        /// Upper-cased function name.
        name: String,
        /// Arguments.
        args: Vec<AstExpr>,
    },
    /// `expr IS [NOT] NULL/MISSING/UNKNOWN`.
    Is(Box<AstExpr>, IsKind, bool),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical NOT.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// The three `IS` predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsKind {
    /// `IS NULL` — in SQL++, true only for explicit nulls; in SQL it is the
    /// only unknown-test and covers both unknown states.
    Null,
    /// `IS MISSING` (SQL++) — true only for absent fields.
    Missing,
    /// `IS UNKNOWN` (SQL++) — true for null or missing.
    Unknown,
}
