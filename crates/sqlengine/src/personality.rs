//! Per-system feature flags ("personalities").
//!
//! The paper's single-node analysis attributes every performance difference
//! between its SQL-speaking systems to a handful of optimizer/storage
//! features. A [`Personality`] bundles those flags so that one engine can
//! faithfully impersonate AsterixDB, PostgreSQL 12 or the PostgreSQL 9.5
//! inside Greenplum.

use polyframe_storage::NullPolicy;

/// Feature flags for one database system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Personality {
    /// Display name ("asterixdb", "postgres12", ...).
    pub name: &'static str,
    /// Can satisfy `MIN`/`MAX`/range-`COUNT` from a secondary index without
    /// heap fetches (PostgreSQL 12 index-only scans; paper exprs 6, 7, 11).
    pub index_only_scans: bool,
    /// Can walk a B-tree backwards to serve `ORDER BY ... DESC LIMIT k`
    /// (PostgreSQL 12 / MongoDB; paper expr 9).
    pub backward_index_scans: bool,
    /// Secondary indexes contain entries for `NULL`/missing keys
    /// (PostgreSQL; paper expr 13).
    pub nulls_in_indexes: bool,
    /// `COUNT(*)` over a dataset can be answered by walking the primary
    /// index without touching the heap (AsterixDB; paper expr 1).
    pub count_via_primary_index: bool,
    /// Joins whose output needs only the join keys can run entirely inside
    /// the indexes (AsterixDB's index-only join; paper expr 12).
    pub index_only_join: bool,
    /// Number of optimizer rewrite rounds the compiler runs. AsterixDB's
    /// Algebricks compiler performs many rule-set passes, which is the
    /// query-preparation overhead visible in the paper's "Empty"-dataset
    /// baseline (Fig. 5/6); PostgreSQL plans small queries much faster.
    pub optimizer_passes: usize,
}

impl Personality {
    /// Apache AsterixDB 0.9.5.
    pub fn asterixdb() -> Personality {
        Personality {
            name: "asterixdb",
            index_only_scans: false,
            backward_index_scans: false,
            nulls_in_indexes: false,
            count_via_primary_index: true,
            index_only_join: true,
            optimizer_passes: 48,
        }
    }

    /// PostgreSQL 12.
    pub fn postgres12() -> Personality {
        Personality {
            name: "postgres12",
            index_only_scans: true,
            backward_index_scans: true,
            nulls_in_indexes: true,
            count_via_primary_index: false,
            index_only_join: false,
            optimizer_passes: 4,
        }
    }

    /// PostgreSQL 9.5, as embedded in Greenplum. Nulls are stored in B-trees
    /// (true since PostgreSQL 8) but the optimizations the paper highlights
    /// as *absent* in Greenplum — index-only scans usable for aggregates and
    /// backward index scans for top-k — are off.
    pub fn postgres95() -> Personality {
        Personality {
            name: "postgres95",
            index_only_scans: false,
            backward_index_scans: false,
            nulls_in_indexes: true,
            count_via_primary_index: false,
            index_only_join: false,
            optimizer_passes: 4,
        }
    }

    /// The [`NullPolicy`] this system's secondary indexes use.
    pub fn secondary_null_policy(&self) -> NullPolicy {
        if self.nulls_in_indexes {
            NullPolicy::IndexNulls
        } else {
            NullPolicy::SkipNulls
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_analysis() {
        let a = Personality::asterixdb();
        assert!(a.count_via_primary_index && a.index_only_join);
        assert!(!a.index_only_scans && !a.backward_index_scans && !a.nulls_in_indexes);
        assert_eq!(a.secondary_null_policy(), NullPolicy::SkipNulls);

        let p12 = Personality::postgres12();
        assert!(p12.index_only_scans && p12.backward_index_scans && p12.nulls_in_indexes);
        assert_eq!(p12.secondary_null_policy(), NullPolicy::IndexNulls);

        let p95 = Personality::postgres95();
        assert!(!p95.index_only_scans && !p95.backward_index_scans);
        assert!(p95.nulls_in_indexes);
        assert!(a.optimizer_passes > p12.optimizer_passes);
    }
}
