//! Dialect-aware lexer for SQL and SQL++.

use crate::dialect::Dialect;
use crate::error::{EngineError, Result};
use crate::token::Token;

/// Tokenize `input` under the given dialect.
///
/// Dialect differences:
/// * `"..."` is a quoted identifier in SQL but a string literal in SQL++;
/// * `` `...` `` is a quoted identifier in SQL++;
/// * `'...'` is a string literal in both.
pub fn tokenize(input: &str, dialect: Dialect) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => pos += 1,
            b'-' if bytes.get(pos + 1) == Some(&b'-') => {
                // Line comment.
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'(' => {
                out.push(Token::LParen);
                pos += 1;
            }
            b')' => {
                out.push(Token::RParen);
                pos += 1;
            }
            b',' => {
                out.push(Token::Comma);
                pos += 1;
            }
            b'.' => {
                out.push(Token::Dot);
                pos += 1;
            }
            b';' => {
                out.push(Token::Semicolon);
                pos += 1;
            }
            b'*' => {
                out.push(Token::Star);
                pos += 1;
            }
            b'+' => {
                out.push(Token::Plus);
                pos += 1;
            }
            b'-' => {
                out.push(Token::Minus);
                pos += 1;
            }
            b'/' => {
                out.push(Token::Slash);
                pos += 1;
            }
            b'%' => {
                out.push(Token::Percent);
                pos += 1;
            }
            b'=' => {
                pos += if bytes.get(pos + 1) == Some(&b'=') {
                    2
                } else {
                    1
                };
                out.push(Token::Eq);
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    pos += 2;
                } else {
                    return Err(EngineError::Lex {
                        offset: pos,
                        message: "unexpected '!'".to_string(),
                    });
                }
            }
            b'<' => match bytes.get(pos + 1) {
                Some(b'=') => {
                    out.push(Token::Le);
                    pos += 2;
                }
                Some(b'>') => {
                    out.push(Token::Ne);
                    pos += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    pos += 1;
                }
            },
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    pos += 2;
                } else {
                    out.push(Token::Gt);
                    pos += 1;
                }
            }
            b'\'' => {
                let (s, new_pos) = lex_quoted(bytes, pos, b'\'')?;
                out.push(Token::Str(s));
                pos = new_pos;
            }
            b'"' => {
                let (s, new_pos) = lex_quoted(bytes, pos, b'"')?;
                if dialect.double_quote_is_identifier() {
                    out.push(Token::QuotedIdent(s));
                } else {
                    out.push(Token::Str(s));
                }
                pos = new_pos;
            }
            b'`' => {
                let (s, new_pos) = lex_quoted(bytes, pos, b'`')?;
                out.push(Token::QuotedIdent(s));
                pos = new_pos;
            }
            b'0'..=b'9' => {
                let (tok, new_pos) = lex_number(bytes, pos)?;
                out.push(tok);
                pos = new_pos;
            }
            b if b.is_ascii_alphabetic() || b == b'_' || b == b'$' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric()
                        || bytes[pos] == b'_'
                        || bytes[pos] == b'$')
                {
                    pos += 1;
                }
                out.push(Token::Ident(
                    std::str::from_utf8(&bytes[start..pos]).unwrap().to_string(),
                ));
            }
            other => {
                return Err(EngineError::Lex {
                    offset: pos,
                    message: format!("unexpected character {:?}", other as char),
                })
            }
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

fn lex_quoted(bytes: &[u8], start: usize, quote: u8) -> Result<(String, usize)> {
    let mut pos = start + 1;
    let mut s = String::new();
    while pos < bytes.len() {
        let b = bytes[pos];
        if b == quote {
            // Doubled quote = escaped quote (SQL style).
            if bytes.get(pos + 1) == Some(&quote) {
                s.push(quote as char);
                pos += 2;
                continue;
            }
            return Ok((s, pos + 1));
        }
        if b == b'\\' && pos + 1 < bytes.len() {
            // Backslash escapes (SQL++ string style).
            let next = bytes[pos + 1];
            match next {
                b'n' => s.push('\n'),
                b't' => s.push('\t'),
                b'\\' => s.push('\\'),
                q if q == quote => s.push(quote as char),
                other => {
                    s.push('\\');
                    s.push(other as char);
                }
            }
            pos += 2;
            continue;
        }
        if b < 0x80 {
            s.push(b as char);
            pos += 1;
        } else {
            let width = if b >= 0xF0 {
                4
            } else if b >= 0xE0 {
                3
            } else {
                2
            };
            let end = (pos + width).min(bytes.len());
            s.push_str(
                std::str::from_utf8(&bytes[pos..end]).map_err(|_| EngineError::Lex {
                    offset: pos,
                    message: "invalid UTF-8".to_string(),
                })?,
            );
            pos = end;
        }
    }
    Err(EngineError::Lex {
        offset: start,
        message: "unterminated quoted token".to_string(),
    })
}

fn lex_number(bytes: &[u8], start: usize) -> Result<(Token, usize)> {
    let mut pos = start;
    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
        pos += 1;
    }
    let mut is_float = false;
    if pos < bytes.len() && bytes[pos] == b'.' && bytes.get(pos + 1).is_some_and(u8::is_ascii_digit)
    {
        is_float = true;
        pos += 1;
        while pos < bytes.len() && bytes[pos].is_ascii_digit() {
            pos += 1;
        }
    }
    if pos < bytes.len() && (bytes[pos] == b'e' || bytes[pos] == b'E') {
        is_float = true;
        pos += 1;
        if pos < bytes.len() && (bytes[pos] == b'+' || bytes[pos] == b'-') {
            pos += 1;
        }
        while pos < bytes.len() && bytes[pos].is_ascii_digit() {
            pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..pos]).unwrap();
    let tok = if is_float {
        Token::Double(text.parse().map_err(|e| EngineError::Lex {
            offset: start,
            message: format!("bad number: {e}"),
        })?)
    } else {
        Token::Int(text.parse().map_err(|e| EngineError::Lex {
            offset: start,
            message: format!("bad number: {e}"),
        })?)
    };
    Ok((tok, pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = tokenize("SELECT t.x, 42 FROM data t WHERE x >= 1.5;", Dialect::Sql).unwrap();
        assert!(toks.contains(&Token::Ident("SELECT".into())));
        assert!(toks.contains(&Token::Int(42)));
        assert!(toks.contains(&Token::Double(1.5)));
        assert!(toks.contains(&Token::Ge));
        assert_eq!(toks.last(), Some(&Token::Eof));
    }

    #[test]
    fn dialect_quote_handling() {
        let sql = tokenize(r#"SELECT "two" FROM t WHERE x = 'en'"#, Dialect::Sql).unwrap();
        assert!(sql.contains(&Token::QuotedIdent("two".into())));
        assert!(sql.contains(&Token::Str("en".into())));

        let sqlpp = tokenize(
            r#"SELECT `two` FROM t WHERE x = "en""#,
            Dialect::SqlPlusPlus,
        )
        .unwrap();
        assert!(sqlpp.contains(&Token::QuotedIdent("two".into())));
        assert!(sqlpp.contains(&Token::Str("en".into())));
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("a != b <> c == d <= e", Dialect::Sql).unwrap();
        let ne_count = toks.iter().filter(|t| **t == Token::Ne).count();
        assert_eq!(ne_count, 2);
        assert!(toks.contains(&Token::Eq));
        assert!(toks.contains(&Token::Le));
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT x -- comment here\nFROM t", Dialect::Sql).unwrap();
        assert_eq!(
            toks.iter().filter(|t| matches!(t, Token::Ident(_))).count(),
            4 // SELECT x FROM t
        );
    }

    #[test]
    fn escaped_quotes() {
        let toks = tokenize("SELECT 'it''s'", Dialect::Sql).unwrap();
        assert!(toks.contains(&Token::Str("it's".into())));
    }

    #[test]
    fn errors() {
        assert!(tokenize("SELECT 'oops", Dialect::Sql).is_err());
        assert!(tokenize("a ! b", Dialect::Sql).is_err());
        assert!(tokenize("a # b", Dialect::Sql).is_err());
    }

    #[test]
    fn keyword_detection_is_case_insensitive() {
        assert!(Token::Ident("select".into()).is_kw("SELECT"));
        assert!(Token::Ident("SeLeCt".into()).is_kw("select"));
        assert!(!Token::QuotedIdent("select".into()).is_kw("select"));
    }
}
