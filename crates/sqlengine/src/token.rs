//! Token type produced by the lexer.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or bare identifier (keywords are recognized by the parser;
    /// the lexer keeps them as `Ident` with the original spelling).
    Ident(String),
    /// Quoted identifier (`"two"` in SQL, `` `two` `` in SQL++): never a
    /// keyword.
    QuotedIdent(String),
    /// String literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Double(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `=` (also `==`)
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// End of input.
    Eof,
}

impl Token {
    /// True when this token is an identifier spelled like `kw`
    /// (case-insensitive). Quoted identifiers never match keywords.
    pub fn is_kw(&self, kw: &str) -> bool {
        match self {
            Token::Ident(s) => s.eq_ignore_ascii_case(kw),
            _ => false,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::QuotedIdent(s) => write!(f, "\"{s}\""),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Double(d) => write!(f, "{d}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Semicolon => write!(f, ";"),
            Token::Star => write!(f, "*"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}
