//! The engine's catalog: namespaces ("dataverses" in AsterixDB parlance,
//! "schemas" in PostgreSQL) containing tables.

use crate::error::{EngineError, Result};
use polyframe_observe::CatalogVersion;
use polyframe_storage::{Table, TableOptions};
use std::collections::HashMap;
use std::sync::Arc;

/// All data managed by one engine instance.
///
/// Tables are held behind `Arc` so `Clone` — the copy-on-write snapshot
/// the engine publishes for concurrent readers after each committed
/// write — is a shallow map copy, and [`Database::dataset_mut`] deep-
/// copies only the one table being mutated (and only while an older
/// snapshot still shares it). The catalog version freezes at its
/// current value in the clone.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: HashMap<(String, String), Arc<Table>>,
    /// Monotonic catalog version: bumped on DDL and bulk loads, consumed
    /// by the plan cache to invalidate entries compiled against an older
    /// catalog (a new index — or new data making an index incomplete —
    /// changes which physical plan is correct). The shared
    /// [`CatalogVersion`] helper is also used by the document and graph
    /// stores, and crash recovery advances it past the pre-crash value.
    version: CatalogVersion,
}

impl Database {
    /// Empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Current catalog version.
    pub fn version(&self) -> u64 {
        self.version.current()
    }

    /// Advance the catalog version (callers: DDL and bulk-load paths).
    pub fn bump_version(&self) {
        self.version.bump();
    }

    /// Move the catalog version strictly past `seen` (recovery: `seen`
    /// is the pre-crash version, so every plan cached before the crash
    /// misses afterwards).
    pub fn advance_version_past(&self, seen: u64) {
        self.version.advance_past(seen);
    }

    /// Create a dataset. Replaces any existing dataset of the same name.
    pub fn create_dataset(
        &mut self,
        namespace: &str,
        dataset: &str,
        options: TableOptions,
    ) -> &mut Table {
        let key = (namespace.to_string(), dataset.to_string());
        self.tables.insert(
            key.clone(),
            Arc::new(Table::new(format!("{namespace}.{dataset}"), options)),
        );
        self.version.bump();
        Arc::make_mut(self.tables.get_mut(&key).unwrap())
    }

    /// Look a dataset up.
    pub fn dataset(&self, namespace: &str, dataset: &str) -> Result<&Table> {
        self.tables
            .get(&(namespace.to_string(), dataset.to_string()))
            .map(Arc::as_ref)
            .ok_or_else(|| EngineError::UnknownDataset {
                namespace: namespace.to_string(),
                dataset: dataset.to_string(),
            })
    }

    /// Mutable dataset lookup. Copy-on-write: when a published snapshot
    /// still shares the table, this clones it first (`Arc::make_mut`) so
    /// readers pinning the snapshot are never disturbed.
    pub fn dataset_mut(&mut self, namespace: &str, dataset: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&(namespace.to_string(), dataset.to_string()))
            .map(Arc::make_mut)
            .ok_or_else(|| EngineError::UnknownDataset {
                namespace: namespace.to_string(),
                dataset: dataset.to_string(),
            })
    }

    /// True when the dataset exists.
    pub fn contains(&self, namespace: &str, dataset: &str) -> bool {
        self.tables
            .contains_key(&(namespace.to_string(), dataset.to_string()))
    }

    /// Rebuild every table's statistics exactly from its heap — the
    /// checkpoint path, where the write-ahead log is compacted and the
    /// incremental (sketched) statistics are replaced with exact ones.
    /// Bumps the catalog version so cached stats-informed plans recompile
    /// against the fresh statistics.
    pub fn rebuild_stats(&mut self) {
        for table in self.tables.values_mut() {
            Arc::make_mut(table).rebuild_stats();
        }
        self.version.bump();
    }

    /// Iterate `(namespace, dataset)` names.
    pub fn dataset_names(&self) -> impl Iterator<Item = (&str, &str)> {
        self.tables
            .keys()
            .map(|(ns, ds)| (ns.as_str(), ds.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyframe_datamodel::record;

    #[test]
    fn version_bumps_on_ddl() {
        let mut db = Database::new();
        assert_eq!(db.version(), 0);
        db.create_dataset("Test", "Users", TableOptions::default());
        assert_eq!(db.version(), 1);
        db.bump_version();
        assert_eq!(db.version(), 2);
    }

    #[test]
    fn create_and_lookup() {
        let mut db = Database::new();
        db.create_dataset("Test", "Users", TableOptions::default());
        assert!(db.contains("Test", "Users"));
        assert!(!db.contains("Test", "Ghosts"));
        db.dataset_mut("Test", "Users")
            .unwrap()
            .insert(record! {"id" => 1i64});
        assert_eq!(db.dataset("Test", "Users").unwrap().len(), 1);
        assert!(matches!(
            db.dataset("Nope", "Users"),
            Err(EngineError::UnknownDataset { .. })
        ));
    }
}
