//! Planner-facing statistics: an immutable snapshot of the catalog's
//! per-table/per-column statistics, captured at a catalog version.
//!
//! The storage layer maintains [`polyframe_storage::TableStats`]
//! incrementally on every insert (the load/WAL-apply path) and rebuilds
//! them exactly at checkpoints. This module snapshots those statistics at
//! plan-compile time: the snapshot is tagged with the
//! [`Database::version`] it was captured at, and since every load/DDL
//! bumps that version, any plan compiled against a stale snapshot falls
//! out of the plan cache on its own — stats-informed plans can never
//! outlive the statistics that justified them.
//!
//! Selectivity math lives here; cost formulas live in
//! [`crate::plan::cost`].

use crate::catalog::Database;
use polyframe_datamodel::Value;
use polyframe_storage::Histogram;
use std::collections::HashMap;

/// Fallback selectivity of an equality predicate without usable stats.
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;
/// Fallback selectivity of a (half-)range predicate without usable stats.
pub const DEFAULT_RANGE_SELECTIVITY: f64 = 1.0 / 3.0;
/// Fallback selectivity of an opaque residual predicate.
pub const DEFAULT_OTHER_SELECTIVITY: f64 = 0.25;

/// Column statistics as the planner consumes them.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Estimated number of distinct known values.
    pub ndv: f64,
    /// Fraction of records where the column is `Null`/absent.
    pub unknown_fraction: f64,
    /// Numeric minimum, when the column is numeric.
    pub min: Option<f64>,
    /// Numeric maximum, when the column is numeric.
    pub max: Option<f64>,
    /// Equi-width histogram, when one was built.
    pub histogram: Option<Histogram>,
}

/// Statistics for one table at snapshot time.
#[derive(Debug, Clone, Default)]
pub struct TableStatsView {
    /// Live record count.
    pub row_count: f64,
    columns: HashMap<String, ColumnStats>,
}

impl TableStatsView {
    /// Column statistics, if the column was ever observed.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }

    /// Estimated selectivity of `column = value`.
    ///
    /// `(1 - unknown_fraction) / NDV`, zeroing out when a numeric literal
    /// falls outside the observed min/max range.
    pub fn eq_selectivity(&self, column: &str, value: &Value) -> f64 {
        let Some(col) = self.columns.get(column) else {
            // Column never observed: equality can only match unknowns,
            // which SQL equality never does.
            return 0.0;
        };
        if let (Some(v), Some(min), Some(max)) = (value.as_f64(), col.min, col.max) {
            if v < min || v > max {
                return 0.0;
            }
        }
        let known = (1.0 - col.unknown_fraction).max(0.0);
        (known / col.ndv.max(1.0)).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of a range predicate over `column`, with
    /// optional numeric bounds (`None` = unbounded on that side).
    pub fn range_selectivity(&self, column: &str, lo: Option<f64>, hi: Option<f64>) -> f64 {
        let Some(col) = self.columns.get(column) else {
            return 0.0;
        };
        let known = (1.0 - col.unknown_fraction).max(0.0);
        if let Some(hist) = &col.histogram {
            if hist.total() > 0 {
                return (hist.range_fraction(lo, hi) * known).clamp(0.0, 1.0);
            }
        }
        // No histogram: interpolate uniformly between min and max.
        if let (Some(min), Some(max)) = (col.min, col.max) {
            if max > min {
                let a = lo.map_or(min, |v| v.clamp(min, max));
                let b = hi.map_or(max, |v| v.clamp(min, max));
                return (((b - a) / (max - min)).max(0.0) * known).clamp(0.0, 1.0);
            }
        }
        DEFAULT_RANGE_SELECTIVITY * known
    }

    /// Estimated selectivity of `column IS NULL/MISSING/UNKNOWN`.
    pub fn unknown_selectivity(&self, column: &str) -> f64 {
        match self.columns.get(column) {
            Some(col) => col.unknown_fraction.clamp(0.0, 1.0),
            // Never observed: unknown in every record.
            None => 1.0,
        }
    }
}

/// An immutable snapshot of every table's statistics, captured from the
/// catalog at one version.
#[derive(Debug, Clone, Default)]
pub struct StatsCatalog {
    version: u64,
    tables: HashMap<(String, String), TableStatsView>,
}

impl StatsCatalog {
    /// Capture the statistics of every table in `db`, tagged with the
    /// current catalog version.
    pub fn capture(db: &Database) -> StatsCatalog {
        let mut tables = HashMap::new();
        let names: Vec<(String, String)> = db
            .dataset_names()
            .map(|(ns, ds)| (ns.to_string(), ds.to_string()))
            .collect();
        for (ns, ds) in names {
            let Ok(table) = db.dataset(&ns, &ds) else {
                continue;
            };
            let stats = table.stats();
            let mut view = TableStatsView {
                row_count: stats.record_count() as f64,
                columns: HashMap::new(),
            };
            for (attr, a) in stats.attributes() {
                view.columns.insert(
                    attr.to_string(),
                    ColumnStats {
                        ndv: a.ndv_estimate(),
                        unknown_fraction: stats.unknown_fraction(attr),
                        min: a.min.as_ref().and_then(Value::as_f64),
                        max: a.max.as_ref().and_then(Value::as_f64),
                        histogram: a.histogram.clone(),
                    },
                );
            }
            tables.insert((ns, ds), view);
        }
        StatsCatalog {
            version: db.version(),
            tables,
        }
    }

    /// The catalog version this snapshot was captured at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Statistics for one table, when it exists and holds data.
    pub fn table(&self, namespace: &str, dataset: &str) -> Option<&TableStatsView> {
        self.tables
            .get(&(namespace.to_string(), dataset.to_string()))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use polyframe_datamodel::record;
    use polyframe_storage::TableOptions;

    fn db_with_data() -> Database {
        let mut db = Database::new();
        let t = db.create_dataset(
            "Test",
            "data",
            TableOptions {
                primary_key: Some("id".to_string()),
                ..TableOptions::default()
            },
        );
        t.insert_all((0..100i64).map(|i| {
            record! {"id" => i, "ten" => i % 10, "half" => if i % 2 == 0 { Value::Int(i) } else { Value::Null }}
        }));
        db
    }

    #[test]
    fn capture_tags_version_and_sees_tables() {
        let db = db_with_data();
        let stats = StatsCatalog::capture(&db);
        assert_eq!(stats.version(), db.version());
        let view = stats.table("Test", "data").unwrap();
        assert_eq!(view.row_count, 100.0);
        assert!(stats.table("Test", "nope").is_none());
    }

    #[test]
    fn eq_selectivity_uses_ndv() {
        let db = db_with_data();
        let stats = StatsCatalog::capture(&db);
        let view = stats.table("Test", "data").unwrap();
        let sel = view.eq_selectivity("ten", &Value::Int(4));
        assert!((sel - 0.1).abs() < 0.02, "sel={sel}");
        // Out-of-range literal: nothing can match.
        assert_eq!(view.eq_selectivity("ten", &Value::Int(50)), 0.0);
        assert_eq!(view.eq_selectivity("ghost", &Value::Int(1)), 0.0);
    }

    #[test]
    fn range_and_unknown_selectivity() {
        let db = db_with_data();
        let stats = StatsCatalog::capture(&db);
        let view = stats.table("Test", "data").unwrap();
        let sel = view.range_selectivity("id", Some(0.0), Some(49.0));
        assert!((sel - 0.5).abs() < 0.06, "sel={sel}");
        let unknown = view.unknown_selectivity("half");
        assert!((unknown - 0.5).abs() < 0.01, "unknown={unknown}");
        assert_eq!(view.unknown_selectivity("ghost"), 1.0);
    }
}
