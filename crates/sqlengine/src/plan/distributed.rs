//! Splitting a logical plan into a per-shard plan plus a coordinator merge
//! step — the scatter/gather protocol behind the paper's multi-node
//! experiments (Figs. 9 and 10).
//!
//! The decompositions are the classic ones:
//!
//! * scans / filters / projections / limits → run everywhere, concatenate
//!   (a limit is also applied shard-side so no shard ships more than `n`);
//! * scalar aggregates → shard-side partial states
//!   ([`crate::exec::aggregate::Accumulator::to_partial`]), coordinator
//!   merge + finalize;
//! * group-by aggregates → shard-side partial per group, coordinator
//!   re-groups on the key columns and merges;
//! * `ORDER BY ... LIMIT k` → shard-side top-k, coordinator merge-sort and
//!   truncate;
//! * equi-join + count → flagged as [`DistributedQuery::JoinCount`] so the
//!   cluster layer can run its cross-shard index join (or reject it, as
//!   sharded MongoDB does).

use crate::error::{EngineError, Result};
use crate::exec::{aggregate_rows, project_row};
use crate::plan::logical::{AggExpr, AggMode, LogicalPlan, ProjectSpec, Scalar};
use polyframe_datamodel::{cmp_total, Value};

/// A distributed execution strategy for one query.
#[derive(Debug, Clone, PartialEq)]
pub enum DistributedQuery {
    /// Run `shard_plan` on every shard and concatenate the results,
    /// optionally truncating to `limit` rows.
    Concat {
        /// Plan executed on each shard.
        shard_plan: LogicalPlan,
        /// Coordinator-side row cap.
        limit: Option<u64>,
    },
    /// Shards emit partial aggregate states; the coordinator merges,
    /// finalizes and projects.
    ScalarAgg {
        /// Plan executed on each shard (emits partial-state rows).
        shard_plan: LogicalPlan,
        /// The aggregates being computed.
        aggs: Vec<AggExpr>,
        /// Final output shaping.
        project: ProjectSpec,
    },
    /// Group-by version of [`DistributedQuery::ScalarAgg`].
    GroupAgg {
        /// Plan executed on each shard.
        shard_plan: LogicalPlan,
        /// Group-key output names.
        group_names: Vec<String>,
        /// The aggregates being computed.
        aggs: Vec<AggExpr>,
        /// Final output shaping.
        project: ProjectSpec,
    },
    /// Shards return local top-k rows; the coordinator merge-sorts,
    /// truncates and applies any projection.
    TopK {
        /// Plan executed on each shard (already top-k limited).
        shard_plan: LogicalPlan,
        /// Sort keys (evaluated on shard output rows).
        keys: Vec<(Scalar, bool)>,
        /// Final row count.
        limit: u64,
        /// Projection applied after the merge (when the original plan
        /// projected above the sort).
        post_project: Option<ProjectSpec>,
    },
    /// `COUNT(*)` over an equi-join of two stored datasets: the cluster
    /// layer runs a cross-shard index join.
    JoinCount {
        /// Left `(namespace, dataset, attribute)`.
        left: (String, String, String),
        /// Right `(namespace, dataset, attribute)`.
        right: (String, String, String),
        /// Output field name of the count.
        output: String,
        /// Final output shaping.
        project: ProjectSpec,
    },
}

/// Split an optimized logical plan for distributed execution.
pub fn split(plan: &LogicalPlan) -> Result<DistributedQuery> {
    match plan {
        // Project(Aggregate(...)) — the shape the builder produces for all
        // aggregate queries.
        LogicalPlan::Project { input, spec } => match input.as_ref() {
            LogicalPlan::Aggregate {
                input: agg_input,
                group_by,
                aggs,
                mode: AggMode::Complete,
            } => {
                // Join + COUNT(*): delegate to the cluster's join path.
                if group_by.is_empty() && aggs.len() == 1 {
                    if let Some(jc) = join_count(agg_input, &aggs[0], spec) {
                        return Ok(jc);
                    }
                }
                let shard_plan = LogicalPlan::Aggregate {
                    input: agg_input.clone(),
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                    mode: AggMode::Partial,
                };
                if group_by.is_empty() {
                    Ok(DistributedQuery::ScalarAgg {
                        shard_plan,
                        aggs: aggs.clone(),
                        project: spec.clone(),
                    })
                } else {
                    Ok(DistributedQuery::GroupAgg {
                        shard_plan,
                        group_names: group_by.iter().map(|(n, _)| n.clone()).collect(),
                        aggs: aggs.clone(),
                        project: spec.clone(),
                    })
                }
            }
            // Projection over a streaming pipeline.
            _ => Ok(DistributedQuery::Concat {
                shard_plan: plan.clone(),
                limit: None,
            }),
        },
        LogicalPlan::Limit { input, n } => match input.as_ref() {
            LogicalPlan::Sort {
                input: sort_in,
                keys,
            } => Ok(DistributedQuery::TopK {
                shard_plan: LogicalPlan::Limit {
                    input: Box::new(LogicalPlan::Sort {
                        input: sort_in.clone(),
                        keys: keys.clone(),
                    }),
                    n: *n,
                },
                keys: keys.clone(),
                limit: *n,
                post_project: None,
            }),
            LogicalPlan::Project { input: p_in, spec } => match p_in.as_ref() {
                LogicalPlan::Sort {
                    input: sort_in,
                    keys,
                } => Ok(DistributedQuery::TopK {
                    shard_plan: LogicalPlan::Limit {
                        input: Box::new(LogicalPlan::Sort {
                            input: sort_in.clone(),
                            keys: keys.clone(),
                        }),
                        n: *n,
                    },
                    keys: keys.clone(),
                    limit: *n,
                    post_project: Some(spec.clone()),
                }),
                _ => Ok(DistributedQuery::Concat {
                    shard_plan: plan.clone(),
                    limit: Some(*n),
                }),
            },
            _ => Ok(DistributedQuery::Concat {
                shard_plan: plan.clone(),
                limit: Some(*n),
            }),
        },
        LogicalPlan::Aggregate { .. } | LogicalPlan::Sort { .. } | LogicalPlan::Distinct { .. } => {
            Err(EngineError::plan(
                "cannot distribute this plan shape (unprojected blocking operator)",
            ))
        }
        // Streaming shapes distribute trivially.
        _ => Ok(DistributedQuery::Concat {
            shard_plan: plan.clone(),
            limit: None,
        }),
    }
}

fn join_count(
    input: &LogicalPlan,
    agg: &AggExpr,
    project: &ProjectSpec,
) -> Option<DistributedQuery> {
    use crate::plan::logical::AggArg;
    if !(agg.func == crate::plan::logical::AggFunc::Count && agg.arg == AggArg::Star) {
        return None;
    }
    // Look through row-reshaping projections.
    let mut node = input;
    loop {
        match node {
            LogicalPlan::Project { input, .. } => node = input,
            LogicalPlan::Join {
                left,
                right,
                left_key: Scalar::Field(lk),
                right_key: Scalar::Field(rk),
                ..
            } => {
                if let (
                    LogicalPlan::Scan {
                        namespace: lns,
                        dataset: lds,
                    },
                    LogicalPlan::Scan {
                        namespace: rns,
                        dataset: rds,
                    },
                ) = (left.as_ref(), right.as_ref())
                {
                    return Some(DistributedQuery::JoinCount {
                        left: (lns.clone(), lds.clone(), lk.clone()),
                        right: (rns.clone(), rds.clone(), rk.clone()),
                        output: agg.name.clone(),
                        project: project.clone(),
                    });
                }
                return None;
            }
            _ => return None,
        }
    }
}

/// Coordinator merge for [`DistributedQuery::ScalarAgg`] /
/// [`DistributedQuery::GroupAgg`].
pub fn merge_aggregate_parts(
    parts: Vec<Vec<Value>>,
    group_names: &[String],
    aggs: &[AggExpr],
    project: &ProjectSpec,
) -> Result<Vec<Value>> {
    let all: Vec<Value> = parts.into_iter().flatten().collect();
    let group_by: Vec<(String, Scalar)> = group_names
        .iter()
        .map(|n| (n.clone(), Scalar::Field(n.clone())))
        .collect();
    let merged = aggregate_rows(all, &group_by, aggs, AggMode::Final)?;
    merged.iter().map(|row| project_row(project, row)).collect()
}

/// Coordinator merge for [`DistributedQuery::TopK`].
pub fn merge_topk(
    parts: Vec<Vec<Value>>,
    keys: &[(Scalar, bool)],
    limit: u64,
    post_project: Option<&ProjectSpec>,
) -> Result<Vec<Value>> {
    let mut rows: Vec<Value> = parts.into_iter().flatten().collect();
    let mut keyed: Vec<(Vec<Value>, Value)> = Vec::with_capacity(rows.len());
    for row in rows.drain(..) {
        let mut kv = Vec::with_capacity(keys.len());
        for (expr, _) in keys {
            kv.push(crate::exec::eval::eval(expr, &row)?);
        }
        keyed.push((kv, row));
    }
    keyed.sort_by(|(a, _), (b, _)| {
        for (i, (_, desc)) in keys.iter().enumerate() {
            let ord = cmp_total(&a[i], &b[i]);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    keyed.truncate(limit as usize);
    keyed
        .into_iter()
        .map(|(_, row)| match post_project {
            Some(spec) => project_row(spec, &row),
            None => Ok(row),
        })
        .collect()
}

/// Coordinator merge for [`DistributedQuery::Concat`].
pub fn merge_concat(parts: Vec<Vec<Value>>, limit: Option<u64>) -> Vec<Value> {
    let mut rows: Vec<Value> = parts.into_iter().flatten().collect();
    if let Some(n) = limit {
        rows.truncate(n as usize);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::Dialect;
    use crate::parser::parse;
    use crate::plan::builder::build_logical;
    use crate::plan::optimizer::optimize;

    fn split_q(q: &str, dialect: Dialect) -> DistributedQuery {
        let stmt = parse(q, dialect).unwrap();
        let plan = optimize(build_logical(&stmt, "Default").unwrap(), 4);
        split(&plan).unwrap()
    }

    #[test]
    fn count_splits_to_scalar_agg() {
        let d = split_q("SELECT VALUE COUNT(*) FROM data", Dialect::SqlPlusPlus);
        match d {
            DistributedQuery::ScalarAgg { shard_plan, .. } => {
                assert!(shard_plan.display().contains("Aggregate[Partial]"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn group_by_splits_to_group_agg() {
        let d = split_q(
            "SELECT twenty, MAX(four) AS max_four FROM (SELECT * FROM data) t GROUP BY twenty",
            Dialect::Sql,
        );
        match d {
            DistributedQuery::GroupAgg { group_names, .. } => {
                assert_eq!(group_names, vec!["twenty".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sort_limit_splits_to_topk() {
        let d = split_q(
            "SELECT * FROM (SELECT * FROM data) t ORDER BY unique1 DESC LIMIT 5",
            Dialect::Sql,
        );
        match d {
            DistributedQuery::TopK { limit, keys, .. } => {
                assert_eq!(limit, 5);
                assert!(keys[0].1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pipeline_splits_to_concat_with_limit() {
        let d = split_q(
            "SELECT two, four FROM (SELECT * FROM data) t LIMIT 5",
            Dialect::Sql,
        );
        match d {
            DistributedQuery::Concat { limit, .. } => assert_eq!(limit, Some(5)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn join_count_detected() {
        let d = split_q(
            "SELECT VALUE COUNT(*) FROM (SELECT l, r FROM leftData l JOIN rightData r ON l.unique1 = r.unique1) t",
            Dialect::SqlPlusPlus,
        );
        match d {
            DistributedQuery::JoinCount { left, right, .. } => {
                assert_eq!(left.1, "leftData");
                assert_eq!(right.2, "unique1");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn merge_concat_truncates() {
        let parts = vec![vec![Value::Int(1), Value::Int(2)], vec![Value::Int(3)]];
        assert_eq!(merge_concat(parts, Some(2)).len(), 2);
    }
}
