//! The engine's plan cache.
//!
//! PolyFrame's incremental query formation re-sends near-identical query
//! text on every dataframe action, so compilation cost (parse + the
//! personality's optimizer passes + physical planning) is paid over and
//! over for the same strings. The cache memoizes the compiled
//! logical/physical plan pair keyed by `(dialect, query text)` and guarded
//! by the catalog version: DDL and bulk loads bump
//! [`Database::version`](crate::catalog::Database::version), silently
//! invalidating every plan compiled against the older catalog (a new index
//! — or new data arriving faster than index maintenance — changes which
//! physical plan is correct, not just which is fastest).

use crate::dialect::Dialect;
use crate::plan::logical::LogicalPlan;
use crate::plan::physical::PhysicalPlan;
use polyframe_observe::{CacheStats, ExplainNode, VersionedCache};
use std::sync::Arc;

/// Default number of cached plans per engine. Dataframe workloads touch a
/// handful of distinct query strings per expression chain; 128 covers the
/// harness's whole expression suite with room to spare.
pub const PLAN_CACHE_CAPACITY: usize = 128;

/// A fully compiled query: the optimized logical plan plus the physical
/// plan chosen against the catalog version the entry is tagged with.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// Optimized logical plan (what the cluster layer splits).
    pub logical: LogicalPlan,
    /// Physical plan (what the executor runs).
    pub physical: PhysicalPlan,
    /// Explain tree for the physical plan: per-operator row/cost
    /// estimates, personality flags consulted, and the chosen-vs-rejected
    /// alternatives recorded at each planner decision point.
    pub explain: ExplainNode,
}

/// Whether a compile was answered from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Plan served from the cache.
    Hit,
    /// Plan compiled and inserted.
    Miss,
}

impl CacheOutcome {
    /// `"hit"` / `"miss"`, as recorded on `plan` span notes.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
        }
    }

    /// True on a hit.
    pub fn is_hit(self) -> bool {
        self == CacheOutcome::Hit
    }
}

/// Versioned LRU of compiled plans, keyed by `(dialect, query text)`.
pub struct PlanCache {
    inner: VersionedCache<(Dialect, String), CachedPlan>,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::new()
    }
}

impl PlanCache {
    /// Cache with the default capacity.
    pub fn new() -> PlanCache {
        PlanCache::with_capacity(PLAN_CACHE_CAPACITY)
    }

    /// Cache holding at most `capacity` plans.
    pub fn with_capacity(capacity: usize) -> PlanCache {
        PlanCache {
            inner: VersionedCache::new(capacity),
        }
    }

    /// Look a query up at catalog version `version`.
    pub fn get(&self, dialect: Dialect, sql: &str, version: u64) -> Option<Arc<CachedPlan>> {
        self.inner.get(&(dialect, sql.to_string()), version)
    }

    /// Insert a freshly compiled plan, returning the shared handle.
    pub fn insert(
        &self,
        dialect: Dialect,
        sql: &str,
        version: u64,
        plan: CachedPlan,
    ) -> Arc<CachedPlan> {
        self.inner.insert((dialect, sql.to_string()), version, plan)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Drop every cached plan (stats are kept).
    pub fn clear(&self) {
        self.inner.clear()
    }

    /// Hit/miss tallies since engine construction.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }
}
