//! Logical rewrite rules.
//!
//! The optimizer is what makes PolyFrame's subquery-composition strategy
//! viable: the incremental query formation wraps every operation in another
//! subquery, and these rules flatten the onion back into a minimal plan
//! (the paper: *"Executing subqueries without any optimization could result
//! in unnecessary data scans that would significantly affect performance"*).
//!
//! Rules:
//! 1. **Identity-projection elimination** — `SELECT VALUE t` / `SELECT *`
//!    wrappers disappear.
//! 2. **Filter merging** — stacked filters AND together.
//! 3. **Projection composition** — `Project(Project(x))` composes when the
//!    outer expressions only reference inner output columns.
//! 4. **Limit clamping** — `Limit(Limit(x))` keeps the smaller bound.
//!
//! [`optimize`] runs the rule set for a caller-chosen number of rounds.
//! AsterixDB's Algebricks compiler runs dozens of rule-set rounds; the
//! round count is the [`crate::personality::Personality::optimizer_passes`]
//! knob that reproduces the paper's query-preparation overhead ("Empty"
//! dataset baseline in Figs. 5/6). Rounds after a fixed point still walk
//! (and copy) the plan, exactly like a rule engine probing rules that no
//! longer fire.

use crate::ast::BinOp;
use crate::plan::logical::{LogicalPlan, ProjectSpec, Scalar};

/// Run the rewrite rules for `passes` rounds and return the final plan,
/// plus whether the optimizer was enabled at all (passes == 0 skips
/// rewriting entirely — used by the ablation benchmark).
pub fn optimize(plan: LogicalPlan, passes: usize) -> LogicalPlan {
    let mut current = plan;
    for _ in 0..passes.max(1) {
        current = rewrite(current);
    }
    current
}

fn rewrite(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Project { input, spec } => {
            let input = rewrite(*input);
            if spec.is_identity() {
                return input;
            }
            // Projection composition.
            if matches!(spec, ProjectSpec::Columns(_) | ProjectSpec::Value(_)) {
                if let LogicalPlan::Project {
                    input: inner_input,
                    spec: ProjectSpec::Columns(inner_cols),
                } = &input
                {
                    if let Some(composed) = compose_projections(&spec, inner_cols) {
                        return LogicalPlan::Project {
                            input: inner_input.clone(),
                            spec: composed,
                        };
                    }
                }
            }
            LogicalPlan::Project {
                input: Box::new(input),
                spec,
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let input = rewrite(*input);
            if let LogicalPlan::Filter {
                input: inner_input,
                predicate: inner_pred,
            } = input
            {
                return LogicalPlan::Filter {
                    input: inner_input,
                    predicate: Scalar::Bin(BinOp::And, Box::new(inner_pred), Box::new(predicate)),
                };
            }
            LogicalPlan::Filter {
                input: Box::new(input),
                predicate,
            }
        }
        LogicalPlan::Limit { input, n } => {
            let input = rewrite(*input);
            if let LogicalPlan::Limit {
                input: inner_input,
                n: inner_n,
            } = input
            {
                return LogicalPlan::Limit {
                    input: inner_input,
                    n: n.min(inner_n),
                };
            }
            LogicalPlan::Limit {
                input: Box::new(input),
                n,
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            mode,
        } => LogicalPlan::Aggregate {
            input: Box::new(rewrite(*input)),
            group_by,
            aggs,
            mode,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(rewrite(*input)),
            keys,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(rewrite(*input)),
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            left_binding,
            right_binding,
            left_key,
            right_key,
        } => LogicalPlan::Join {
            left: Box::new(rewrite(*left)),
            right: Box::new(rewrite(*right)),
            kind,
            left_binding,
            right_binding,
            left_key,
            right_key,
        },
        leaf @ (LogicalPlan::Scan { .. } | LogicalPlan::Values { .. }) => leaf,
    }
}

/// Substitute inner projection columns into the outer spec. Returns `None`
/// when the outer spec references something the inner projection does not
/// produce as a simple column.
fn compose_projections(outer: &ProjectSpec, inner: &[(String, Scalar)]) -> Option<ProjectSpec> {
    let subst = |s: &Scalar| substitute(s, inner);
    match outer {
        ProjectSpec::Value(v) => Some(ProjectSpec::Value(subst(v)?)),
        ProjectSpec::Columns(cols) => {
            let mut out = Vec::with_capacity(cols.len());
            for (name, s) in cols {
                out.push((name.clone(), subst(s)?));
            }
            Some(ProjectSpec::Columns(out))
        }
        ProjectSpec::MergeStars(_) => None,
    }
}

fn substitute(s: &Scalar, inner: &[(String, Scalar)]) -> Option<Scalar> {
    match s {
        Scalar::Field(name) => inner
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, expr)| expr.clone()),
        Scalar::Lit(v) => Some(Scalar::Lit(v.clone())),
        Scalar::Un(op, a) => Some(Scalar::Un(*op, Box::new(substitute(a, inner)?))),
        Scalar::Bin(op, a, b) => Some(Scalar::Bin(
            *op,
            Box::new(substitute(a, inner)?),
            Box::new(substitute(b, inner)?),
        )),
        Scalar::Call(f, args) => {
            let args = args
                .iter()
                .map(|a| substitute(a, inner))
                .collect::<Option<Vec<_>>>()?;
            Some(Scalar::Call(*f, args))
        }
        Scalar::Is(a, k, neg) => Some(Scalar::Is(Box::new(substitute(a, inner)?), *k, *neg)),
        // The whole inner row or binding references: cannot compose.
        Scalar::Input | Scalar::FieldOf(_, _) | Scalar::BindingRef(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::Dialect;
    use crate::parser::parse;
    use crate::plan::builder::build_logical;
    use crate::plan::logical::ScalarFunc;

    fn optimized(q: &str, dialect: Dialect) -> LogicalPlan {
        let stmt = parse(q, dialect).unwrap();
        optimize(build_logical(&stmt, "Default").unwrap(), 4)
    }

    #[test]
    fn onion_flattens_to_filter_over_scan() {
        // The appendix-A SQL++ query: three nested subqueries.
        let p = optimized(
            "SELECT t.name, t.address FROM (SELECT VALUE t FROM (SELECT VALUE t FROM Test.Users t) t WHERE t.lang = \"en\") t LIMIT 10;",
            Dialect::SqlPlusPlus,
        );
        let s = p.display();
        // Limit -> Project -> Filter -> Scan, nothing else.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4, "plan was: {s}");
        assert!(lines[0].contains("Limit 10"));
        assert!(lines[1].contains("Project"));
        assert!(lines[2].contains("Filter"));
        assert!(lines[3].contains("Scan Test.Users"));
    }

    #[test]
    fn stacked_filters_merge() {
        let p = optimized(
            "SELECT * FROM (SELECT * FROM (SELECT * FROM data) t WHERE t.a = 1) t WHERE t.b = 2",
            Dialect::Sql,
        );
        match &p {
            LogicalPlan::Filter { input, predicate } => {
                assert!(matches!(predicate, Scalar::Bin(BinOp::And, _, _)));
                assert!(matches!(input.as_ref(), LogicalPlan::Scan { .. }));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn projections_compose() {
        // Expression 5's SQL shape: upper() over a pruned column.
        let p = optimized(
            "SELECT upper(\"stringu1\") FROM (SELECT \"stringu1\" FROM (SELECT * FROM data) t) t LIMIT 5",
            Dialect::Sql,
        );
        match &p {
            LogicalPlan::Limit { input, n: 5 } => match input.as_ref() {
                LogicalPlan::Project { input, spec } => {
                    assert!(matches!(input.as_ref(), LogicalPlan::Scan { .. }));
                    match spec {
                        ProjectSpec::Columns(cols) => {
                            assert!(matches!(&cols[0].1, Scalar::Call(ScalarFunc::Upper, _)));
                        }
                        _ => panic!(),
                    }
                }
                other => panic!("unexpected {other}"),
            },
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn limits_clamp() {
        let p = optimized(
            "SELECT * FROM (SELECT * FROM data LIMIT 3) t LIMIT 10",
            Dialect::Sql,
        );
        match p {
            LogicalPlan::Limit { n, .. } => assert_eq!(n, 3),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn zero_passes_still_normalizes_once() {
        let stmt = parse("SELECT * FROM (SELECT * FROM d) t", Dialect::Sql).unwrap();
        let p = optimize(build_logical(&stmt, "Default").unwrap(), 0);
        assert!(matches!(p, LogicalPlan::Scan { .. }));
    }
}
