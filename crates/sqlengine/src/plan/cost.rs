//! The cost model: estimated rows and abstract cost for physical plans.
//!
//! Sits between logical planning ([`crate::plan::builder`] /
//! [`crate::plan::optimizer`]) and physical planning
//! ([`crate::plan::physical`]): the planner enumerates the *legal*
//! access paths (personality flags gate legality), then uses these
//! estimates to pick among them — or a deterministic shape rule when
//! statistics are absent. The same estimates back the
//! [`ExplainReport`](polyframe_observe::ExplainReport) tree, so the
//! numbers a user sees in `explain()` are the numbers the planner used.
//!
//! Cost units are abstract "row visits": a sequential scan of `N` rows
//! costs `N`. Random heap fetches through an index cost
//! [`COST_INDEX_FETCH`] per row — the classic reason a low-selectivity
//! index loses to a sequential scan.

use crate::catalog::Database;
use crate::plan::logical::Scalar;
use crate::plan::physical::{Conjunct, DatasetRef, PhysicalPlan};
use crate::plan::stats::{
    StatsCatalog, TableStatsView, DEFAULT_EQ_SELECTIVITY, DEFAULT_OTHER_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
};
use polyframe_observe::explain::{ExplainNode, PlanAlternative};
use polyframe_storage::{KeyBound, ScanRange};

/// Cost of visiting one row in a sequential scan.
pub const COST_SEQ_ROW: f64 = 1.0;
/// Cost of one random heap fetch through an index.
pub const COST_INDEX_FETCH: f64 = 4.0;
/// Cost of visiting one index entry without touching the heap.
pub const COST_INDEX_WALK: f64 = 0.5;
/// Cost of inserting one row into a hash-join build table.
pub const COST_HASH_BUILD: f64 = 2.0;
/// Cost of probing the build table with one row.
pub const COST_HASH_PROBE: f64 = 1.2;
/// Per-row overhead of a streaming operator (filter, project).
pub const COST_ROW: f64 = 0.1;

/// An estimate for one (sub)plan: output rows and cumulative cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cost {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated cumulative cost, inputs included.
    pub total: f64,
}

impl Cost {
    /// A zero-cost, zero-row estimate.
    pub fn zero() -> Cost {
        Cost {
            rows: 0.0,
            total: 0.0,
        }
    }
}

/// One decision point recorded during physical planning: the node label
/// the decision produced, and every alternative weighed there.
#[derive(Debug, Clone)]
pub struct PlanDecision {
    /// Operator name of the plan node the chosen alternative produced
    /// (matched against the explain tree, first unconsumed wins).
    pub target: String,
    /// All alternatives, the chosen one flagged.
    pub alternatives: Vec<PlanAlternative>,
}

/// The cost model: table statistics (when captured) plus the catalog for
/// row-count fallbacks.
pub struct CostModel<'a> {
    /// The catalog plans are made against.
    pub db: &'a Database,
    /// Statistics snapshot; `None` = rule-based planning, default
    /// selectivities in estimates.
    pub stats: Option<&'a StatsCatalog>,
}

fn log2(n: f64) -> f64 {
    (n + 2.0).log2()
}

impl<'a> CostModel<'a> {
    /// Statistics view of one table, when a snapshot was captured.
    pub fn view(&self, ds: &DatasetRef) -> Option<&TableStatsView> {
        self.stats?.table(&ds.namespace, &ds.dataset)
    }

    /// Live row count of a table (statistics snapshot first, catalog as
    /// fallback so estimates exist even without captured stats).
    pub fn table_rows(&self, ds: &DatasetRef) -> f64 {
        if let Some(view) = self.view(ds) {
            return view.row_count;
        }
        self.db
            .dataset(&ds.namespace, &ds.dataset)
            .map(|t| t.len() as f64)
            .unwrap_or(0.0)
    }

    /// Estimated selectivity of one conjunct against a table.
    pub(crate) fn conjunct_selectivity(&self, ds: &DatasetRef, c: &Conjunct) -> f64 {
        let view = self.view(ds);
        match c {
            Conjunct::Eq(attr, value) => match view {
                Some(v) => v.eq_selectivity(attr, value),
                None => DEFAULT_EQ_SELECTIVITY,
            },
            Conjunct::Ge(attr, value, _) => match (view, value.as_f64()) {
                (Some(v), lo) => v.range_selectivity(attr, lo, None),
                (None, _) => DEFAULT_RANGE_SELECTIVITY,
            },
            Conjunct::Le(attr, value, _) => match (view, value.as_f64()) {
                (Some(v), hi) => v.range_selectivity(attr, None, hi),
                (None, _) => DEFAULT_RANGE_SELECTIVITY,
            },
            Conjunct::Unknown(attr) => match view {
                Some(v) => v.unknown_selectivity(attr),
                None => DEFAULT_EQ_SELECTIVITY,
            },
            Conjunct::Other(_) => DEFAULT_OTHER_SELECTIVITY,
        }
    }

    /// Combined selectivity of a conjunct list (independence assumed).
    pub(crate) fn conjuncts_selectivity(&self, ds: &DatasetRef, conjuncts: &[Conjunct]) -> f64 {
        conjuncts
            .iter()
            .map(|c| self.conjunct_selectivity(ds, c))
            .product::<f64>()
            .clamp(0.0, 1.0)
    }

    /// Estimated selectivity of an index [`ScanRange`].
    pub fn range_selectivity(&self, ds: &DatasetRef, attr: &str, range: &ScanRange) -> f64 {
        // Point range = equality.
        if let (KeyBound::Included(lo), KeyBound::Included(hi)) = (&range.lo, &range.hi) {
            if lo == hi {
                return match self.view(ds) {
                    Some(v) => v.eq_selectivity(attr, lo),
                    None => DEFAULT_EQ_SELECTIVITY,
                };
            }
        }
        let side = |b: &KeyBound| -> Option<f64> {
            match b {
                KeyBound::Unbounded => None,
                KeyBound::Included(v) | KeyBound::Excluded(v) => v.as_f64(),
            }
        };
        match self.view(ds) {
            Some(v) => v.range_selectivity(attr, side(&range.lo), side(&range.hi)),
            None => DEFAULT_RANGE_SELECTIVITY,
        }
    }

    /// Per-outer-row match count of an equality join into `ds.attr`.
    pub fn join_matches(&self, ds: &DatasetRef, attr: &str) -> f64 {
        let rows = self.table_rows(ds);
        match self.view(ds).and_then(|v| v.column(attr)) {
            Some(col) => (rows / col.ndv.max(1.0)).max(1.0),
            None => (rows * DEFAULT_EQ_SELECTIVITY).max(1.0),
        }
    }

    /// NDV of a join key expressed over a plan's base table, when both
    /// the base table and its statistics are known.
    fn key_ndv(&self, plan: &PhysicalPlan, key: &Scalar) -> Option<f64> {
        let ds = base_dataset(plan)?;
        let Scalar::Field(attr) = key else {
            return None;
        };
        self.view(&ds).and_then(|v| v.column(attr)).map(|c| c.ndv)
    }

    /// Estimate output rows and cumulative cost for a physical plan.
    pub fn estimate(&self, plan: &PhysicalPlan) -> Cost {
        use PhysicalPlan::*;
        match plan {
            SeqScan { dataset } => {
                let rows = self.table_rows(dataset);
                Cost {
                    rows,
                    total: rows * COST_SEQ_ROW,
                }
            }
            IndexScan {
                dataset,
                attr,
                range,
                ..
            } => {
                let n = self.table_rows(dataset);
                let rows = n * self.range_selectivity(dataset, attr, range);
                Cost {
                    rows,
                    total: log2(n) + rows * COST_INDEX_FETCH,
                }
            }
            IndexUnknownScan { dataset, attr } => {
                let n = self.table_rows(dataset);
                let sel = match self.view(dataset) {
                    Some(v) => v.unknown_selectivity(attr),
                    None => DEFAULT_EQ_SELECTIVITY,
                };
                let rows = n * sel;
                Cost {
                    rows,
                    total: log2(n) + rows * COST_INDEX_FETCH,
                }
            }
            IndexOnlyCount {
                dataset,
                attr,
                range,
                ..
            } => {
                let n = self.table_rows(dataset);
                let sel = match range {
                    Some(r) => self.range_selectivity(dataset, attr, r),
                    None => match self.view(dataset) {
                        Some(v) => v.unknown_selectivity(attr),
                        None => DEFAULT_EQ_SELECTIVITY,
                    },
                };
                Cost {
                    rows: 1.0,
                    total: log2(n) + n * sel * COST_INDEX_WALK,
                }
            }
            PrimaryIndexCount { dataset, .. } => Cost {
                rows: 1.0,
                total: self.table_rows(dataset) * COST_INDEX_WALK,
            },
            IndexMinMax { dataset, .. } => Cost {
                rows: 1.0,
                total: log2(self.table_rows(dataset)),
            },
            IndexOrderedScan { dataset, limit, .. } => {
                let n = self.table_rows(dataset);
                let rows = limit.map_or(n, |k| (k as f64).min(n));
                Cost {
                    rows,
                    total: log2(n) + rows * COST_INDEX_FETCH,
                }
            }
            IndexOnlyJoinCount { left, right, .. } => Cost {
                rows: 1.0,
                total: (self.table_rows(&left.0) + self.table_rows(&right.0)) * COST_INDEX_WALK,
            },
            IndexNLJoin { outer, inner, .. } => {
                let o = self.estimate(outer);
                let inner_rows = self.table_rows(&inner.0);
                let matches = self.join_matches(&inner.0, &inner.1);
                Cost {
                    rows: o.rows * matches,
                    total: o.total + o.rows * (log2(inner_rows) + matches * COST_INDEX_FETCH),
                }
            }
            HashJoin {
                left,
                right,
                left_key,
                right_key,
                ..
            } => {
                let l = self.estimate(left);
                let r = self.estimate(right);
                let ndv = self
                    .key_ndv(left, left_key)
                    .into_iter()
                    .chain(self.key_ndv(right, right_key))
                    .fold(f64::NAN, f64::max);
                let rows = if ndv.is_finite() && ndv >= 1.0 {
                    (l.rows * r.rows / ndv).max(1.0)
                } else {
                    l.rows.max(r.rows)
                };
                Cost {
                    rows,
                    total: l.total
                        + r.total
                        + r.rows * COST_HASH_BUILD
                        + l.rows * COST_HASH_PROBE
                        + rows * COST_ROW,
                }
            }
            Filter { input, predicate } => {
                let i = self.estimate(input);
                let sel = match base_dataset(input) {
                    Some(ds) => {
                        let mut conjuncts = Vec::new();
                        crate::plan::physical::split_conjuncts(predicate, &mut conjuncts);
                        self.conjuncts_selectivity(&ds, &conjuncts)
                    }
                    None => DEFAULT_OTHER_SELECTIVITY,
                };
                Cost {
                    rows: (i.rows * sel).max(1.0).min(i.rows),
                    total: i.total + i.rows * COST_ROW,
                }
            }
            Project { input, .. } => {
                let i = self.estimate(input);
                Cost {
                    rows: i.rows,
                    total: i.total + i.rows * COST_ROW,
                }
            }
            Aggregate {
                input, group_by, ..
            } => {
                let i = self.estimate(input);
                let rows = if group_by.is_empty() {
                    1.0
                } else {
                    self.group_count(input, group_by, i.rows)
                };
                Cost {
                    rows,
                    total: i.total + i.rows * 2.0 * COST_ROW,
                }
            }
            Sort { input, topk, .. } => {
                let i = self.estimate(input);
                let rows = topk.map_or(i.rows, |k| (k as f64).min(i.rows));
                Cost {
                    rows,
                    total: i.total + i.rows * log2(i.rows) * COST_ROW,
                }
            }
            Limit { input, n } => {
                let i = self.estimate(input);
                Cost {
                    rows: (*n as f64).min(i.rows),
                    total: i.total,
                }
            }
            Distinct { input } => {
                let i = self.estimate(input);
                Cost {
                    rows: (i.rows * 0.5).max(1.0).min(i.rows),
                    total: i.total + i.rows * COST_ROW,
                }
            }
            Values { rows } => Cost {
                rows: rows.len() as f64,
                total: rows.len() as f64 * COST_ROW,
            },
        }
    }

    fn group_count(
        &self,
        input: &PhysicalPlan,
        group_by: &[(String, Scalar)],
        input_rows: f64,
    ) -> f64 {
        let mut ndv = 1.0;
        let mut known = false;
        for (_, key) in group_by {
            if let Some(k) = self.key_ndv(input, key) {
                ndv *= k.max(1.0);
                known = true;
            }
        }
        if known {
            ndv.min(input_rows).max(1.0)
        } else {
            input_rows.sqrt().max(1.0)
        }
    }

    /// Build the [`ExplainNode`] tree for a chosen plan, attaching the
    /// recorded planner decisions (first unconsumed decision whose target
    /// matches the node's operator).
    pub fn explain_tree(
        &self,
        plan: &PhysicalPlan,
        decisions: &mut Vec<Option<PlanDecision>>,
    ) -> ExplainNode {
        let est = self.estimate(plan);
        let (operator, detail) = op_parts(plan);
        let mut node = ExplainNode::new(operator, detail);
        node.est_rows = est.rows;
        node.est_cost = est.total;
        node.flags = flags_consulted(plan);
        if let Some(slot) = decisions
            .iter_mut()
            .find(|d| d.as_ref().is_some_and(|d| d.target == node.operator))
        {
            if let Some(decision) = slot.take() {
                node.alternatives = decision.alternatives;
            }
        }
        for child in children(plan) {
            node.children.push(self.explain_tree(child, decisions));
        }
        node
    }
}

/// The base table a streaming (cardinality-preserving-or-reducing)
/// pipeline reads from, when one exists.
pub fn base_dataset(plan: &PhysicalPlan) -> Option<DatasetRef> {
    use PhysicalPlan::*;
    match plan {
        SeqScan { dataset }
        | IndexScan { dataset, .. }
        | IndexUnknownScan { dataset, .. }
        | IndexOrderedScan { dataset, .. } => Some(dataset.clone()),
        Filter { input, .. }
        | Project { input, .. }
        | Limit { input, .. }
        | Sort { input, .. }
        | Distinct { input } => base_dataset(input),
        _ => None,
    }
}

fn children(plan: &PhysicalPlan) -> Vec<&PhysicalPlan> {
    use PhysicalPlan::*;
    match plan {
        IndexNLJoin { outer, .. } => vec![outer],
        HashJoin { left, right, .. } => vec![left, right],
        Filter { input, .. }
        | Project { input, .. }
        | Aggregate { input, .. }
        | Sort { input, .. }
        | Limit { input, .. }
        | Distinct { input } => vec![input],
        _ => Vec::new(),
    }
}

/// Operator name and detail string for one node (mirrors
/// [`PhysicalPlan::display`]'s vocabulary so plan assertions carry over).
pub fn op_parts(plan: &PhysicalPlan) -> (String, String) {
    use PhysicalPlan::*;
    match plan {
        SeqScan { dataset } => ("SeqScan".to_string(), dataset.to_string()),
        IndexScan {
            dataset,
            attr,
            direction,
            ..
        } => (
            "IndexScan".to_string(),
            format!("{dataset}({attr}) {direction:?}"),
        ),
        IndexUnknownScan { dataset, attr } => {
            ("IndexUnknownScan".to_string(), format!("{dataset}({attr})"))
        }
        IndexOnlyCount {
            dataset,
            attr,
            range,
            ..
        } => (
            "IndexOnlyCount".to_string(),
            format!(
                "{dataset}({attr}){}",
                if range.is_none() {
                    " [unknown keys]"
                } else {
                    ""
                }
            ),
        ),
        PrimaryIndexCount { dataset, .. } => ("PrimaryIndexCount".to_string(), dataset.to_string()),
        IndexMinMax {
            dataset,
            attr,
            is_min,
            ..
        } => (
            "IndexMinMax".to_string(),
            format!("{dataset}({attr}) {}", if *is_min { "min" } else { "max" }),
        ),
        IndexOrderedScan {
            dataset,
            attr,
            direction,
            limit,
        } => (
            "IndexOrderedScan".to_string(),
            format!("{dataset}({attr}) {direction:?} limit={limit:?}"),
        ),
        IndexOnlyJoinCount { left, right, .. } => (
            "IndexOnlyJoinCount".to_string(),
            format!("{}({}) x {}({})", left.0, left.1, right.0, right.1),
        ),
        IndexNLJoin { inner, .. } => (
            "IndexNLJoin".to_string(),
            format!("inner={}({})", inner.0, inner.1),
        ),
        HashJoin {
            left_binding,
            right_binding,
            kind,
            ..
        } => (
            "HashJoin".to_string(),
            format!("{kind:?} probe={left_binding} build={right_binding}"),
        ),
        Filter { .. } => ("Filter".to_string(), String::new()),
        Project { .. } => ("Project".to_string(), String::new()),
        Aggregate { group_by, mode, .. } => (
            "Aggregate".to_string(),
            format!("[{mode:?}] groups={}", group_by.len()),
        ),
        Sort { topk, .. } => ("Sort".to_string(), format!("topk={topk:?}")),
        Limit { n, .. } => ("Limit".to_string(), n.to_string()),
        Distinct { .. } => ("Distinct".to_string(), String::new()),
        Values { rows } => ("Values".to_string(), format!("({} rows)", rows.len())),
    }
}

/// The personality flags consulted to admit an operator: the legality
/// gates of [`crate::plan::physical`], surfaced per node.
fn flags_consulted(plan: &PhysicalPlan) -> Vec<String> {
    use PhysicalPlan::*;
    let flags: &[&str] = match plan {
        PrimaryIndexCount { .. } => &["count_via_primary_index"],
        IndexMinMax { .. } => &["index_only_scans"],
        IndexOnlyCount { range: Some(_), .. } => &["index_only_scans"],
        IndexOnlyCount { range: None, .. } => &["index_only_scans", "nulls_in_indexes"],
        IndexOrderedScan { .. } => &["backward_index_scans"],
        IndexUnknownScan { .. } => &["nulls_in_indexes"],
        IndexOnlyJoinCount { .. } => &["index_only_join"],
        _ => &[],
    };
    flags.iter().map(|f| f.to_string()).collect()
}
