//! AST → logical plan translation (binding resolution, aggregate detection,
//! output naming).

use crate::ast::*;
use crate::error::{EngineError, Result};
use crate::plan::logical::*;
use polyframe_datamodel::{Record, Value};

/// Name-resolution context: the bindings visible to expressions.
#[derive(Debug, Clone)]
struct Context {
    /// Binding names in scope. One name: rows are the binding's records.
    /// Two or more (join): rows are objects keyed by binding name.
    bindings: Vec<String>,
}

impl Context {
    fn is_join(&self) -> bool {
        self.bindings.len() > 1
    }

    fn single(&self) -> Option<&str> {
        if self.bindings.len() == 1 {
            Some(&self.bindings[0])
        } else {
            None
        }
    }
}

/// Build a logical plan for `stmt`. `default_namespace` resolves single-part
/// dataset names.
pub fn build_logical(stmt: &SelectStmt, default_namespace: &str) -> Result<LogicalPlan> {
    Builder {
        default_namespace: default_namespace.to_string(),
    }
    .build(stmt)
}

struct Builder {
    default_namespace: String,
}

impl Builder {
    fn build(&self, stmt: &SelectStmt) -> Result<LogicalPlan> {
        // 1. FROM.
        let (mut plan, ctx) = match &stmt.from {
            Some(from) => self.build_from(from)?,
            None => (
                LogicalPlan::Values {
                    rows: vec![Value::Obj(Record::new())],
                },
                Context { bindings: vec![] },
            ),
        };

        // 2. WHERE.
        if let Some(pred) = &stmt.where_clause {
            let predicate = self.resolve(pred, &ctx)?;
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        // 3. Aggregation?
        let has_agg = stmt
            .items
            .iter()
            .any(|it| matches!(it, SelectItem::Expr { expr, .. } if top_level_agg(expr).is_some()));

        if has_agg || !stmt.group_by.is_empty() {
            plan = self.build_aggregate(stmt, plan, &ctx)?;
        } else {
            // 4. ORDER BY (pre-projection: keys reference input bindings).
            if !stmt.order_by.is_empty() {
                let keys = stmt
                    .order_by
                    .iter()
                    .map(|k| Ok((self.resolve(&k.expr, &ctx)?, k.desc)))
                    .collect::<Result<Vec<_>>>()?;
                plan = LogicalPlan::Sort {
                    input: Box::new(plan),
                    keys,
                };
            }
            // 5. Projection.
            if let Some(spec) = self.build_projection(stmt, &ctx)? {
                plan = LogicalPlan::Project {
                    input: Box::new(plan),
                    spec,
                };
            }
        }

        if stmt.distinct {
            plan = LogicalPlan::Distinct {
                input: Box::new(plan),
            };
        }
        if let Some(n) = stmt.limit {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                n,
            };
        }
        Ok(plan)
    }

    fn build_from(&self, from: &FromClause) -> Result<(LogicalPlan, Context)> {
        let (left_plan, left_binding) = self.build_from_item(&from.first)?;
        if from.joins.is_empty() {
            return Ok((
                left_plan,
                Context {
                    bindings: vec![left_binding],
                },
            ));
        }
        if from.joins.len() > 1 {
            return Err(EngineError::plan("at most one join is supported"));
        }
        let join = &from.joins[0];
        let (right_plan, right_binding) = self.build_from_item(&join.item)?;
        let ctx = Context {
            bindings: vec![left_binding.clone(), right_binding.clone()],
        };
        let on = self.resolve(&join.on, &ctx)?;
        let (left_key, right_key) = split_equi_join(&on, &left_binding, &right_binding)?;
        Ok((
            LogicalPlan::Join {
                left: Box::new(left_plan),
                right: Box::new(right_plan),
                kind: join.kind,
                left_binding,
                right_binding,
                left_key,
                right_key,
            },
            ctx,
        ))
    }

    fn build_from_item(&self, item: &FromItem) -> Result<(LogicalPlan, String)> {
        match item {
            FromItem::Dataset { path, alias } => {
                let (namespace, dataset) = match path.len() {
                    1 => (self.default_namespace.clone(), path[0].clone()),
                    2 => (path[0].clone(), path[1].clone()),
                    _ => {
                        return Err(EngineError::plan(format!(
                            "dataset name has too many parts: {}",
                            path.join(".")
                        )))
                    }
                };
                let binding = alias.clone().unwrap_or_else(|| dataset.clone());
                Ok((LogicalPlan::Scan { namespace, dataset }, binding))
            }
            FromItem::Subquery { query, alias } => {
                let plan = self.build(query)?;
                let binding = alias.clone().unwrap_or_else(|| "$subquery".to_string());
                Ok((plan, binding))
            }
        }
    }

    fn build_projection(&self, stmt: &SelectStmt, ctx: &Context) -> Result<Option<ProjectSpec>> {
        if stmt.value_mode {
            let item = &stmt.items[0];
            let SelectItem::Expr { expr, .. } = item else {
                return Err(EngineError::plan("SELECT VALUE requires an expression"));
            };
            let scalar = self.resolve(expr, ctx)?;
            if scalar == Scalar::Input {
                return Ok(None); // SELECT VALUE t — identity.
            }
            return Ok(Some(ProjectSpec::Value(scalar)));
        }

        // `SELECT *` alone: identity.
        if stmt.items.len() == 1 && matches!(stmt.items[0], SelectItem::Star) {
            return Ok(None);
        }

        // All qualified stars (`SELECT t.*` / `SELECT l.*, r.*`).
        if stmt
            .items
            .iter()
            .all(|it| matches!(it, SelectItem::QualifiedStar(_)))
        {
            let names: Vec<String> = stmt
                .items
                .iter()
                .map(|it| match it {
                    SelectItem::QualifiedStar(b) => b.clone(),
                    _ => unreachable!(),
                })
                .collect();
            for n in &names {
                if !ctx.bindings.contains(n) {
                    return Err(EngineError::plan(format!("unknown binding {n} in `.*`")));
                }
            }
            if ctx.single().is_some() {
                return Ok(None); // `SELECT t.*` over one binding: identity.
            }
            return Ok(Some(ProjectSpec::MergeStars(names)));
        }

        // General column list.
        let mut cols = Vec::new();
        for (i, item) in stmt.items.iter().enumerate() {
            match item {
                SelectItem::Star | SelectItem::QualifiedStar(_) => {
                    return Err(EngineError::plan(
                        "`*` cannot be mixed with other select items",
                    ))
                }
                SelectItem::Expr { expr, alias } => {
                    let scalar = self.resolve(expr, ctx)?;
                    let name = output_name(expr, alias.as_deref(), i);
                    cols.push((name, scalar));
                }
            }
        }
        Ok(Some(ProjectSpec::Columns(cols)))
    }

    fn build_aggregate(
        &self,
        stmt: &SelectStmt,
        input: LogicalPlan,
        ctx: &Context,
    ) -> Result<LogicalPlan> {
        // Group keys with output names.
        let mut group_by = Vec::new();
        for (i, g) in stmt.group_by.iter().enumerate() {
            let scalar = self.resolve(g, ctx)?;
            let name = match g {
                AstExpr::Path(parts) => parts.last().unwrap().clone(),
                _ => format!("g{i}"),
            };
            group_by.push((name, scalar));
        }

        // Aggregates and the post-aggregation projection.
        let mut aggs: Vec<AggExpr> = Vec::new();
        let mut out_cols: Vec<(String, Scalar)> = Vec::new();
        for (i, item) in stmt.items.iter().enumerate() {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(EngineError::plan(
                    "`*` select items are not allowed with GROUP BY/aggregates",
                ));
            };
            if let Some((func, args)) = top_level_agg(expr) {
                let arg = match args {
                    [AstExpr::Star] => AggArg::Star,
                    [single] => AggArg::Expr(self.resolve(single, ctx)?),
                    _ => return Err(EngineError::plan("aggregates take exactly one argument")),
                };
                let mut name = alias
                    .clone()
                    .unwrap_or_else(|| func.display_name().to_string());
                while aggs.iter().any(|a| a.name == name)
                    || group_by.iter().any(|(g, _)| *g == name)
                {
                    name.push('_');
                }
                aggs.push(AggExpr {
                    name: name.clone(),
                    func,
                    arg,
                });
                out_cols.push((
                    alias
                        .clone()
                        .unwrap_or_else(|| func.display_name().to_string()),
                    Scalar::Field(name),
                ));
            } else {
                // Must reference a group key.
                let scalar = self.resolve(expr, ctx)?;
                let key = group_by.iter().find(|(_, g)| *g == scalar).ok_or_else(|| {
                    EngineError::plan(format!(
                        "select item {i} is neither an aggregate nor a group key"
                    ))
                })?;
                let name = match expr {
                    AstExpr::Path(parts) => alias
                        .clone()
                        .unwrap_or_else(|| parts.last().unwrap().clone()),
                    _ => alias.clone().unwrap_or_else(|| key.0.clone()),
                };
                out_cols.push((name, Scalar::Field(key.0.clone())));
            }
        }

        let agg_plan = LogicalPlan::Aggregate {
            input: Box::new(input),
            group_by: group_by.clone(),
            aggs,
            mode: AggMode::Complete,
        };

        // Post-aggregation ORDER BY references output columns.
        let mut plan = agg_plan;
        if !stmt.order_by.is_empty() {
            let keys = stmt
                .order_by
                .iter()
                .map(|k| match &k.expr {
                    AstExpr::Path(parts) => {
                        Ok((Scalar::Field(parts.last().unwrap().clone()), k.desc))
                    }
                    _ => Err(EngineError::plan(
                        "ORDER BY over aggregates must reference output columns",
                    )),
                })
                .collect::<Result<Vec<_>>>()?;
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys,
            };
        }

        // Final projection shapes output (VALUE mode yields bare values).
        let spec = if stmt.value_mode {
            let field = out_cols
                .first()
                .map(|(_, s)| s.clone())
                .ok_or_else(|| EngineError::plan("empty select list"))?;
            ProjectSpec::Value(field)
        } else {
            ProjectSpec::Columns(out_cols)
        };
        Ok(LogicalPlan::Project {
            input: Box::new(plan),
            spec,
        })
    }

    /// Resolve an AST expression against the context's bindings.
    fn resolve(&self, expr: &AstExpr, ctx: &Context) -> Result<Scalar> {
        match expr {
            AstExpr::Lit(v) => Ok(Scalar::Lit(v.clone())),
            AstExpr::Star => Err(EngineError::plan("`*` is only valid inside COUNT(*)")),
            AstExpr::Path(parts) => self.resolve_path(parts, ctx),
            AstExpr::Unary(op, a) => Ok(Scalar::Un(*op, Box::new(self.resolve(a, ctx)?))),
            AstExpr::Binary(op, a, b) => Ok(Scalar::Bin(
                *op,
                Box::new(self.resolve(a, ctx)?),
                Box::new(self.resolve(b, ctx)?),
            )),
            AstExpr::Is(a, kind, neg) => {
                Ok(Scalar::Is(Box::new(self.resolve(a, ctx)?), *kind, *neg))
            }
            AstExpr::Func { name, args } => {
                if AggFunc::from_name(name).is_some() {
                    return Err(EngineError::plan(format!(
                        "aggregate {name} is not allowed in this position"
                    )));
                }
                let func = ScalarFunc::from_name(name)
                    .ok_or_else(|| EngineError::plan(format!("unknown function {name}")))?;
                let args = args
                    .iter()
                    .map(|a| self.resolve(a, ctx))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Scalar::Call(func, args))
            }
        }
    }

    fn resolve_path(&self, parts: &[String], ctx: &Context) -> Result<Scalar> {
        if ctx.is_join() {
            return match parts {
                [b] if ctx.bindings.contains(b) => Ok(Scalar::BindingRef(b.clone())),
                [b, f] if ctx.bindings.contains(b) => Ok(Scalar::FieldOf(b.clone(), f.clone())),
                _ => Err(EngineError::plan(format!(
                    "cannot resolve `{}` against join bindings {:?}",
                    parts.join("."),
                    ctx.bindings
                ))),
            };
        }
        match (ctx.single(), parts) {
            (Some(b), [only]) if only == b => Ok(Scalar::Input),
            (Some(b), [head, rest @ ..]) if head == b && !rest.is_empty() => Ok(nested_field(rest)),
            (_, [field]) => Ok(Scalar::Field(field.clone())),
            (Some(_), parts) => {
                // Unqualified nested path (`a.b` where `a` is a field).
                Ok(nested_field(parts))
            }
            (None, parts) => Err(EngineError::plan(format!(
                "cannot resolve `{}`: no FROM bindings in scope",
                parts.join(".")
            ))),
        }
    }
}

/// Build field access for a binding-relative path. Paths of depth 2+
/// navigate into nested records via [`Scalar::FieldOf`]-style chaining:
/// `a.b` becomes `FieldOf(a, b)` where `a` is a record-valued field.
fn nested_field(parts: &[String]) -> Scalar {
    if parts.len() == 2 {
        // Record-valued field navigation (`address.city`): reuse FieldOf,
        // whose evaluator navigates `row.a.b` regardless of whether `a` is a
        // join binding or a nested record.
        Scalar::FieldOf(parts[0].clone(), parts[1].clone())
    } else {
        Scalar::Field(parts[0].clone())
    }
}

/// If `expr` is a top-level aggregate call, return `(func, args)`.
fn top_level_agg(expr: &AstExpr) -> Option<(AggFunc, &[AstExpr])> {
    match expr {
        AstExpr::Func { name, args } => AggFunc::from_name(name).map(|f| (f, args.as_slice())),
        _ => None,
    }
}

/// Output-column naming: alias > path tail > lowercase function name > `$N`.
fn output_name(expr: &AstExpr, alias: Option<&str>, index: usize) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match expr {
        AstExpr::Path(parts) => parts.last().unwrap().clone(),
        AstExpr::Func { name, .. } => name.to_ascii_lowercase(),
        _ => format!("${}", index + 1),
    }
}

/// Decompose an `ON` predicate into `(left_key, right_key)` scalars
/// evaluated on the left/right input rows respectively.
fn split_equi_join(
    on: &Scalar,
    left_binding: &str,
    right_binding: &str,
) -> Result<(Scalar, Scalar)> {
    if let Scalar::Bin(BinOp::Eq, a, b) = on {
        let classify = |s: &Scalar| -> Option<(bool, String)> {
            match s {
                Scalar::FieldOf(b, f) if b == left_binding => Some((true, f.clone())),
                Scalar::FieldOf(b, f) if b == right_binding => Some((false, f.clone())),
                _ => None,
            }
        };
        if let (Some((a_left, af)), Some((b_left, bf))) = (classify(a), classify(b)) {
            if a_left && !b_left {
                return Ok((Scalar::Field(af), Scalar::Field(bf)));
            }
            if !a_left && b_left {
                return Ok((Scalar::Field(bf), Scalar::Field(af)));
            }
        }
    }
    Err(EngineError::plan(
        "only equi-joins of the form l.key = r.key are supported",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::Dialect;
    use crate::parser::parse;

    fn plan_sql(q: &str) -> LogicalPlan {
        build_logical(&parse(q, Dialect::Sql).unwrap(), "Default").unwrap()
    }

    fn plan_sqlpp(q: &str) -> LogicalPlan {
        build_logical(&parse(q, Dialect::SqlPlusPlus).unwrap(), "Default").unwrap()
    }

    #[test]
    fn scan_with_default_namespace() {
        let p = plan_sql("SELECT * FROM data");
        assert_eq!(
            p,
            LogicalPlan::Scan {
                namespace: "Default".into(),
                dataset: "data".into()
            }
        );
    }

    #[test]
    fn qualified_scan() {
        let p = plan_sqlpp("SELECT VALUE t FROM Test.Users t");
        assert_eq!(
            p,
            LogicalPlan::Scan {
                namespace: "Test".into(),
                dataset: "Users".into()
            }
        );
    }

    #[test]
    fn filter_resolves_alias() {
        let p = plan_sql("SELECT * FROM data t WHERE t.x = 1");
        match p {
            LogicalPlan::Filter { predicate, .. } => {
                assert_eq!(
                    predicate,
                    Scalar::eq(Scalar::Field("x".into()), Scalar::Lit(Value::Int(1)))
                );
            }
            other => panic!("unexpected plan {other}"),
        }
    }

    #[test]
    fn nested_subquery_inlines() {
        let p = plan_sql(
            "SELECT t.name FROM (SELECT * FROM (SELECT * FROM Test.Users t) t WHERE t.lang = 'en') t LIMIT 10",
        );
        // Limit(Project(Filter(Scan))) — identity projections vanish.
        let s = p.display();
        assert!(s.contains("Limit 10"));
        assert!(s.contains("Filter"));
        assert!(s.contains("Scan Test.Users"));
    }

    #[test]
    fn count_star_aggregate() {
        let p = plan_sqlpp("SELECT VALUE COUNT(*) FROM data");
        match &p {
            LogicalPlan::Project { input, spec } => {
                assert_eq!(spec, &ProjectSpec::Value(Scalar::Field("count".into())));
                match input.as_ref() {
                    LogicalPlan::Aggregate { aggs, group_by, .. } => {
                        assert!(group_by.is_empty());
                        assert_eq!(aggs[0].func, AggFunc::Count);
                        assert_eq!(aggs[0].arg, AggArg::Star);
                    }
                    other => panic!("unexpected {other}"),
                }
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn group_by_plan() {
        let p = plan_sql(
            "SELECT \"oddOnePercent\", COUNT(\"oddOnePercent\") AS cnt FROM (SELECT * FROM data) t GROUP BY \"oddOnePercent\"",
        );
        match &p {
            LogicalPlan::Project { input, spec } => {
                match spec {
                    ProjectSpec::Columns(cols) => {
                        assert_eq!(cols[0].0, "oddOnePercent");
                        assert_eq!(cols[1].0, "cnt");
                    }
                    _ => panic!(),
                }
                assert!(
                    matches!(input.as_ref(), LogicalPlan::Aggregate { group_by, .. } if group_by.len() == 1)
                );
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn join_splits_keys() {
        let p = plan_sqlpp(
            "SELECT VALUE COUNT(*) FROM (SELECT l, r FROM leftData l JOIN rightData r ON l.unique1 = r.unique1) t",
        );
        let s = p.display();
        assert!(s.contains("Join"));
        assert!(s.contains("Scan Default.leftData"));
        assert!(s.contains("Scan Default.rightData"));
    }

    #[test]
    fn join_key_order_normalized() {
        // ON r.k = l.k must still put the left key first.
        let p = plan_sql("SELECT COUNT(*) FROM (SELECT l.*, r.* FROM a l JOIN b r ON r.k = l.k) t");
        fn find_join(p: &LogicalPlan) -> Option<(&Scalar, &Scalar)> {
            match p {
                LogicalPlan::Join {
                    left_key,
                    right_key,
                    ..
                } => Some((left_key, right_key)),
                LogicalPlan::Project { input, .. }
                | LogicalPlan::Filter { input, .. }
                | LogicalPlan::Limit { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Distinct { input }
                | LogicalPlan::Aggregate { input, .. } => find_join(input),
                _ => None,
            }
        }
        let (lk, rk) = find_join(&p).unwrap();
        assert_eq!(lk, &Scalar::Field("k".into()));
        assert_eq!(rk, &Scalar::Field("k".into()));
    }

    #[test]
    fn sort_before_projection() {
        let p = plan_sqlpp(
            "SELECT VALUE t FROM (SELECT VALUE t FROM data t) t ORDER BY t.unique1 DESC LIMIT 5",
        );
        let s = p.display();
        let sort_pos = s.find("Sort").unwrap();
        let scan_pos = s.find("Scan").unwrap();
        assert!(sort_pos < scan_pos);
        assert!(s.contains("Limit 5"));
    }

    #[test]
    fn errors() {
        assert!(build_logical(
            &parse("SELECT x FROM a l JOIN b r ON l.k = r.k2 + 1", Dialect::Sql).unwrap(),
            "d"
        )
        .is_err());
        assert!(build_logical(
            &parse("SELECT nonkey, COUNT(*) FROM t GROUP BY k", Dialect::Sql).unwrap(),
            "d"
        )
        .is_err());
        assert!(build_logical(
            &parse("SELECT UNKNOWN_FUNC(x) FROM t", Dialect::Sql).unwrap(),
            "d"
        )
        .is_err());
    }

    #[test]
    fn select_expression_projection() {
        let p = plan_sql("SELECT t.lang = 'en' FROM (SELECT * FROM d) t");
        match p {
            LogicalPlan::Project { spec, .. } => match spec {
                ProjectSpec::Columns(cols) => {
                    assert_eq!(cols[0].0, "$1");
                }
                _ => panic!(),
            },
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn merge_stars_projection() {
        let p = plan_sql("SELECT l.*, r.* FROM a l JOIN b r ON l.k = r.k");
        match p {
            LogicalPlan::Project { spec, .. } => {
                assert_eq!(
                    spec,
                    ProjectSpec::MergeStars(vec!["l".to_string(), "r".to_string()])
                );
            }
            other => panic!("unexpected {other}"),
        }
    }
}
