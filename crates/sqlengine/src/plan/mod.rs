//! Query planning: logical plans, the AST-to-plan builder, the logical
//! optimizer, physical planning and the distributed split used by
//! `polyframe-cluster`.

pub mod builder;
pub mod cache;
#[deny(clippy::unwrap_used)]
pub mod cost;
pub mod distributed;
pub mod logical;
pub mod optimizer;
pub mod physical;
#[deny(clippy::unwrap_used)]
pub mod stats;

pub use builder::build_logical;
pub use cache::{CacheOutcome, CachedPlan, PlanCache};
pub use cost::{Cost, CostModel, PlanDecision};
pub use logical::{AggArg, AggExpr, AggFunc, LogicalPlan, ProjectSpec, Scalar, ScalarFunc};
pub use optimizer::optimize;
pub use physical::{plan_physical, plan_physical_explained, PhysicalPlan, PlannerOptions};
pub use stats::StatsCatalog;
