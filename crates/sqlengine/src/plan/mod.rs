//! Query planning: logical plans, the AST-to-plan builder, the logical
//! optimizer, physical planning and the distributed split used by
//! `polyframe-cluster`.

pub mod builder;
pub mod cache;
pub mod distributed;
pub mod logical;
pub mod optimizer;
pub mod physical;

pub use builder::build_logical;
pub use cache::{CacheOutcome, CachedPlan, PlanCache};
pub use logical::{AggArg, AggExpr, AggFunc, LogicalPlan, ProjectSpec, Scalar, ScalarFunc};
pub use optimizer::optimize;
pub use physical::{plan_physical, PhysicalPlan};
