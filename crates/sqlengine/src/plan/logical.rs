//! The logical plan and resolved scalar expressions.

use crate::ast::{BinOp, IsKind, JoinKind, UnaryOp};
use polyframe_datamodel::Value;
use std::fmt;

/// A resolved scalar expression, evaluated against one row.
///
/// Rows are [`Value`]s. A scan row is the stored record itself; a join row
/// is an object with one field per binding (`{l: <left row>, r: <right
/// row>}`), which is exactly the record `SELECT l, r FROM ... JOIN ...`
/// produces in SQL++.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// The whole current row (`SELECT VALUE t`, `SELECT *`).
    Input,
    /// Field of the current row (`t.x` once `t` is resolved, or bare `x`).
    Field(String),
    /// `binding.field` on a multi-binding (join) row.
    FieldOf(String, String),
    /// A whole binding's value on a join row (`SELECT l, r`).
    BindingRef(String),
    /// Literal.
    Lit(Value),
    /// Unary operator.
    Un(UnaryOp, Box<Scalar>),
    /// Binary operator.
    Bin(BinOp, Box<Scalar>, Box<Scalar>),
    /// Built-in scalar function.
    Call(ScalarFunc, Vec<Scalar>),
    /// `IS [NOT] NULL/MISSING/UNKNOWN`.
    Is(Box<Scalar>, IsKind, bool),
}

impl Scalar {
    /// Equality-comparison convenience used in tests.
    pub fn eq(lhs: Scalar, rhs: Scalar) -> Scalar {
        Scalar::Bin(BinOp::Eq, Box::new(lhs), Box::new(rhs))
    }

    /// Collect the names of fields of the *current row* this expression
    /// reads (`Field` only; join-scoped references excluded). `None` when
    /// the expression needs the entire row.
    pub fn referenced_fields(&self) -> Option<Vec<String>> {
        fn walk(s: &Scalar, out: &mut Vec<String>) -> bool {
            match s {
                Scalar::Input | Scalar::BindingRef(_) => false,
                Scalar::Field(f) => {
                    if !out.contains(f) {
                        out.push(f.clone());
                    }
                    true
                }
                Scalar::FieldOf(_, _) => false,
                Scalar::Lit(_) => true,
                Scalar::Un(_, a) => walk(a, out),
                Scalar::Bin(_, a, b) => walk(a, out) && walk(b, out),
                Scalar::Call(_, args) => args.iter().all(|a| walk(a, out)),
                Scalar::Is(a, _, _) => walk(a, out),
            }
        }
        let mut out = Vec::new();
        if walk(self, &mut out) {
            Some(out)
        } else {
            None
        }
    }
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// `UPPER(s)`
    Upper,
    /// `LOWER(s)`
    Lower,
    /// `ABS(x)`
    Abs,
    /// `LENGTH(s)`
    Length,
    /// `TO_STRING(x)` / `TO_STR(x)`
    ToString,
    /// `TO_INT(x)` / `TO_BIGINT(x)`
    ToInt,
}

impl ScalarFunc {
    /// Resolve an upper-cased function name.
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        match name {
            "UPPER" => Some(ScalarFunc::Upper),
            "LOWER" => Some(ScalarFunc::Lower),
            "ABS" => Some(ScalarFunc::Abs),
            "LENGTH" | "LEN" => Some(ScalarFunc::Length),
            "TO_STRING" | "TO_STR" | "STRING" => Some(ScalarFunc::ToString),
            "TO_INT" | "TO_BIGINT" | "TO_INTEGER" => Some(ScalarFunc::ToInt),
            _ => None,
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `AVG`
    Avg,
    /// `STDDEV` (population standard deviation, like the paper's
    /// `STDDEV`/`$stdDevPop`/`stDevP` trio).
    StdDev,
}

impl AggFunc {
    /// Resolve an upper-cased function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "AVG" | "MEAN" => Some(AggFunc::Avg),
            "STDDEV" | "STDDEV_POP" | "STDDEVPOP" => Some(AggFunc::StdDev),
            _ => None,
        }
    }

    /// Lower-case display name (used to synthesize output column names).
    pub fn display_name(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
            AggFunc::StdDev => "stddev",
        }
    }
}

/// The argument of an aggregate.
#[derive(Debug, Clone, PartialEq)]
pub enum AggArg {
    /// `COUNT(*)`
    Star,
    /// `AGG(expr)`
    Expr(Scalar),
}

/// One aggregate expression with its output name.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// Output field name.
    pub name: String,
    /// The aggregate function.
    pub func: AggFunc,
    /// Its argument.
    pub arg: AggArg,
}

/// How a projection shapes its output rows.
#[derive(Debug, Clone, PartialEq)]
pub enum ProjectSpec {
    /// `SELECT VALUE expr`: the row *is* the value.
    Value(Scalar),
    /// `SELECT a, b AS c, ...`: the row is an object.
    Columns(Vec<(String, Scalar)>),
    /// `SELECT l.*, r.*` over a join row: flatten the named bindings'
    /// records into one output record, in order.
    MergeStars(Vec<String>),
}

impl ProjectSpec {
    /// True when the projection passes rows through unchanged.
    pub fn is_identity(&self) -> bool {
        matches!(self, ProjectSpec::Value(Scalar::Input))
    }
}

/// Execution mode of an aggregate node (used by distributed execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggMode {
    /// Normal: consume raw rows, emit final values.
    Complete,
    /// Shard-side: consume raw rows, emit serialized partial states.
    Partial,
    /// Coordinator-side: consume partial states, emit final values.
    Final,
}

/// The logical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a stored dataset.
    Scan {
        /// Namespace (dataverse/schema).
        namespace: String,
        /// Dataset (table/collection) name.
        dataset: String,
    },
    /// Literal rows (used for `FROM`-less selects and tests).
    Values {
        /// The rows.
        rows: Vec<Value>,
    },
    /// Filter by predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate (kept under three-valued logic: only `True` passes).
        predicate: Scalar,
    },
    /// Projection.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output shape.
        spec: ProjectSpec,
    },
    /// Grouped or scalar aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group keys: `(output name, key expression)`.
        group_by: Vec<(String, Scalar)>,
        /// Aggregates to compute.
        aggs: Vec<AggExpr>,
        /// Partial/final mode for distributed execution.
        mode: AggMode,
    },
    /// Sort.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys: `(expression, descending)`.
        keys: Vec<(Scalar, bool)>,
    },
    /// Row-count limit.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum rows.
        n: u64,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Equi-join producing `{left_binding: l, right_binding: r}` rows.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join type.
        kind: JoinKind,
        /// Binding name for left rows in the output object.
        left_binding: String,
        /// Binding name for right rows in the output object.
        right_binding: String,
        /// Left key expression (evaluated on a *left* row).
        left_key: Scalar,
        /// Right key expression (evaluated on a *right* row).
        right_key: Scalar,
    },
}

impl LogicalPlan {
    /// Pretty tree rendering for tests and debugging.
    pub fn display(&self) -> String {
        let mut out = String::new();
        self.fmt_indent(&mut out, 0);
        out
    }

    fn fmt_indent(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan { namespace, dataset } => {
                out.push_str(&format!("{pad}Scan {namespace}.{dataset}\n"));
            }
            LogicalPlan::Values { rows } => {
                out.push_str(&format!("{pad}Values ({} rows)\n", rows.len()));
            }
            LogicalPlan::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Filter {predicate:?}\n"));
                input.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Project { input, spec } => {
                out.push_str(&format!("{pad}Project {spec:?}\n"));
                input.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                mode,
            } => {
                let names: Vec<&str> = aggs.iter().map(|a| a.name.as_str()).collect();
                out.push_str(&format!(
                    "{pad}Aggregate[{mode:?}] groups={} aggs={names:?}\n",
                    group_by.len()
                ));
                input.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Sort { input, keys } => {
                out.push_str(&format!("{pad}Sort ({} keys)\n", keys.len()));
                input.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit {n}\n"));
                input.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                left_key,
                right_key,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}Join[{kind:?}] {left_key:?} = {right_key:?}\n"
                ));
                left.fmt_indent(out, depth + 1);
                right.fmt_indent(out, depth + 1);
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_fields() {
        let s = Scalar::Bin(
            BinOp::And,
            Box::new(Scalar::eq(
                Scalar::Field("a".into()),
                Scalar::Lit(Value::Int(1)),
            )),
            Box::new(Scalar::eq(
                Scalar::Field("b".into()),
                Scalar::Field("a".into()),
            )),
        );
        assert_eq!(
            s.referenced_fields(),
            Some(vec!["a".to_string(), "b".to_string()])
        );
        assert_eq!(Scalar::Input.referenced_fields(), None);
    }

    #[test]
    fn func_name_resolution() {
        assert_eq!(AggFunc::from_name("COUNT"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("STDDEV_POP"), Some(AggFunc::StdDev));
        assert_eq!(AggFunc::from_name("UPPER"), None);
        assert_eq!(ScalarFunc::from_name("UPPER"), Some(ScalarFunc::Upper));
        assert_eq!(ScalarFunc::from_name("COUNT"), None);
    }

    #[test]
    fn identity_projection() {
        assert!(ProjectSpec::Value(Scalar::Input).is_identity());
        assert!(!ProjectSpec::Columns(vec![]).is_identity());
    }
}
