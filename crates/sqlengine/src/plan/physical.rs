//! Physical planning: logical plan + catalog + personality → executable plan.
//!
//! This is where the paper's per-system observations are decided:
//!
//! * expr 1 — `PrimaryIndexCount` (AsterixDB) vs seq-scan count (PostgreSQL),
//! * exprs 3/10/11 — `IndexScan` with residual filters,
//! * exprs 6/7 — `IndexMinMax` when `index_only_scans` is set (PostgreSQL 12),
//! * expr 9 — `IndexOrderedScan` when `backward_index_scans` is set,
//! * expr 13 — unknown-key index paths when `nulls_in_indexes` is set,
//! * expr 12 — `IndexOnlyJoinCount` when `index_only_join` is set (AsterixDB),
//!   otherwise `IndexNLJoin`/`HashJoin`.

use crate::ast::{BinOp, IsKind, JoinKind};
use crate::catalog::Database;
use crate::error::Result;
use crate::personality::Personality;
use crate::plan::cost::{op_parts, CostModel, PlanDecision};
use crate::plan::logical::{AggArg, AggExpr, AggFunc, AggMode, LogicalPlan, ProjectSpec, Scalar};
use crate::plan::stats::StatsCatalog;
use polyframe_datamodel::Value;
use polyframe_observe::explain::PlanAlternative;
use polyframe_storage::{Direction, KeyBound, ScanRange};
use std::cell::RefCell;
use std::sync::Arc;

/// Options steering physical planning.
#[derive(Debug, Clone)]
pub struct PlannerOptions {
    /// The system personality (feature flags).
    pub personality: Personality,
    /// Master switch for index selection (ablation benchmarks turn this
    /// off to measure the cost of naive subquery execution).
    pub use_indexes: bool,
    /// Statistics snapshot for cost-based choice among legal plans.
    /// `None` falls back to the deterministic shape rule. Statistics never
    /// make a plan legal — personality flags alone gate legality; stats
    /// only pick among the already-legal alternatives.
    pub stats: Option<Arc<StatsCatalog>>,
}

/// A dataset coordinate.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetRef {
    /// Namespace.
    pub namespace: String,
    /// Dataset name.
    pub dataset: String,
}

impl std::fmt::Display for DatasetRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.namespace, self.dataset)
    }
}

/// The physical plan executed by [`crate::exec`].
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Full heap scan.
    SeqScan {
        /// Target dataset.
        dataset: DatasetRef,
    },
    /// B-tree range scan fetching heap records.
    IndexScan {
        /// Target dataset.
        dataset: DatasetRef,
        /// Indexed attribute.
        attr: String,
        /// Key range.
        range: ScanRange,
        /// Scan direction.
        direction: Direction,
    },
    /// Fetch records whose indexed attribute is `Null`/`Missing`
    /// (requires nulls-in-index).
    IndexUnknownScan {
        /// Target dataset.
        dataset: DatasetRef,
        /// Indexed attribute.
        attr: String,
    },
    /// Index-only `COUNT(*)` over a key range (or the unknown keys), never
    /// touching the heap.
    IndexOnlyCount {
        /// Target dataset.
        dataset: DatasetRef,
        /// Indexed attribute.
        attr: String,
        /// Key range (`None` counts unknown keys instead).
        range: Option<ScanRange>,
        /// Output column name.
        output: String,
    },
    /// `COUNT(*)` by walking the primary index (AsterixDB's expr-1 plan).
    PrimaryIndexCount {
        /// Target dataset.
        dataset: DatasetRef,
        /// Output column name.
        output: String,
    },
    /// Index-only MIN or MAX of an attribute.
    IndexMinMax {
        /// Target dataset.
        dataset: DatasetRef,
        /// Indexed attribute.
        attr: String,
        /// True for MIN, false for MAX.
        is_min: bool,
        /// Output column name.
        output: String,
    },
    /// Heap fetch in index order with an early-exit limit (expr 9).
    IndexOrderedScan {
        /// Target dataset.
        dataset: DatasetRef,
        /// Indexed attribute.
        attr: String,
        /// Scan direction.
        direction: Direction,
        /// Early-exit row budget.
        limit: Option<u64>,
    },
    /// AsterixDB-style index-only join count: walk both indexes, never touch
    /// either heap, emit a single count.
    IndexOnlyJoinCount {
        /// Left dataset and join attribute.
        left: (DatasetRef, String),
        /// Right dataset and join attribute.
        right: (DatasetRef, String),
        /// Output column name.
        output: String,
    },
    /// Index nested-loop join: outer rows probe the inner index.
    IndexNLJoin {
        /// Outer (probe-driving) input.
        outer: Box<PhysicalPlan>,
        /// Key expression over outer rows.
        outer_key: Scalar,
        /// Inner dataset and its indexed join attribute.
        inner: (DatasetRef, String),
        /// Binding name for outer rows in the output object.
        outer_binding: String,
        /// Binding name for inner rows in the output object.
        inner_binding: String,
    },
    /// Hash join.
    HashJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Key over left rows.
        left_key: Scalar,
        /// Key over right rows.
        right_key: Scalar,
        /// Left binding name.
        left_binding: String,
        /// Right binding name.
        right_binding: String,
        /// Join kind.
        kind: JoinKind,
    },
    /// Filter.
    Filter {
        /// Input.
        input: Box<PhysicalPlan>,
        /// Predicate.
        predicate: Scalar,
    },
    /// Projection.
    Project {
        /// Input.
        input: Box<PhysicalPlan>,
        /// Output shape.
        spec: ProjectSpec,
    },
    /// Hash aggregation.
    Aggregate {
        /// Input.
        input: Box<PhysicalPlan>,
        /// Group keys.
        group_by: Vec<(String, Scalar)>,
        /// Aggregates.
        aggs: Vec<AggExpr>,
        /// Partial/final mode.
        mode: AggMode,
    },
    /// Sort (optionally top-k).
    Sort {
        /// Input.
        input: Box<PhysicalPlan>,
        /// Keys.
        keys: Vec<(Scalar, bool)>,
        /// Keep only the first `k` rows (bounded-heap sort).
        topk: Option<u64>,
    },
    /// Limit.
    Limit {
        /// Input.
        input: Box<PhysicalPlan>,
        /// Row budget.
        n: u64,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input.
        input: Box<PhysicalPlan>,
    },
    /// Literal rows.
    Values {
        /// The rows.
        rows: Vec<Value>,
    },
}

impl PhysicalPlan {
    /// Pretty tree rendering (used by `EXPLAIN` and plan-assertion tests).
    pub fn display(&self) -> String {
        let mut out = String::new();
        self.fmt_indent(&mut out, 0);
        out
    }

    fn fmt_indent(&self, out: &mut String, depth: usize) {
        use PhysicalPlan::*;
        let pad = "  ".repeat(depth);
        match self {
            SeqScan { dataset } => out.push_str(&format!("{pad}SeqScan {dataset}\n")),
            IndexScan {
                dataset,
                attr,
                direction,
                ..
            } => out.push_str(&format!("{pad}IndexScan {dataset}({attr}) {direction:?}\n")),
            IndexUnknownScan { dataset, attr } => {
                out.push_str(&format!("{pad}IndexUnknownScan {dataset}({attr})\n"))
            }
            IndexOnlyCount {
                dataset,
                attr,
                range,
                ..
            } => out.push_str(&format!(
                "{pad}IndexOnlyCount {dataset}({attr}){}\n",
                if range.is_none() {
                    " [unknown keys]"
                } else {
                    ""
                }
            )),
            PrimaryIndexCount { dataset, .. } => {
                out.push_str(&format!("{pad}PrimaryIndexCount {dataset}\n"))
            }
            IndexMinMax {
                dataset,
                attr,
                is_min,
                ..
            } => out.push_str(&format!(
                "{pad}IndexMinMax {dataset}({attr}) {}\n",
                if *is_min { "min" } else { "max" }
            )),
            IndexOrderedScan {
                dataset,
                attr,
                direction,
                limit,
            } => out.push_str(&format!(
                "{pad}IndexOrderedScan {dataset}({attr}) {direction:?} limit={limit:?}\n"
            )),
            IndexOnlyJoinCount { left, right, .. } => out.push_str(&format!(
                "{pad}IndexOnlyJoinCount {}({}) x {}({})\n",
                left.0, left.1, right.0, right.1
            )),
            IndexNLJoin { outer, inner, .. } => {
                out.push_str(&format!(
                    "{pad}IndexNLJoin inner={}({})\n",
                    inner.0, inner.1
                ));
                outer.fmt_indent(out, depth + 1);
            }
            HashJoin { left, right, .. } => {
                out.push_str(&format!("{pad}HashJoin\n"));
                left.fmt_indent(out, depth + 1);
                right.fmt_indent(out, depth + 1);
            }
            Filter { input, .. } => {
                out.push_str(&format!("{pad}Filter\n"));
                input.fmt_indent(out, depth + 1);
            }
            Project { input, .. } => {
                out.push_str(&format!("{pad}Project\n"));
                input.fmt_indent(out, depth + 1);
            }
            Aggregate {
                input,
                group_by,
                mode,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}Aggregate[{mode:?}] groups={}\n",
                    group_by.len()
                ));
                input.fmt_indent(out, depth + 1);
            }
            Sort { input, topk, .. } => {
                out.push_str(&format!("{pad}Sort topk={topk:?}\n"));
                input.fmt_indent(out, depth + 1);
            }
            Limit { input, n } => {
                out.push_str(&format!("{pad}Limit {n}\n"));
                input.fmt_indent(out, depth + 1);
            }
            Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.fmt_indent(out, depth + 1);
            }
            Values { rows } => out.push_str(&format!("{pad}Values ({} rows)\n", rows.len())),
        }
    }
}

/// One conjunct extracted from a predicate.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Conjunct {
    /// `attr = lit`
    Eq(String, Value),
    /// `attr >= lit` (closed) / `attr > lit` (open)
    Ge(String, Value, bool),
    /// `attr <= lit` / `attr < lit`
    Le(String, Value, bool),
    /// `attr IS NULL/MISSING/UNKNOWN`
    Unknown(String),
    /// Anything else (stays as a residual filter).
    Other(Scalar),
}

impl Conjunct {
    fn to_scalar(&self) -> Scalar {
        match self {
            Conjunct::Eq(a, v) => Scalar::Bin(
                BinOp::Eq,
                Box::new(Scalar::Field(a.clone())),
                Box::new(Scalar::Lit(v.clone())),
            ),
            Conjunct::Ge(a, v, closed) => Scalar::Bin(
                if *closed { BinOp::Ge } else { BinOp::Gt },
                Box::new(Scalar::Field(a.clone())),
                Box::new(Scalar::Lit(v.clone())),
            ),
            Conjunct::Le(a, v, closed) => Scalar::Bin(
                if *closed { BinOp::Le } else { BinOp::Lt },
                Box::new(Scalar::Field(a.clone())),
                Box::new(Scalar::Lit(v.clone())),
            ),
            Conjunct::Unknown(a) => {
                Scalar::Is(Box::new(Scalar::Field(a.clone())), IsKind::Unknown, false)
            }
            Conjunct::Other(s) => s.clone(),
        }
    }
}

pub(crate) fn split_conjuncts(pred: &Scalar, out: &mut Vec<Conjunct>) {
    match pred {
        Scalar::Bin(BinOp::And, a, b) => {
            split_conjuncts(a, out);
            split_conjuncts(b, out);
        }
        Scalar::Bin(op @ (BinOp::Eq | BinOp::Ge | BinOp::Gt | BinOp::Le | BinOp::Lt), a, b) => {
            let (field, lit, flipped) = match (a.as_ref(), b.as_ref()) {
                (Scalar::Field(f), Scalar::Lit(v)) => (Some(f), Some(v), false),
                (Scalar::Lit(v), Scalar::Field(f)) => (Some(f), Some(v), true),
                _ => (None, None, false),
            };
            match (field, lit) {
                (Some(f), Some(v)) => {
                    let c = match (op, flipped) {
                        (BinOp::Eq, _) => Conjunct::Eq(f.clone(), v.clone()),
                        (BinOp::Ge, false) | (BinOp::Le, true) => {
                            Conjunct::Ge(f.clone(), v.clone(), true)
                        }
                        (BinOp::Gt, false) | (BinOp::Lt, true) => {
                            Conjunct::Ge(f.clone(), v.clone(), false)
                        }
                        (BinOp::Le, false) | (BinOp::Ge, true) => {
                            Conjunct::Le(f.clone(), v.clone(), true)
                        }
                        (BinOp::Lt, false) | (BinOp::Gt, true) => {
                            Conjunct::Le(f.clone(), v.clone(), false)
                        }
                        _ => Conjunct::Other(pred.clone()),
                    };
                    out.push(c);
                }
                _ => out.push(Conjunct::Other(pred.clone())),
            }
        }
        Scalar::Is(inner, IsKind::Unknown | IsKind::Null, false) => {
            // In SQL dialect IS NULL is the unknown test (rows from JSON
            // loads may have absent fields); SQL++ uses IS UNKNOWN.
            if let Scalar::Field(f) = inner.as_ref() {
                out.push(Conjunct::Unknown(f.clone()));
            } else {
                out.push(Conjunct::Other(pred.clone()));
            }
        }
        other => out.push(Conjunct::Other(other.clone())),
    }
}

fn and_all(conjuncts: &[Conjunct]) -> Option<Scalar> {
    let mut iter = conjuncts.iter().map(Conjunct::to_scalar);
    let first = iter.next()?;
    Some(iter.fold(first, |acc, c| {
        Scalar::Bin(BinOp::And, Box::new(acc), Box::new(c))
    }))
}

/// Translate an optimized logical plan into a physical plan.
pub fn plan_physical(
    plan: &LogicalPlan,
    db: &Database,
    options: &PlannerOptions,
) -> Result<PhysicalPlan> {
    plan_physical_explained(plan, db, options).map(|(phys, _)| phys)
}

/// Translate a logical plan and also return the decision points the
/// planner weighed (chosen and rejected alternatives with costs), for
/// attachment to an [`polyframe_observe::ExplainReport`] tree.
pub fn plan_physical_explained(
    plan: &LogicalPlan,
    db: &Database,
    options: &PlannerOptions,
) -> Result<(PhysicalPlan, Vec<PlanDecision>)> {
    let planner = Planner {
        db,
        options,
        decisions: RefCell::new(Vec::new()),
    };
    let phys = planner.translate(plan)?;
    Ok((phys, planner.decisions.into_inner()))
}

struct Planner<'a> {
    db: &'a Database,
    options: &'a PlannerOptions,
    decisions: RefCell<Vec<PlanDecision>>,
}

/// One candidate access path for a conjunct list, before residual
/// wrapping.
struct AccessCandidate {
    scan: PhysicalPlan,
    label: String,
    /// Conjunct positions the scan consumes.
    used: (usize, usize),
    /// Deterministic no-stats preference: lower is better.
    /// 0 = equality on the primary key, 1 = equality on a secondary
    /// index, 2 = bounded range, 3 = half-open range, 4 = unknown-key
    /// scan; position breaks ties.
    shape_rank: (u8, usize),
}

impl<'a> Planner<'a> {
    fn personality(&self) -> &Personality {
        &self.options.personality
    }

    fn cost_model(&self) -> CostModel<'_> {
        CostModel {
            db: self.db,
            stats: self.options.stats.as_deref(),
        }
    }

    fn record_decision(&self, target: &str, alternatives: Vec<PlanAlternative>) {
        self.decisions.borrow_mut().push(PlanDecision {
            target: target.to_string(),
            alternatives,
        });
    }

    fn has_index(&self, ds: &DatasetRef, attr: &str) -> bool {
        self.options.use_indexes
            && self
                .db
                .dataset(&ds.namespace, &ds.dataset)
                .ok()
                .is_some_and(|t| t.index_on(attr).is_some())
    }

    fn index_has_nulls(&self, ds: &DatasetRef, attr: &str) -> bool {
        self.db
            .dataset(&ds.namespace, &ds.dataset)
            .ok()
            .and_then(|t| t.index_on(attr))
            .is_some_and(|ix| ix.indexes_unknown_keys())
    }

    fn translate(&self, plan: &LogicalPlan) -> Result<PhysicalPlan> {
        match plan {
            LogicalPlan::Scan { namespace, dataset } => Ok(PhysicalPlan::SeqScan {
                dataset: DatasetRef {
                    namespace: namespace.clone(),
                    dataset: dataset.clone(),
                },
            }),
            LogicalPlan::Values { rows } => Ok(PhysicalPlan::Values { rows: rows.clone() }),
            LogicalPlan::Filter { input, predicate } => self.translate_filter(input, predicate),
            LogicalPlan::Project { input, spec } => Ok(PhysicalPlan::Project {
                input: Box::new(self.translate(input)?),
                spec: spec.clone(),
            }),
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                mode,
            } => self.translate_aggregate(input, group_by, aggs, *mode),
            LogicalPlan::Sort { input, keys } => Ok(PhysicalPlan::Sort {
                input: Box::new(self.translate(input)?),
                keys: keys.clone(),
                topk: None,
            }),
            LogicalPlan::Limit { input, n } => self.translate_limit(input, *n),
            LogicalPlan::Distinct { input } => Ok(PhysicalPlan::Distinct {
                input: Box::new(self.translate(input)?),
            }),
            LogicalPlan::Join { .. } => self.translate_join(plan),
        }
    }

    /// Filter: try to convert (part of) the predicate into an index access.
    fn translate_filter(&self, input: &LogicalPlan, predicate: &Scalar) -> Result<PhysicalPlan> {
        if let LogicalPlan::Scan { namespace, dataset } = input {
            let ds = DatasetRef {
                namespace: namespace.clone(),
                dataset: dataset.clone(),
            };
            let mut conjuncts = Vec::new();
            split_conjuncts(predicate, &mut conjuncts);
            if let Some(phys) = self.index_access(&ds, &conjuncts) {
                return Ok(phys);
            }
        }
        Ok(PhysicalPlan::Filter {
            input: Box::new(self.translate(input)?),
            predicate: predicate.clone(),
        })
    }

    /// Choose an index access path for a conjunct list over a base scan.
    ///
    /// Enumerates every *legal* candidate (legality is personality- and
    /// catalog-gated), then chooses by estimated cost when a statistics
    /// snapshot is available — a sequential scan may win outright — or by
    /// predicate shape without one: equality on the primary key beats
    /// equality on a secondary index beats a bounded range beats a
    /// half-open range beats an unknown-key scan, with conjunct position
    /// breaking ties. The weighed alternatives are recorded for the
    /// explain report either way.
    fn index_access(&self, ds: &DatasetRef, conjuncts: &[Conjunct]) -> Option<PhysicalPlan> {
        if !self.options.use_indexes {
            return None;
        }
        let candidates = self.access_candidates(ds, conjuncts);
        if candidates.is_empty() {
            return None;
        }
        let model = self.cost_model();
        // Estimate each candidate's complete pipeline (scan + residual
        // filter) so candidates consuming different conjuncts compare
        // fairly; the sequential baseline is the same pipeline unindexed.
        let wrapped: Vec<PhysicalPlan> = candidates
            .iter()
            .map(|c| self.wrap_residual(c.scan.clone(), conjuncts, c.used.0, c.used.1))
            .collect();
        let seq = self.wrap_residual(
            PhysicalPlan::SeqScan {
                dataset: ds.clone(),
            },
            conjuncts,
            usize::MAX,
            usize::MAX,
        );
        let costs: Vec<_> = wrapped.iter().map(|p| model.estimate(p)).collect();
        let seq_cost = model.estimate(&seq);
        let use_cost = self.options.stats.is_some();
        let best = (0..candidates.len()).min_by(|&a, &b| {
            let by_shape = candidates[a].shape_rank.cmp(&candidates[b].shape_rank);
            if use_cost {
                costs[a].total.total_cmp(&costs[b].total).then(by_shape)
            } else {
                by_shape
            }
        })?;
        let seq_wins = use_cost && seq_cost.total < costs[best].total;
        let reason = if use_cost { "cost" } else { "rule:shape" };
        let mut alternatives: Vec<PlanAlternative> = candidates
            .iter()
            .enumerate()
            .map(|(i, c)| PlanAlternative {
                label: c.label.clone(),
                est_rows: costs[i].rows,
                est_cost: costs[i].total,
                chosen: !seq_wins && i == best,
                reason: reason.to_string(),
            })
            .collect();
        alternatives.push(PlanAlternative {
            label: "SeqScan".to_string(),
            est_rows: seq_cost.rows,
            est_cost: seq_cost.total,
            chosen: seq_wins,
            reason: if use_cost {
                "cost"
            } else {
                "rule:index-preferred"
            }
            .to_string(),
        });
        if seq_wins {
            self.record_decision("SeqScan", alternatives);
            return None;
        }
        let (operator, _) = op_parts(&candidates[best].scan);
        self.record_decision(&operator, alternatives);
        wrapped.into_iter().nth(best)
    }

    /// Every legal index access path for a conjunct list.
    fn access_candidates(&self, ds: &DatasetRef, conjuncts: &[Conjunct]) -> Vec<AccessCandidate> {
        let primary = self
            .db
            .dataset(&ds.namespace, &ds.dataset)
            .ok()
            .and_then(|t| t.primary_key())
            .map(str::to_string);
        let mut out = Vec::new();
        let mut range_attrs_seen: Vec<String> = Vec::new();
        for (i, c) in conjuncts.iter().enumerate() {
            match c {
                Conjunct::Eq(attr, v) if self.has_index(ds, attr) => {
                    let rank = if primary.as_deref() == Some(attr.as_str()) {
                        0
                    } else {
                        1
                    };
                    out.push(AccessCandidate {
                        scan: PhysicalPlan::IndexScan {
                            dataset: ds.clone(),
                            attr: attr.clone(),
                            range: ScanRange::eq(v.clone()),
                            direction: Direction::Forward,
                        },
                        label: format!("IndexScan({attr}=)"),
                        used: (i, usize::MAX),
                        shape_rank: (rank, i),
                    });
                }
                Conjunct::Ge(attr, _, _) | Conjunct::Le(attr, _, _) => {
                    if !self.has_index(ds, attr) || range_attrs_seen.contains(attr) {
                        continue;
                    }
                    range_attrs_seen.push(attr.clone());
                    // Pair the first lower and upper bounds on this attr.
                    let mut lo = KeyBound::Unbounded;
                    let mut hi = KeyBound::Unbounded;
                    let mut j = usize::MAX;
                    for (k, o) in conjuncts.iter().enumerate() {
                        match o {
                            Conjunct::Ge(a2, v2, c2)
                                if a2 == attr && matches!(lo, KeyBound::Unbounded) =>
                            {
                                lo = bound(v2, *c2);
                                if k != i {
                                    j = k;
                                }
                            }
                            Conjunct::Le(a2, v2, c2)
                                if a2 == attr && matches!(hi, KeyBound::Unbounded) =>
                            {
                                hi = bound(v2, *c2);
                                if k != i {
                                    j = k;
                                }
                            }
                            _ => {}
                        }
                    }
                    let bounded =
                        !matches!(lo, KeyBound::Unbounded) && !matches!(hi, KeyBound::Unbounded);
                    out.push(AccessCandidate {
                        scan: PhysicalPlan::IndexScan {
                            dataset: ds.clone(),
                            attr: attr.clone(),
                            range: ScanRange { lo, hi },
                            direction: Direction::Forward,
                        },
                        label: format!("IndexScan({attr} range)"),
                        used: (i, j),
                        shape_rank: (if bounded { 2 } else { 3 }, i),
                    });
                }
                Conjunct::Unknown(attr)
                    if self.has_index(ds, attr) && self.index_has_nulls(ds, attr) =>
                {
                    out.push(AccessCandidate {
                        scan: PhysicalPlan::IndexUnknownScan {
                            dataset: ds.clone(),
                            attr: attr.clone(),
                        },
                        label: format!("IndexUnknownScan({attr})"),
                        used: (i, usize::MAX),
                        shape_rank: (4, i),
                    });
                }
                _ => {}
            }
        }
        out
    }

    fn wrap_residual(
        &self,
        scan: PhysicalPlan,
        conjuncts: &[Conjunct],
        used_a: usize,
        used_b: usize,
    ) -> PhysicalPlan {
        let residual: Vec<Conjunct> = conjuncts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != used_a && *i != used_b)
            .map(|(_, c)| c.clone())
            .collect();
        match and_all(&residual) {
            Some(pred) => PhysicalPlan::Filter {
                input: Box::new(scan),
                predicate: pred,
            },
            None => scan,
        }
    }

    fn translate_aggregate(
        &self,
        input: &LogicalPlan,
        group_by: &[(String, Scalar)],
        aggs: &[AggExpr],
        mode: AggMode,
    ) -> Result<PhysicalPlan> {
        // Specialized index plans only apply to complete, ungrouped,
        // single-aggregate queries.
        if self.options.use_indexes
            && group_by.is_empty()
            && aggs.len() == 1
            && mode == AggMode::Complete
        {
            let agg = &aggs[0];
            if let Some(phys) = self.scalar_agg_fastpath(input, agg) {
                return Ok(phys);
            }
        }
        Ok(PhysicalPlan::Aggregate {
            input: Box::new(self.translate(input)?),
            group_by: group_by.to_vec(),
            aggs: aggs.to_vec(),
            mode,
        })
    }

    /// Index fast paths for `COUNT(*)`, `MIN(attr)`, `MAX(attr)` over scans.
    fn scalar_agg_fastpath(&self, input: &LogicalPlan, agg: &AggExpr) -> Option<PhysicalPlan> {
        let p = self.personality().clone();
        match (&agg.func, &agg.arg) {
            (AggFunc::Count, AggArg::Star) => {
                match strip_reshape(input) {
                    // COUNT(*) over a bare scan.
                    Stripped::Scan(ds) => {
                        if p.count_via_primary_index {
                            let table = self.db.dataset(&ds.namespace, &ds.dataset).ok()?;
                            if table.primary_index().is_some() {
                                return Some(PhysicalPlan::PrimaryIndexCount {
                                    dataset: ds,
                                    output: agg.name.clone(),
                                });
                            }
                        }
                        None
                    }
                    // COUNT(*) over a filtered scan: index-only count when
                    // the whole predicate is a single indexable conjunct set.
                    Stripped::FilteredScan(ds, pred) => {
                        let mut conjuncts = Vec::new();
                        split_conjuncts(&pred, &mut conjuncts);
                        if conjuncts.len() == 1 && p.index_only_scans {
                            match &conjuncts[0] {
                                Conjunct::Eq(a, v) if self.has_index(&ds, a) => {
                                    return Some(PhysicalPlan::IndexOnlyCount {
                                        dataset: ds,
                                        attr: a.clone(),
                                        range: Some(ScanRange::eq(v.clone())),
                                        output: agg.name.clone(),
                                    })
                                }
                                Conjunct::Unknown(a)
                                    if self.has_index(&ds, a) && self.index_has_nulls(&ds, a) =>
                                {
                                    return Some(PhysicalPlan::IndexOnlyCount {
                                        dataset: ds,
                                        attr: a.clone(),
                                        range: None,
                                        output: agg.name.clone(),
                                    })
                                }
                                _ => {}
                            }
                        }
                        // Range pair (expr 11) → index-only count when allowed.
                        if p.index_only_scans && conjuncts.len() == 2 {
                            if let (Conjunct::Ge(a1, v1, c1), Conjunct::Le(a2, v2, c2)) =
                                (&conjuncts[0], &conjuncts[1])
                            {
                                if a1 == a2 && self.has_index(&ds, a1) {
                                    return Some(PhysicalPlan::IndexOnlyCount {
                                        dataset: ds,
                                        attr: a1.clone(),
                                        range: Some(ScanRange {
                                            lo: bound(v1, *c1),
                                            hi: bound(v2, *c2),
                                        }),
                                        output: agg.name.clone(),
                                    });
                                }
                            }
                        }
                        None
                    }
                    Stripped::Join { left, right } => {
                        // AsterixDB's index-only join (expr 12).
                        if p.index_only_join
                            && self.has_index(&left.0, &left.1)
                            && self.has_index(&right.0, &right.1)
                        {
                            return Some(PhysicalPlan::IndexOnlyJoinCount {
                                left,
                                right,
                                output: agg.name.clone(),
                            });
                        }
                        None
                    }
                    Stripped::Opaque => None,
                }
            }
            (AggFunc::Min | AggFunc::Max, AggArg::Expr(Scalar::Field(attr))) => {
                if !p.index_only_scans {
                    return None;
                }
                match strip_reshape(input) {
                    Stripped::Scan(ds) if self.has_index(&ds, attr) => {
                        Some(PhysicalPlan::IndexMinMax {
                            dataset: ds,
                            attr: attr.clone(),
                            is_min: agg.func == AggFunc::Min,
                            output: agg.name.clone(),
                        })
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }

    fn translate_limit(&self, input: &LogicalPlan, n: u64) -> Result<PhysicalPlan> {
        // Sort + Limit: try an index-ordered scan (expr 9), else top-k sort.
        if let LogicalPlan::Sort {
            input: sort_in,
            keys,
        } = input
        {
            if keys.len() == 1 {
                if let (Scalar::Field(attr), desc) = (&keys[0].0, keys[0].1) {
                    if let Stripped::Scan(ds) = strip_reshape(sort_in) {
                        if self.has_index(&ds, attr) && self.personality().backward_index_scans {
                            // Secondary indexes that skip nulls cannot serve
                            // an ORDER BY that must include unknown rows —
                            // unless the scan is limited and descending
                            // (unknowns sort last... in SQL they sort first
                            // ascending); the Wisconsin sort columns have no
                            // unknown values, and real planners consult the
                            // same statistics:
                            let complete = self
                                .db
                                .dataset(&ds.namespace, &ds.dataset)
                                .ok()
                                .and_then(|t| t.index_on(attr))
                                .is_some_and(|ix| ix.is_complete());
                            if complete {
                                return Ok(PhysicalPlan::IndexOrderedScan {
                                    dataset: ds,
                                    attr: attr.clone(),
                                    direction: if desc {
                                        Direction::Backward
                                    } else {
                                        Direction::Forward
                                    },
                                    limit: Some(n),
                                });
                            }
                        }
                    }
                }
            }
            // Fall back to a bounded (top-k) sort.
            return Ok(PhysicalPlan::Sort {
                input: Box::new(self.translate(sort_in)?),
                keys: keys.clone(),
                topk: Some(n),
            });
        }
        Ok(PhysicalPlan::Limit {
            input: Box::new(self.translate(input)?),
            n,
        })
    }

    fn translate_join(&self, plan: &LogicalPlan) -> Result<PhysicalPlan> {
        let LogicalPlan::Join {
            left,
            right,
            kind,
            left_binding,
            right_binding,
            left_key,
            right_key,
        } = plan
        else {
            unreachable!()
        };
        let model = self.cost_model();
        // Index nested-loop join when the inner (right) side is a bare scan
        // with an index on its join key. Taken by rule when legal — the
        // paper's systems pick their index join whenever the index exists —
        // but the hash alternative's estimated cost is still surfaced.
        if *kind == JoinKind::Inner {
            if let (Stripped::Scan(rds), Scalar::Field(rattr)) = (strip_reshape(right), right_key) {
                if self.has_index(&rds, rattr) {
                    let phys = PhysicalPlan::IndexNLJoin {
                        outer: Box::new(self.translate(left)?),
                        outer_key: left_key.clone(),
                        inner: (rds, rattr.clone()),
                        outer_binding: left_binding.clone(),
                        inner_binding: right_binding.clone(),
                    };
                    let nl_cost = model.estimate(&phys);
                    let mut alternatives = vec![PlanAlternative {
                        label: format!("IndexNLJoin({rattr})"),
                        est_rows: nl_cost.rows,
                        est_cost: nl_cost.total,
                        chosen: true,
                        reason: "rule:index-nested-loop".to_string(),
                    }];
                    // Cost the hash alternative without keeping its
                    // subtree's decisions (it loses by rule).
                    let checkpoint = self.decisions.borrow().len();
                    if let (Ok(l), Ok(r)) = (self.translate(left), self.translate(right)) {
                        let hash = PhysicalPlan::HashJoin {
                            left: Box::new(l),
                            right: Box::new(r),
                            left_key: left_key.clone(),
                            right_key: right_key.clone(),
                            left_binding: left_binding.clone(),
                            right_binding: right_binding.clone(),
                            kind: *kind,
                        };
                        let hash_cost = model.estimate(&hash);
                        alternatives.push(PlanAlternative {
                            label: format!("HashJoin(build={right_binding})"),
                            est_rows: hash_cost.rows,
                            est_cost: hash_cost.total,
                            chosen: false,
                            reason: "rule:index-nested-loop".to_string(),
                        });
                    }
                    self.decisions.borrow_mut().truncate(checkpoint);
                    self.record_decision("IndexNLJoin", alternatives);
                    return Ok(phys);
                }
            }
        }
        let l = self.translate(left)?;
        let r = self.translate(right)?;
        let base = PhysicalPlan::HashJoin {
            left: Box::new(l.clone()),
            right: Box::new(r.clone()),
            left_key: left_key.clone(),
            right_key: right_key.clone(),
            left_binding: left_binding.clone(),
            right_binding: right_binding.clone(),
            kind: *kind,
        };
        // Build-side choice: the executor builds the hash table on the
        // RIGHT input and probes with the LEFT. With statistics, build on
        // the smaller side (inner joins only — outer joins are
        // side-asymmetric).
        if *kind != JoinKind::Inner || self.options.stats.is_none() {
            // No statistics (or a side-asymmetric outer join): the rule
            // always builds the right input. Record the choice so explain
            // still shows which side the hash table lands on.
            let base_cost = model.estimate(&base);
            self.record_decision(
                "HashJoin",
                vec![PlanAlternative {
                    label: format!("HashJoin(build={right_binding})"),
                    est_rows: base_cost.rows,
                    est_cost: base_cost.total,
                    chosen: true,
                    reason: "rule:build-right".to_string(),
                }],
            );
            return Ok(base);
        }
        let swapped = PhysicalPlan::HashJoin {
            left: Box::new(r),
            right: Box::new(l),
            left_key: right_key.clone(),
            right_key: left_key.clone(),
            left_binding: right_binding.clone(),
            right_binding: left_binding.clone(),
            kind: *kind,
        };
        let base_cost = model.estimate(&base);
        let swap_cost = model.estimate(&swapped);
        let take_swap = swap_cost.total < base_cost.total;
        self.record_decision(
            "HashJoin",
            vec![
                PlanAlternative {
                    label: format!("HashJoin(build={right_binding})"),
                    est_rows: base_cost.rows,
                    est_cost: base_cost.total,
                    chosen: !take_swap,
                    reason: "cost".to_string(),
                },
                PlanAlternative {
                    label: format!("HashJoin(build={left_binding})"),
                    est_rows: swap_cost.rows,
                    est_cost: swap_cost.total,
                    chosen: take_swap,
                    reason: "cost".to_string(),
                },
            ],
        );
        if !take_swap {
            return Ok(base);
        }
        // The executor pairs the probe binding's fields first; restore the
        // query's original binding order on top so results are
        // byte-identical to the unswapped plan.
        Ok(PhysicalPlan::Project {
            input: Box::new(swapped),
            spec: ProjectSpec::Columns(vec![
                (
                    left_binding.clone(),
                    Scalar::BindingRef(left_binding.clone()),
                ),
                (
                    right_binding.clone(),
                    Scalar::BindingRef(right_binding.clone()),
                ),
            ]),
        })
    }
}

fn bound(v: &Value, closed: bool) -> KeyBound {
    if closed {
        KeyBound::Included(v.clone())
    } else {
        KeyBound::Excluded(v.clone())
    }
}

/// What remains of a plan after stripping row-reshaping operators
/// (projections that do not change cardinality).
enum Stripped {
    /// A bare scan.
    Scan(DatasetRef),
    /// Filter directly over a scan.
    FilteredScan(DatasetRef, Scalar),
    /// A join of two bare scans on simple field keys.
    Join {
        /// Left dataset and key attribute.
        left: (DatasetRef, String),
        /// Right dataset and key attribute.
        right: (DatasetRef, String),
    },
    /// Anything else.
    Opaque,
}

fn strip_reshape(plan: &LogicalPlan) -> Stripped {
    match plan {
        LogicalPlan::Scan { namespace, dataset } => Stripped::Scan(DatasetRef {
            namespace: namespace.clone(),
            dataset: dataset.clone(),
        }),
        LogicalPlan::Filter { input, predicate } => match strip_reshape(input) {
            Stripped::Scan(ds) => Stripped::FilteredScan(ds, predicate.clone()),
            _ => Stripped::Opaque,
        },
        // Column projections do not change row count; look through them for
        // aggregate fast paths (e.g. `SELECT unique1 FROM ...` under MAX).
        LogicalPlan::Project { input, spec } => match spec {
            ProjectSpec::Columns(cols)
                if cols.iter().all(|(_, s)| matches!(s, Scalar::Field(_))) =>
            {
                strip_reshape(input)
            }
            ProjectSpec::Value(Scalar::Field(_)) | ProjectSpec::MergeStars(_) => {
                strip_reshape(input)
            }
            ProjectSpec::Columns(cols)
                if cols
                    .iter()
                    .all(|(_, s)| matches!(s, Scalar::BindingRef(_) | Scalar::Field(_))) =>
            {
                strip_reshape(input)
            }
            _ => Stripped::Opaque,
        },
        LogicalPlan::Join {
            left,
            right,
            kind: JoinKind::Inner,
            left_key: Scalar::Field(lk),
            right_key: Scalar::Field(rk),
            ..
        } => match (strip_reshape(left), strip_reshape(right)) {
            (Stripped::Scan(lds), Stripped::Scan(rds)) => Stripped::Join {
                left: (lds, lk.clone()),
                right: (rds, rk.clone()),
            },
            _ => Stripped::Opaque,
        },
        _ => Stripped::Opaque,
    }
}
