#![warn(missing_docs)]

//! # polyframe-sqlengine
//!
//! A from-scratch SQL / SQL++ query engine serving as the AsterixDB,
//! PostgreSQL 12 and Greenplum (PostgreSQL 9.5) substrates of the PolyFrame
//! reproduction.
//!
//! One lexer/parser/planner/executor handles both dialects; a
//! [`Personality`] carries the per-system feature flags whose presence or
//! absence explains every observation in the paper's evaluation section:
//!
//! | flag | AsterixDB | PostgreSQL 12 | PostgreSQL 9.5 (Greenplum) |
//! |---|---|---|---|
//! | `index_only_scans` (exprs 6/7/11) | no | yes | no |
//! | `backward_index_scans` (expr 9) | no | yes | no |
//! | `nulls_in_indexes` (expr 13) | no | yes | yes |
//! | `count_via_primary_index` (expr 1) | yes | no | no |
//! | `index_only_join` (expr 12) | yes | no | no |
//! | extra compile passes ("Empty" baseline) | many | few | few |
//!
//! The pipeline is classic: [`lexer`] → [`parser`] → [`plan::builder`] →
//! [`plan::optimizer`] → [`plan::physical`] → [`exec`]. Queries arrive as
//! text — exactly the strings PolyFrame's rewrite rules produce — and
//! results leave as [`polyframe_datamodel::Value`] rows.

pub mod ast;
pub mod catalog;
pub mod dialect;
pub mod engine;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod personality;
pub mod plan;
pub mod token;

pub use catalog::Database;
pub use dialect::Dialect;
pub use engine::{Engine, EngineConfig};
pub use error::{EngineError, Result};
pub use exec::{
    available_threads, batch_rows_override, default_batch_rows, ExecOptions, ExecReport,
    DEFAULT_BATCH_ROWS, MAX_BATCH_ROWS,
};
pub use personality::Personality;
pub use plan::cache::PlanCache;
