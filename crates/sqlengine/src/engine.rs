//! The engine facade: text in, rows out.

use crate::catalog::Database;
use crate::dialect::Dialect;
use crate::error::Result;
use crate::exec::Executor;
use crate::parser::parse;
use crate::personality::Personality;
use crate::plan::builder::build_logical;
use crate::plan::logical::LogicalPlan;
use crate::plan::optimizer::optimize;
use crate::plan::physical::{plan_physical, PhysicalPlan, PlannerOptions};
use polyframe_datamodel::{Record, Value};
use polyframe_observe::sync::RwLock;
use polyframe_observe::{Span, SpanTimer};
use polyframe_storage::TableOptions;
use std::time::Instant;

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Query language spoken by this engine.
    pub dialect: Dialect,
    /// Feature flags of the impersonated system.
    pub personality: Personality,
    /// Namespace used for single-part dataset names.
    pub default_namespace: String,
    /// Master index-selection switch (ablation benchmarks flip this off).
    pub use_indexes: bool,
}

impl EngineConfig {
    /// AsterixDB: SQL++ with the AsterixDB personality.
    pub fn asterixdb() -> EngineConfig {
        EngineConfig {
            dialect: Dialect::SqlPlusPlus,
            personality: Personality::asterixdb(),
            default_namespace: "Default".to_string(),
            use_indexes: true,
        }
    }

    /// PostgreSQL 12: SQL with the modern PostgreSQL personality.
    pub fn postgres() -> EngineConfig {
        EngineConfig {
            dialect: Dialect::Sql,
            personality: Personality::postgres12(),
            default_namespace: "public".to_string(),
            use_indexes: true,
        }
    }

    /// Greenplum segment: SQL with the PostgreSQL 9.5 personality.
    pub fn greenplum() -> EngineConfig {
        EngineConfig {
            dialect: Dialect::Sql,
            personality: Personality::postgres95(),
            default_namespace: "public".to_string(),
            use_indexes: true,
        }
    }
}

/// One database engine instance (an "AsterixDB cluster controller" or a
/// "postgres server", depending on its config).
pub struct Engine {
    config: EngineConfig,
    db: RwLock<Database>,
}

impl Engine {
    /// Create an empty engine.
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            config,
            db: RwLock::new(Database::new()),
        }
    }

    /// This engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Create a dataset.
    pub fn create_dataset(&self, namespace: &str, dataset: &str, primary_key: Option<&str>) {
        let options = TableOptions {
            primary_key: primary_key.map(str::to_string),
            secondary_null_policy: self.config.personality.secondary_null_policy(),
        };
        self.db.write().create_dataset(namespace, dataset, options);
    }

    /// Bulk-load records into a dataset.
    pub fn load(
        &self,
        namespace: &str,
        dataset: &str,
        records: impl IntoIterator<Item = Record>,
    ) -> Result<()> {
        let mut db = self.db.write();
        let table = db.dataset_mut(namespace, dataset)?;
        table.insert_all(records);
        Ok(())
    }

    /// Create a secondary index.
    pub fn create_index(&self, namespace: &str, dataset: &str, attribute: &str) -> Result<String> {
        let mut db = self.db.write();
        Ok(db.dataset_mut(namespace, dataset)?.create_index(attribute))
    }

    /// Number of records in a dataset.
    pub fn dataset_len(&self, namespace: &str, dataset: &str) -> Result<usize> {
        Ok(self.db.read().dataset(namespace, dataset)?.len())
    }

    /// Parse, plan, optimize and execute a query.
    pub fn query(&self, sql: &str) -> Result<Vec<Value>> {
        let logical = self.compile_to_logical(sql)?;
        self.execute_logical(&logical)
    }

    /// Like [`Engine::query`], but also reports where the time went as an
    /// `execute` span with `parse`/`plan`/`exec` children. The `plan` child
    /// carries the chosen access path and whether an index was used.
    pub fn query_traced(&self, sql: &str) -> Result<(Vec<Value>, Span)> {
        let started = Instant::now();

        let mut parse_t = SpanTimer::start("parse");
        let stmt = parse(sql, self.config.dialect)?;
        let logical = build_logical(&stmt, &self.config.default_namespace)?;
        parse_t.span_mut().set_metric("query_len", sql.len() as i64);
        let parse_span = parse_t.finish();

        let mut plan_t = SpanTimer::start("plan");
        let logical = optimize(logical, self.config.personality.optimizer_passes);
        let db = self.db.read();
        let physical = plan_physical(
            &logical,
            &db,
            &PlannerOptions {
                personality: self.config.personality.clone(),
                use_indexes: self.config.use_indexes,
            },
        )?;
        let display = physical.display();
        // Scan leaves render last in the plan tree; that line is the
        // access path.
        let access_path = display.lines().last().unwrap_or("").trim().to_string();
        let index_used = display.contains("IndexScan") || display.contains("PrimaryIndexCount");
        plan_t.span_mut().set_metric(
            "optimizer_passes",
            self.config.personality.optimizer_passes as i64,
        );
        plan_t
            .span_mut()
            .set_metric("index_used", i64::from(index_used));
        plan_t.span_mut().set_note("access_path", access_path);
        let plan_span = plan_t.finish();

        let mut exec_t = SpanTimer::start("exec");
        let rows = Executor::new(&db).run(&physical)?;
        exec_t.span_mut().set_metric("rows_out", rows.len() as i64);
        let exec_span = exec_t.finish();

        let span = Span::new("execute")
            .with_duration(started.elapsed())
            .with_note("dialect", format!("{:?}", self.config.dialect))
            .with_child(parse_span)
            .with_child(plan_span)
            .with_child(exec_span);
        Ok((rows, span))
    }

    /// Compile query text to an optimized logical plan (runs the full
    /// optimizer-pass count of this engine's personality — the paper's
    /// query-preparation overhead lives here).
    pub fn compile_to_logical(&self, sql: &str) -> Result<LogicalPlan> {
        let stmt = parse(sql, self.config.dialect)?;
        let logical = build_logical(&stmt, &self.config.default_namespace)?;
        Ok(optimize(logical, self.config.personality.optimizer_passes))
    }

    /// Plan and execute a pre-built logical plan (used by the cluster layer).
    pub fn execute_logical(&self, logical: &LogicalPlan) -> Result<Vec<Value>> {
        let db = self.db.read();
        let physical = plan_physical(
            logical,
            &db,
            &PlannerOptions {
                personality: self.config.personality.clone(),
                use_indexes: self.config.use_indexes,
            },
        )?;
        Executor::new(&db).run(&physical)
    }

    /// Return the physical plan chosen for `sql`, as an EXPLAIN-style tree.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let logical = self.compile_to_logical(sql)?;
        let db = self.db.read();
        let physical = plan_physical(
            &logical,
            &db,
            &PlannerOptions {
                personality: self.config.personality.clone(),
                use_indexes: self.config.use_indexes,
            },
        )?;
        Ok(physical.display())
    }

    /// Compile to a physical plan without executing (exposed for tests).
    pub fn compile_to_physical(&self, sql: &str) -> Result<PhysicalPlan> {
        let logical = self.compile_to_logical(sql)?;
        let db = self.db.read();
        plan_physical(
            &logical,
            &db,
            &PlannerOptions {
                personality: self.config.personality.clone(),
                use_indexes: self.config.use_indexes,
            },
        )
    }

    /// Index point-probe used by the cluster layer's cross-shard joins:
    /// records of `dataset` whose `attribute` equals `key`.
    pub fn probe_index(
        &self,
        namespace: &str,
        dataset: &str,
        attribute: &str,
        key: &Value,
    ) -> Result<Vec<Record>> {
        let db = self.db.read();
        let table = db.dataset(namespace, dataset)?;
        match table.index_on(attribute) {
            Some(ix) => Ok(ix
                .lookup(key)
                .into_iter()
                .filter_map(|rid| table.get(rid).cloned())
                .collect()),
            None => Ok(table
                .heap()
                .scan()
                .filter(|(_, r)| {
                    polyframe_datamodel::sql_eq(&r.get_or_missing(attribute), key).is_true()
                })
                .map(|(_, r)| r.clone())
                .collect()),
        }
    }

    /// All (known) keys of an index in sorted order — the index-only key
    /// extraction the cluster layer's repartition join uses.
    pub fn index_keys(
        &self,
        namespace: &str,
        dataset: &str,
        attribute: &str,
    ) -> Result<Vec<Value>> {
        let db = self.db.read();
        let table = db.dataset(namespace, dataset)?;
        match table.index_on(attribute) {
            Some(ix) => Ok(ix
                .scan(
                    &polyframe_storage::ScanRange::all(),
                    polyframe_storage::Direction::Forward,
                )
                .map(|(k, _)| k.clone())
                .filter(|k| !k.is_unknown())
                .collect()),
            None => {
                let mut keys: Vec<Value> = table
                    .heap()
                    .scan()
                    .map(|(_, r)| r.get_or_missing(attribute))
                    .filter(|k| !k.is_unknown())
                    .collect();
                keys.sort_by(polyframe_datamodel::cmp_total);
                Ok(keys)
            }
        }
    }

    /// Count of index entries matching `key` (index-only cross-shard probe).
    pub fn probe_index_count(
        &self,
        namespace: &str,
        dataset: &str,
        attribute: &str,
        key: &Value,
    ) -> Result<usize> {
        let db = self.db.read();
        let table = db.dataset(namespace, dataset)?;
        match table.index_on(attribute) {
            Some(ix) => Ok(ix.lookup(key).len()),
            None => Ok(table
                .heap()
                .scan()
                .filter(|(_, r)| {
                    polyframe_datamodel::sql_eq(&r.get_or_missing(attribute), key).is_true()
                })
                .count()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyframe_datamodel::record;

    fn users_engine(config: EngineConfig) -> Engine {
        let engine = Engine::new(config);
        engine.create_dataset("Test", "Users", Some("id"));
        let langs = ["en", "fr", "en", "de", "en"];
        engine
            .load(
                "Test",
                "Users",
                (0..50i64).map(|i| {
                    record! {
                        "id" => i,
                        "name" => format!("user{i}"),
                        "address" => format!("{i} main st"),
                        "lang" => langs[(i % 5) as usize],
                        "age" => 20 + (i % 30),
                    }
                }),
            )
            .unwrap();
        engine
    }

    #[test]
    fn sqlpp_end_to_end() {
        let e = users_engine(EngineConfig::asterixdb());
        let rows = e.query("SELECT VALUE COUNT(*) FROM Test.Users").unwrap();
        assert_eq!(rows, vec![Value::Int(50)]);

        let rows = e
            .query(
                "SELECT t.name, t.address FROM (SELECT VALUE t FROM (SELECT VALUE t FROM Test.Users t) t WHERE t.lang = \"en\") t LIMIT 10;",
            )
            .unwrap();
        assert_eq!(rows.len(), 10);
        assert!(rows[0].get_path("name").as_str().is_some());
        assert!(rows[0].get_path("lang").is_missing());
    }

    #[test]
    fn sql_end_to_end() {
        let e = users_engine(EngineConfig::postgres());
        let rows = e
            .query("SELECT COUNT(*) FROM (SELECT * FROM Test.Users) t")
            .unwrap();
        assert_eq!(rows[0].get_path("count"), Value::Int(50));

        let rows = e
            .query(
                "SELECT t.name FROM (SELECT * FROM (SELECT * FROM Test.Users t) t WHERE t.lang = 'en') t LIMIT 3",
            )
            .unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn aggregates_and_group_by() {
        let e = users_engine(EngineConfig::postgres());
        let rows = e
            .query("SELECT MAX(\"age\") FROM (SELECT age FROM (SELECT * FROM Test.Users) t) t")
            .unwrap();
        assert_eq!(rows[0].get_path("max"), Value::Int(49));

        let rows = e
            .query("SELECT \"lang\", COUNT(\"lang\") AS cnt FROM (SELECT * FROM Test.Users) t GROUP BY \"lang\"")
            .unwrap();
        assert_eq!(rows.len(), 3);
        let en = rows
            .iter()
            .find(|r| r.get_path("lang") == Value::str("en"))
            .unwrap();
        assert_eq!(en.get_path("cnt"), Value::Int(30));
    }

    #[test]
    fn order_by_and_limit() {
        let e = users_engine(EngineConfig::postgres());
        let rows = e
            .query("SELECT * FROM (SELECT * FROM Test.Users) t ORDER BY id DESC LIMIT 5")
            .unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].get_path("id"), Value::Int(49));
        assert_eq!(rows[4].get_path("id"), Value::Int(45));
    }

    #[test]
    fn join_count() {
        let e = users_engine(EngineConfig::asterixdb());
        let rows = e
            .query(
                "SELECT VALUE COUNT(*) FROM (SELECT l, r FROM Test.Users l JOIN Test.Users r ON l.id = r.id) t",
            )
            .unwrap();
        assert_eq!(rows, vec![Value::Int(50)]);
    }

    #[test]
    fn explain_shows_plan_choice() {
        let e = users_engine(EngineConfig::asterixdb());
        let plan = e.explain("SELECT VALUE COUNT(*) FROM Test.Users").unwrap();
        assert!(plan.contains("PrimaryIndexCount"), "plan: {plan}");

        let pg = users_engine(EngineConfig::postgres());
        let plan = pg
            .explain("SELECT COUNT(*) FROM (SELECT * FROM Test.Users) t")
            .unwrap();
        assert!(plan.contains("SeqScan"), "plan: {plan}");
    }

    #[test]
    fn probe_index() {
        let e = users_engine(EngineConfig::postgres());
        let recs = e
            .probe_index("Test", "Users", "id", &Value::Int(7))
            .unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(
            e.probe_index_count("Test", "Users", "lang", &Value::str("en"))
                .unwrap(),
            30
        );
    }

    #[test]
    fn unknown_dataset_error() {
        let e = Engine::new(EngineConfig::postgres());
        assert!(e.query("SELECT * FROM nothing").is_err());
    }
}
