//! The engine facade: text in, rows out.

use crate::catalog::Database;
use crate::dialect::Dialect;
use crate::error::{EngineError, Result};
use crate::exec::{ExecOptions, Executor};
use crate::parser::parse;
use crate::personality::Personality;
use crate::plan::builder::build_logical;
use crate::plan::cache::{CacheOutcome, CachedPlan, PlanCache};
use crate::plan::logical::LogicalPlan;
use crate::plan::optimizer::optimize;
use crate::plan::physical::{plan_physical, PhysicalPlan, PlannerOptions};
use polyframe_datamodel::{Record, Value};
use polyframe_observe::sync::{Mutex, RwLock};
use polyframe_observe::{CacheStats, FaultKind, FaultPlan, Span, SpanTimer};
use polyframe_storage::TableOptions;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Query language spoken by this engine.
    pub dialect: Dialect,
    /// Feature flags of the impersonated system.
    pub personality: Personality,
    /// Namespace used for single-part dataset names.
    pub default_namespace: String,
    /// Master index-selection switch (ablation benchmarks flip this off).
    pub use_indexes: bool,
    /// Execution tuning: morsel-parallel worker count and morsel size.
    pub exec: ExecOptions,
}

impl EngineConfig {
    /// AsterixDB: SQL++ with the AsterixDB personality.
    pub fn asterixdb() -> EngineConfig {
        EngineConfig {
            dialect: Dialect::SqlPlusPlus,
            personality: Personality::asterixdb(),
            default_namespace: "Default".to_string(),
            use_indexes: true,
            exec: ExecOptions::default(),
        }
    }

    /// PostgreSQL 12: SQL with the modern PostgreSQL personality.
    pub fn postgres() -> EngineConfig {
        EngineConfig {
            dialect: Dialect::Sql,
            personality: Personality::postgres12(),
            default_namespace: "public".to_string(),
            use_indexes: true,
            exec: ExecOptions::default(),
        }
    }

    /// Greenplum segment: SQL with the PostgreSQL 9.5 personality.
    pub fn greenplum() -> EngineConfig {
        EngineConfig {
            dialect: Dialect::Sql,
            personality: Personality::postgres95(),
            default_namespace: "public".to_string(),
            use_indexes: true,
            exec: ExecOptions::default(),
        }
    }

    /// Same config with different execution options (builder-style).
    pub fn with_exec(mut self, exec: ExecOptions) -> EngineConfig {
        self.exec = exec;
        self
    }
}

/// One database engine instance (an "AsterixDB cluster controller" or a
/// "postgres server", depending on its config).
pub struct Engine {
    config: EngineConfig,
    db: RwLock<Database>,
    plan_cache: PlanCache,
    faults: Mutex<Option<Arc<FaultPlan>>>,
}

/// A compiled query: the shared cache entry, whether it came from the
/// cache, and the timed `parse`/`plan` spans describing how.
struct Compiled {
    plan: Arc<CachedPlan>,
    outcome: CacheOutcome,
    parse_span: Span,
    plan_span: Span,
}

impl Engine {
    /// Create an empty engine.
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            config,
            db: RwLock::new(Database::new()),
            plan_cache: PlanCache::new(),
            faults: Mutex::new(None),
        }
    }

    /// Install (or clear) a fault-injection plan consulted at every
    /// query entry point. Cluster shard execution is exempt — the
    /// cluster layer injects at its own shard boundary instead.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.faults.lock() = plan;
    }

    /// The currently installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.faults.lock().clone()
    }

    /// Consult the fault plan before running a query.
    fn check_faults(&self) -> Result<()> {
        let plan = self.faults.lock().clone();
        if let Some(plan) = plan {
            let site = format!("sqlengine/{:?}", self.config.dialect);
            match plan.next_fault(&site) {
                None => {}
                Some(FaultKind::Error) => {
                    return Err(EngineError::transient(format!("injected fault at {site}")))
                }
                Some(FaultKind::Latency(d)) => std::thread::sleep(d),
                Some(FaultKind::Hang(d)) => {
                    std::thread::sleep(d);
                    return Err(EngineError::transient(format!("injected hang at {site}")));
                }
            }
        }
        Ok(())
    }

    /// This engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Create a dataset.
    pub fn create_dataset(&self, namespace: &str, dataset: &str, primary_key: Option<&str>) {
        let options = TableOptions {
            primary_key: primary_key.map(str::to_string),
            secondary_null_policy: self.config.personality.secondary_null_policy(),
        };
        self.db.write().create_dataset(namespace, dataset, options);
    }

    /// Bulk-load records into a dataset.
    pub fn load(
        &self,
        namespace: &str,
        dataset: &str,
        records: impl IntoIterator<Item = Record>,
    ) -> Result<()> {
        let mut db = self.db.write();
        let table = db.dataset_mut(namespace, dataset)?;
        table.insert_all(records);
        // Loads can flip `Index::is_complete`, which changes which physical
        // plan is *correct* (not just fastest) — invalidate cached plans.
        db.bump_version();
        Ok(())
    }

    /// Create a secondary index.
    pub fn create_index(&self, namespace: &str, dataset: &str, attribute: &str) -> Result<String> {
        let mut db = self.db.write();
        let name = db.dataset_mut(namespace, dataset)?.create_index(attribute);
        db.bump_version();
        Ok(name)
    }

    /// Number of records in a dataset.
    pub fn dataset_len(&self, namespace: &str, dataset: &str) -> Result<usize> {
        Ok(self.db.read().dataset(namespace, dataset)?.len())
    }

    fn planner_options(&self) -> PlannerOptions {
        PlannerOptions {
            personality: self.config.personality.clone(),
            use_indexes: self.config.use_indexes,
        }
    }

    /// The one compile path: probe the plan cache at the current catalog
    /// version; on a miss, parse + optimize + plan and insert. Every
    /// query-text entry point (`query`, `query_traced`, `explain`,
    /// `compile_to_logical`, `compile_to_physical`) routes through here so
    /// they can never drift apart. `db` is the caller's read guard — the
    /// version probe and the physical planning see one catalog snapshot.
    fn compiled(&self, sql: &str, db: &Database) -> Result<Compiled> {
        let version = db.version();
        let probe_started = Instant::now();
        if let Some(plan) = self.plan_cache.get(self.config.dialect, sql, version) {
            // Parse was skipped entirely; keep the span (zero time) so the
            // trace shape is stable for stage-attribution consumers.
            let mut parse_span = Span::new("parse").with_duration(Duration::ZERO);
            parse_span.set_metric("query_len", sql.len() as i64);
            return Ok(Compiled {
                plan,
                outcome: CacheOutcome::Hit,
                parse_span,
                plan_span: Span::new("plan").with_duration(probe_started.elapsed()),
            });
        }
        let mut parse_t = SpanTimer::start("parse");
        let stmt = parse(sql, self.config.dialect)?;
        let logical = build_logical(&stmt, &self.config.default_namespace)?;
        parse_t.span_mut().set_metric("query_len", sql.len() as i64);
        let parse_span = parse_t.finish();

        let plan_t = SpanTimer::start("plan");
        let logical = optimize(logical, self.config.personality.optimizer_passes);
        let physical = plan_physical(&logical, db, &self.planner_options())?;
        let plan = self.plan_cache.insert(
            self.config.dialect,
            sql,
            version,
            CachedPlan { logical, physical },
        );
        Ok(Compiled {
            plan,
            outcome: CacheOutcome::Miss,
            parse_span,
            plan_span: plan_t.finish(),
        })
    }

    /// Parse, plan, optimize and execute a query.
    pub fn query(&self, sql: &str) -> Result<Vec<Value>> {
        self.check_faults()?;
        let db = self.db.read();
        let compiled = self.compiled(sql, &db)?;
        let (rows, _) = Executor::new(&db).run_with(&compiled.plan.physical, &self.config.exec)?;
        Ok(rows)
    }

    /// Like [`Engine::query`], but also reports where the time went as an
    /// `execute` span with `parse`/`plan`/`exec` children. The `plan` child
    /// carries the chosen access path, whether an index was used, and
    /// whether the plan came from the cache; the `exec` child carries the
    /// worker parallelism and one `morsel[i]` child per morsel.
    pub fn query_traced(&self, sql: &str) -> Result<(Vec<Value>, Span)> {
        self.check_faults()?;
        let started = Instant::now();
        let db = self.db.read();
        let Compiled {
            plan,
            outcome,
            parse_span,
            mut plan_span,
        } = self.compiled(sql, &db)?;

        let display = plan.physical.display();
        // Scan leaves render last in the plan tree; that line is the
        // access path.
        let access_path = display.lines().last().unwrap_or("").trim().to_string();
        let index_used = display.contains("IndexScan") || display.contains("PrimaryIndexCount");
        plan_span.set_metric(
            "optimizer_passes",
            self.config.personality.optimizer_passes as i64,
        );
        plan_span.set_metric("index_used", i64::from(index_used));
        plan_span.set_note("access_path", access_path);
        plan_span.set_note("cache", outcome.as_str());
        plan_span.set_metric("cache_hit", i64::from(outcome.is_hit()));
        plan_span.set_metric("cache_lookup", 1);

        let mut exec_t = SpanTimer::start("exec");
        let (rows, report) = Executor::new(&db).run_with(&plan.physical, &self.config.exec)?;
        exec_t.span_mut().set_metric("rows_out", rows.len() as i64);
        exec_t
            .span_mut()
            .set_metric("parallelism", report.parallelism as i64);
        for (i, elapsed) in report.morsel_times.iter().enumerate() {
            exec_t
                .span_mut()
                .push_child(Span::new(format!("morsel[{i}]")).with_duration(*elapsed));
        }
        let exec_span = exec_t.finish();

        let span = Span::new("execute")
            .with_duration(started.elapsed())
            .with_note("dialect", format!("{:?}", self.config.dialect))
            .with_child(parse_span)
            .with_child(plan_span)
            .with_child(exec_span);
        Ok((rows, span))
    }

    /// Compile query text to an optimized logical plan (runs the full
    /// optimizer-pass count of this engine's personality — the paper's
    /// query-preparation overhead lives here — unless the plan cache
    /// already holds the compiled query).
    pub fn compile_to_logical(&self, sql: &str) -> Result<LogicalPlan> {
        let db = self.db.read();
        Ok(self.compiled(sql, &db)?.plan.logical.clone())
    }

    /// Plan and execute a pre-built logical plan (used by the cluster layer).
    pub fn execute_logical(&self, logical: &LogicalPlan) -> Result<Vec<Value>> {
        let db = self.db.read();
        let physical = plan_physical(logical, &db, &self.planner_options())?;
        let (rows, _) = Executor::new(&db).run_with(&physical, &self.config.exec)?;
        Ok(rows)
    }

    /// Return the physical plan chosen for `sql`, as an EXPLAIN-style tree.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let db = self.db.read();
        Ok(self.compiled(sql, &db)?.plan.physical.display())
    }

    /// Compile to a physical plan without executing (exposed for tests).
    pub fn compile_to_physical(&self, sql: &str) -> Result<PhysicalPlan> {
        let db = self.db.read();
        Ok(self.compiled(sql, &db)?.plan.physical.clone())
    }

    /// Plan-cache hit/miss tallies since construction.
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.plan_cache.stats()
    }

    /// Number of plans currently cached.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.len()
    }

    /// Index point-probe used by the cluster layer's cross-shard joins:
    /// records of `dataset` whose `attribute` equals `key`.
    pub fn probe_index(
        &self,
        namespace: &str,
        dataset: &str,
        attribute: &str,
        key: &Value,
    ) -> Result<Vec<Record>> {
        let db = self.db.read();
        let table = db.dataset(namespace, dataset)?;
        match table.index_on(attribute) {
            Some(ix) => Ok(ix
                .lookup(key)
                .into_iter()
                .filter_map(|rid| table.get(rid).cloned())
                .collect()),
            None => Ok(table
                .heap()
                .scan()
                .filter(|(_, r)| {
                    polyframe_datamodel::sql_eq(&r.get_or_missing(attribute), key).is_true()
                })
                .map(|(_, r)| r.clone())
                .collect()),
        }
    }

    /// All (known) keys of an index in sorted order — the index-only key
    /// extraction the cluster layer's repartition join uses.
    pub fn index_keys(
        &self,
        namespace: &str,
        dataset: &str,
        attribute: &str,
    ) -> Result<Vec<Value>> {
        let db = self.db.read();
        let table = db.dataset(namespace, dataset)?;
        match table.index_on(attribute) {
            Some(ix) => Ok(ix
                .scan(
                    &polyframe_storage::ScanRange::all(),
                    polyframe_storage::Direction::Forward,
                )
                .map(|(k, _)| k.clone())
                .filter(|k| !k.is_unknown())
                .collect()),
            None => {
                let mut keys: Vec<Value> = table
                    .heap()
                    .scan()
                    .map(|(_, r)| r.get_or_missing(attribute))
                    .filter(|k| !k.is_unknown())
                    .collect();
                keys.sort_by(polyframe_datamodel::cmp_total);
                Ok(keys)
            }
        }
    }

    /// Count of index entries matching `key` (index-only cross-shard probe).
    pub fn probe_index_count(
        &self,
        namespace: &str,
        dataset: &str,
        attribute: &str,
        key: &Value,
    ) -> Result<usize> {
        let db = self.db.read();
        let table = db.dataset(namespace, dataset)?;
        match table.index_on(attribute) {
            Some(ix) => Ok(ix.lookup(key).len()),
            None => Ok(table
                .heap()
                .scan()
                .filter(|(_, r)| {
                    polyframe_datamodel::sql_eq(&r.get_or_missing(attribute), key).is_true()
                })
                .count()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyframe_datamodel::record;

    fn users_engine(config: EngineConfig) -> Engine {
        let engine = Engine::new(config);
        engine.create_dataset("Test", "Users", Some("id"));
        let langs = ["en", "fr", "en", "de", "en"];
        engine
            .load(
                "Test",
                "Users",
                (0..50i64).map(|i| {
                    record! {
                        "id" => i,
                        "name" => format!("user{i}"),
                        "address" => format!("{i} main st"),
                        "lang" => langs[(i % 5) as usize],
                        "age" => 20 + (i % 30),
                    }
                }),
            )
            .unwrap();
        engine
    }

    #[test]
    fn sqlpp_end_to_end() {
        let e = users_engine(EngineConfig::asterixdb());
        let rows = e.query("SELECT VALUE COUNT(*) FROM Test.Users").unwrap();
        assert_eq!(rows, vec![Value::Int(50)]);

        let rows = e
            .query(
                "SELECT t.name, t.address FROM (SELECT VALUE t FROM (SELECT VALUE t FROM Test.Users t) t WHERE t.lang = \"en\") t LIMIT 10;",
            )
            .unwrap();
        assert_eq!(rows.len(), 10);
        assert!(rows[0].get_path("name").as_str().is_some());
        assert!(rows[0].get_path("lang").is_missing());
    }

    #[test]
    fn sql_end_to_end() {
        let e = users_engine(EngineConfig::postgres());
        let rows = e
            .query("SELECT COUNT(*) FROM (SELECT * FROM Test.Users) t")
            .unwrap();
        assert_eq!(rows[0].get_path("count"), Value::Int(50));

        let rows = e
            .query(
                "SELECT t.name FROM (SELECT * FROM (SELECT * FROM Test.Users t) t WHERE t.lang = 'en') t LIMIT 3",
            )
            .unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn aggregates_and_group_by() {
        let e = users_engine(EngineConfig::postgres());
        let rows = e
            .query("SELECT MAX(\"age\") FROM (SELECT age FROM (SELECT * FROM Test.Users) t) t")
            .unwrap();
        assert_eq!(rows[0].get_path("max"), Value::Int(49));

        let rows = e
            .query("SELECT \"lang\", COUNT(\"lang\") AS cnt FROM (SELECT * FROM Test.Users) t GROUP BY \"lang\"")
            .unwrap();
        assert_eq!(rows.len(), 3);
        let en = rows
            .iter()
            .find(|r| r.get_path("lang") == Value::str("en"))
            .unwrap();
        assert_eq!(en.get_path("cnt"), Value::Int(30));
    }

    #[test]
    fn order_by_and_limit() {
        let e = users_engine(EngineConfig::postgres());
        let rows = e
            .query("SELECT * FROM (SELECT * FROM Test.Users) t ORDER BY id DESC LIMIT 5")
            .unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].get_path("id"), Value::Int(49));
        assert_eq!(rows[4].get_path("id"), Value::Int(45));
    }

    #[test]
    fn join_count() {
        let e = users_engine(EngineConfig::asterixdb());
        let rows = e
            .query(
                "SELECT VALUE COUNT(*) FROM (SELECT l, r FROM Test.Users l JOIN Test.Users r ON l.id = r.id) t",
            )
            .unwrap();
        assert_eq!(rows, vec![Value::Int(50)]);
    }

    #[test]
    fn explain_shows_plan_choice() {
        let e = users_engine(EngineConfig::asterixdb());
        let plan = e.explain("SELECT VALUE COUNT(*) FROM Test.Users").unwrap();
        assert!(plan.contains("PrimaryIndexCount"), "plan: {plan}");

        let pg = users_engine(EngineConfig::postgres());
        let plan = pg
            .explain("SELECT COUNT(*) FROM (SELECT * FROM Test.Users) t")
            .unwrap();
        assert!(plan.contains("SeqScan"), "plan: {plan}");
    }

    #[test]
    fn probe_index() {
        let e = users_engine(EngineConfig::postgres());
        let recs = e
            .probe_index("Test", "Users", "id", &Value::Int(7))
            .unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(
            e.probe_index_count("Test", "Users", "lang", &Value::str("en"))
                .unwrap(),
            30
        );
    }

    #[test]
    fn unknown_dataset_error() {
        let e = Engine::new(EngineConfig::postgres());
        assert!(e.query("SELECT * FROM nothing").is_err());
    }
}
