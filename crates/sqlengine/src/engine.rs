//! The engine facade: text in, rows out.

use crate::catalog::Database;
use crate::dialect::Dialect;
use crate::error::{EngineError, Result};
use crate::exec::{ExecOptions, Executor, KernelCache};
use crate::parser::parse;
use crate::personality::Personality;
use crate::plan::builder::build_logical;
use crate::plan::cache::{CacheOutcome, CachedPlan, PlanCache};
use crate::plan::cost::{CostModel, PlanDecision};
use crate::plan::logical::LogicalPlan;
use crate::plan::optimizer::optimize;
use crate::plan::physical::{plan_physical, plan_physical_explained, PhysicalPlan, PlannerOptions};
use crate::plan::stats::StatsCatalog;
use polyframe_datamodel::{Record, Value};
use polyframe_observe::sync::{Mutex, RwLock};
use polyframe_observe::{
    CacheStats, ExplainReport, FaultKind, FaultPlan, SnapshotCell, Span, SpanTimer,
};
use polyframe_storage::{
    CheckpointPolicy, DurableOp, IndexKind, LogMedia, RecoveryReport, TableOptions, Wal, WalError,
    WalStats,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Query language spoken by this engine.
    pub dialect: Dialect,
    /// Feature flags of the impersonated system.
    pub personality: Personality,
    /// Namespace used for single-part dataset names.
    pub default_namespace: String,
    /// Master index-selection switch (ablation benchmarks flip this off).
    pub use_indexes: bool,
    /// Cost-based planning switch: when set, physical planning captures a
    /// statistics snapshot and chooses among legal plans by estimated
    /// cost; when clear, the deterministic shape rule decides (ablation
    /// benchmarks flip this off to measure plan quality).
    pub use_stats: bool,
    /// Execution tuning: morsel-parallel worker count and morsel size.
    pub exec: ExecOptions,
}

impl EngineConfig {
    /// AsterixDB: SQL++ with the AsterixDB personality.
    pub fn asterixdb() -> EngineConfig {
        EngineConfig {
            dialect: Dialect::SqlPlusPlus,
            personality: Personality::asterixdb(),
            default_namespace: "Default".to_string(),
            use_indexes: true,
            use_stats: true,
            exec: ExecOptions::default(),
        }
    }

    /// PostgreSQL 12: SQL with the modern PostgreSQL personality.
    pub fn postgres() -> EngineConfig {
        EngineConfig {
            dialect: Dialect::Sql,
            personality: Personality::postgres12(),
            default_namespace: "public".to_string(),
            use_indexes: true,
            use_stats: true,
            exec: ExecOptions::default(),
        }
    }

    /// Greenplum segment: SQL with the PostgreSQL 9.5 personality.
    pub fn greenplum() -> EngineConfig {
        EngineConfig {
            dialect: Dialect::Sql,
            personality: Personality::postgres95(),
            default_namespace: "public".to_string(),
            use_indexes: true,
            use_stats: true,
            exec: ExecOptions::default(),
        }
    }

    /// Same config with different execution options (builder-style).
    pub fn with_exec(mut self, exec: ExecOptions) -> EngineConfig {
        self.exec = exec;
        self
    }

    /// Same config with cost-based planning toggled (builder-style).
    pub fn with_stats(mut self, use_stats: bool) -> EngineConfig {
        self.use_stats = use_stats;
        self
    }
}

/// One database engine instance (an "AsterixDB cluster controller" or a
/// "postgres server", depending on its config).
///
/// Writes mutate the master [`Database`] under `db`'s write lock and then
/// publish an immutable copy-on-write snapshot through `published`; reads
/// pin the current snapshot and never hold `db` across execution, so
/// queries proceed concurrently with loads and DDL.
pub struct Engine {
    config: EngineConfig,
    db: RwLock<Database>,
    /// The committed-state snapshot readers run against (see
    /// [`SnapshotCell`]); republished after every master mutation.
    published: SnapshotCell<Database>,
    plan_cache: PlanCache,
    /// Adaptive kernel-promotion state: per-shape execution counts and
    /// promoted kernel plans, shared by every session (and every morsel
    /// worker) of this engine. Catalog-versioned like the plan cache.
    kernels: KernelCache,
    faults: Mutex<Option<Arc<FaultPlan>>>,
    wal: Mutex<Option<Arc<Wal>>>,
}

/// A compiled query: the shared cache entry, whether it came from the
/// cache, and the timed `parse`/`plan` spans describing how.
struct Compiled {
    plan: Arc<CachedPlan>,
    outcome: CacheOutcome,
    parse_span: Span,
    plan_span: Span,
}

impl Engine {
    /// Create an empty engine.
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            config,
            db: RwLock::new(Database::new()),
            published: SnapshotCell::new(Database::new()),
            plan_cache: PlanCache::new(),
            kernels: KernelCache::new(),
            faults: Mutex::new(None),
            wal: Mutex::new(None),
        }
    }

    /// Pin the current committed snapshot for a read. Cheap (one `Arc`
    /// clone); the pinned state cannot change under the reader.
    fn pinned(&self) -> Arc<Database> {
        self.published.load()
    }

    /// Publish a fresh snapshot of the master state. Callers hold the
    /// master write lock, so the clone is consistent, and call this only
    /// after the mutation (or its recovery) committed — a torn state is
    /// never published.
    fn publish_locked(&self, db: &Database) {
        self.published.publish(db.clone());
    }

    /// Epoch of the most recent snapshot publication (0 = construction).
    pub fn snapshot_epoch(&self) -> u64 {
        self.published.epoch()
    }

    /// Detect a master lock poisoned by a panic mid-write (the torn-state
    /// hazard: an op committed to the WAL but absent from memory) and
    /// rebuild through the recovery path before serving anything. Every
    /// public entry point calls this first.
    fn heal_poisoned(&self) -> Result<()> {
        if !self.db.poisoned() {
            return Ok(());
        }
        let mut db = self.db.write();
        if !self.db.poisoned() {
            return Ok(()); // another session healed while we waited
        }
        let wal = self.wal().ok_or_else(|| EngineError::Corruption {
            message: "store state torn by a panic mid-apply and no log is attached to rebuild from"
                .to_string(),
        })?;
        self.recover_locked(&mut db, &wal)?;
        self.db.clear_poison();
        self.publish_locked(&db);
        Ok(())
    }

    /// Install (or clear) a fault-injection plan consulted at every
    /// query entry point and at the WAL's durability sites. Cluster
    /// shard execution is exempt — the cluster layer injects at its own
    /// shard boundary instead.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.faults.lock() = plan.clone();
        if let Some(wal) = self.wal() {
            wal.set_faults(plan);
        }
    }

    /// The currently installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.faults.lock().clone()
    }

    /// Consult the fault plan before running a query.
    fn check_faults(&self) -> Result<()> {
        let plan = self.faults.lock().clone();
        if let Some(plan) = plan {
            let site = self.site();
            match plan.next_fault(&site) {
                None => {}
                Some(FaultKind::Error) => {
                    return Err(EngineError::transient(format!("injected fault at {site}")))
                }
                Some(FaultKind::Latency(d)) => std::thread::sleep(d),
                Some(FaultKind::Hang(d)) => {
                    std::thread::sleep(d);
                    return Err(EngineError::transient(format!("injected hang at {site}")));
                }
                Some(FaultKind::Crash) | Some(FaultKind::TornWrite(_)) => {
                    return Err(self.simulate_query_crash(&site));
                }
                Some(FaultKind::Panic) => panic!("injected panic at {site}"),
            }
        }
        Ok(())
    }

    /// A crash fault at a *query* (read-only) site: no committed state
    /// is at risk, but the process restart wipes memory. With durability
    /// enabled we model the restart faithfully — recover from the log —
    /// so the caller's retry lands on the rebuilt store; without it the
    /// crash degrades to a plain transient fault.
    fn simulate_query_crash(&self, site: &str) -> EngineError {
        if let Some(wal) = self.wal() {
            let mut db = self.db.write();
            if let Err(e) = self.recover_locked(&mut db, &wal) {
                return e;
            }
            self.publish_locked(&db);
        }
        EngineError::transient(format!("process crashed at {site}; store recovered"))
    }

    /// This engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// This engine's fault/WAL site name.
    fn site(&self) -> String {
        format!("sqlengine/{:?}", self.config.dialect)
    }

    fn wal(&self) -> Option<Arc<Wal>> {
        self.wal.lock().clone()
    }

    /// Attach a write-ahead log on `media` and recover whatever state it
    /// holds (a fresh media recovers to an empty engine; a media carried
    /// over from a "previous process" rebuilds its exact committed
    /// state). From here on every DDL, load, and index build is logged
    /// before it is applied, and checkpoints follow `policy`.
    pub fn enable_durability(
        &self,
        media: Arc<LogMedia>,
        policy: CheckpointPolicy,
    ) -> Result<RecoveryReport> {
        let wal = Arc::new(Wal::new(media, self.site(), policy));
        wal.set_faults(self.faults.lock().clone());
        let mut db = self.db.write();
        let report = self.recover_locked(&mut db, &wal)?;
        *self.wal.lock() = Some(wal);
        // Recovery rebuilt a consistent state, healing any torn write a
        // prior panic left behind.
        self.db.clear_poison();
        self.publish_locked(&db);
        Ok(report)
    }

    /// Whether a WAL is attached.
    pub fn durability_enabled(&self) -> bool {
        self.wal.lock().is_some()
    }

    /// WAL activity counters, when durability is enabled.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal().map(|w| w.stats())
    }

    /// Wipe in-memory state and rebuild it from the attached log, as a
    /// restarted process would. Errors when durability is not enabled.
    pub fn recover(&self) -> Result<RecoveryReport> {
        let wal = self
            .wal()
            .ok_or_else(|| EngineError::exec("durability is not enabled"))?;
        let mut db = self.db.write();
        let report = self.recover_locked(&mut db, &wal)?;
        self.db.clear_poison();
        self.publish_locked(&db);
        Ok(report)
    }

    /// Replace `db` with the state recovered from `wal`'s media, keeping
    /// the catalog version strictly past its pre-crash value so plans
    /// cached before the crash can never be served again.
    fn recover_locked(&self, db: &mut Database, wal: &Wal) -> Result<RecoveryReport> {
        let pre_crash_version = db.version();
        let (ops, report) = wal.recover().map_err(wal_err)?;
        let mut fresh = Database::new();
        for op in ops {
            apply_op(&mut fresh, op, &self.config.personality)?;
        }
        fresh.advance_version_past(pre_crash_version);
        *db = fresh;
        Ok(report)
    }

    /// Log `op` (when durability is on), apply it, and checkpoint when
    /// due. An injected crash at any WAL site wipes the store, recovers
    /// it from the log, and surfaces as a transient error — the store
    /// the caller retries against is the rebuilt one.
    fn durable_apply(&self, db: &mut Database, op: DurableOp) -> Result<()> {
        if let Some(wal) = self.wal() {
            if let Err(e) = wal.append(&op) {
                return Err(self.crash_recover(db, &wal, e));
            }
        }
        self.apply_panic_point();
        apply_op(db, op, &self.config.personality)?;
        if let Some(wal) = self.wal() {
            if wal.checkpoint_due() {
                let ops = snapshot_ops(db);
                if let Err(e) = wal.checkpoint(&ops) {
                    return Err(self.crash_recover(db, &wal, e));
                }
                // Checkpoint = the maintenance point: replace the
                // incrementally sketched statistics with exact ones
                // rebuilt from the heaps.
                db.rebuild_stats();
            }
        }
        Ok(())
    }

    /// The injected-panic point between the WAL append (the commit
    /// point) and the in-memory apply. A [`FaultPlan::panic_at`] target
    /// at `<site>/apply` dies here while the master write lock is held:
    /// the op is committed to the log but absent from memory, and the
    /// lock is poisoned — exactly the torn state [`Engine::heal_poisoned`]
    /// must repair. Gated on an armed target so plans that never aim
    /// here draw nothing at this site.
    fn apply_panic_point(&self) {
        let plan = self.faults.lock().clone();
        if let Some(plan) = plan {
            let site = format!("{}/apply", self.site());
            if plan.has_target_at(&site) && plan.next_fault(&site) == Some(FaultKind::Panic) {
                panic!("injected panic at {site}");
            }
        }
    }

    /// Handle a WAL failure under the store's write lock: crashes
    /// recover in place, corruption is surfaced as fatal.
    fn crash_recover(&self, db: &mut Database, wal: &Wal, err: WalError) -> EngineError {
        match err {
            WalError::Crashed { site } => match self.recover_locked(db, wal) {
                Ok(_) => EngineError::transient(format!(
                    "process crashed at {site}; store recovered from log"
                )),
                Err(e) => e,
            },
            WalError::Corruption(m) => EngineError::Corruption { message: m },
        }
    }

    /// The compacted op list that rebuilds this engine's current state
    /// from empty — what a checkpoint writes. Exposed so tests can
    /// assert two stores are byte-identical (equal op encodings imply
    /// equal heaps, in order, and equal index definitions).
    pub fn durable_snapshot(&self) -> Vec<DurableOp> {
        // Read the published snapshot: always a committed state, even
        // while a write is mid-flight or the master is being healed.
        snapshot_ops(&self.pinned())
    }

    /// The attached WAL, when durability is enabled. The replication
    /// layer installs its shipping observer and reads the committed
    /// tail through this handle.
    pub fn wal_handle(&self) -> Option<Arc<Wal>> {
        self.wal()
    }

    /// Atomically pin the current committed state and its log position:
    /// the compacted op list plus the LSN the next append will receive.
    /// Taking the master read lock excludes writers, so the ops and the
    /// pin always agree — the shard-split path seeds a new store from
    /// the ops and replays exactly the frames at or past the pin.
    /// Errors when durability is not enabled.
    pub fn pinned_ops(&self) -> Result<(Vec<DurableOp>, u64)> {
        let wal = self
            .wal()
            .ok_or_else(|| EngineError::exec("durability is not enabled"))?;
        self.heal_poisoned()?;
        let db = self.db.read();
        Ok((snapshot_ops(&db), wal.next_lsn()))
    }

    /// Create a dataset.
    pub fn create_dataset(
        &self,
        namespace: &str,
        dataset: &str,
        primary_key: Option<&str>,
    ) -> Result<()> {
        self.heal_poisoned()?;
        let mut db = self.db.write();
        let result = self.durable_apply(
            &mut db,
            DurableOp::Create {
                namespace: namespace.to_string(),
                name: dataset.to_string(),
                key: primary_key.map(str::to_string),
            },
        );
        // Publish success *and* failure outcomes: a crash-recovery error
        // path rebuilt the master, which readers must also see.
        self.publish_locked(&db);
        result
    }

    /// Bulk-load records into a dataset.
    pub fn load(
        &self,
        namespace: &str,
        dataset: &str,
        records: impl IntoIterator<Item = Record>,
    ) -> Result<()> {
        self.heal_poisoned()?;
        let mut db = self.db.write();
        // Validate before logging so the op can never fail post-append.
        let result = db.dataset(namespace, dataset).map(|_| ()).and_then(|()| {
            let records: Vec<Record> = records.into_iter().collect();
            self.durable_apply(
                &mut db,
                DurableOp::Ingest {
                    namespace: namespace.to_string(),
                    name: dataset.to_string(),
                    records,
                },
            )
        });
        self.publish_locked(&db);
        result
    }

    /// Create a secondary index.
    pub fn create_index(&self, namespace: &str, dataset: &str, attribute: &str) -> Result<String> {
        self.heal_poisoned()?;
        let mut db = self.db.write();
        let result = db.dataset(namespace, dataset).map(|_| ()).and_then(|()| {
            self.durable_apply(
                &mut db,
                DurableOp::Index {
                    namespace: namespace.to_string(),
                    name: dataset.to_string(),
                    attribute: attribute.to_string(),
                },
            )
        });
        let result = result.and_then(|()| {
            Ok(db
                .dataset(namespace, dataset)?
                .index_on(attribute)
                .map(|ix| ix.name().to_string())
                .unwrap_or_default())
        });
        self.publish_locked(&db);
        result
    }

    /// Number of records in a dataset.
    pub fn dataset_len(&self, namespace: &str, dataset: &str) -> Result<usize> {
        self.heal_poisoned()?;
        Ok(self.pinned().dataset(namespace, dataset)?.len())
    }

    /// Planner options against `db`: when cost-based planning is on,
    /// capture a statistics snapshot at `db`'s catalog version. The plan
    /// cache keys on the same version, so a cached stats-informed plan
    /// can never outlive the statistics that justified it.
    fn planner_options(&self, db: &Database) -> PlannerOptions {
        PlannerOptions {
            personality: self.config.personality.clone(),
            use_indexes: self.config.use_indexes,
            stats: self
                .config
                .use_stats
                .then(|| Arc::new(StatsCatalog::capture(db))),
        }
    }

    /// The one compile path: probe the plan cache at the current catalog
    /// version; on a miss, parse + optimize + plan and insert. Every
    /// query-text entry point (`query`, `query_traced`, `explain`,
    /// `compile_to_logical`, `compile_to_physical`) routes through here so
    /// they can never drift apart. `db` is the caller's read guard — the
    /// version probe and the physical planning see one catalog snapshot.
    fn compiled(&self, sql: &str, db: &Database) -> Result<Compiled> {
        let version = db.version();
        let probe_started = Instant::now();
        if let Some(plan) = self.plan_cache.get(self.config.dialect, sql, version) {
            // Parse was skipped entirely; keep the span (zero time) so the
            // trace shape is stable for stage-attribution consumers.
            let mut parse_span = Span::new("parse").with_duration(Duration::ZERO);
            parse_span.set_metric("query_len", sql.len() as i64);
            return Ok(Compiled {
                plan,
                outcome: CacheOutcome::Hit,
                parse_span,
                plan_span: Span::new("plan").with_duration(probe_started.elapsed()),
            });
        }
        let mut parse_t = SpanTimer::start("parse");
        let stmt = parse(sql, self.config.dialect)?;
        let logical = build_logical(&stmt, &self.config.default_namespace)?;
        parse_t.span_mut().set_metric("query_len", sql.len() as i64);
        let parse_span = parse_t.finish();

        let plan_t = SpanTimer::start("plan");
        let logical = optimize(logical, self.config.personality.optimizer_passes);
        let options = self.planner_options(db);
        let (physical, decisions) = plan_physical_explained(&logical, db, &options)?;
        let model = CostModel {
            db,
            stats: options.stats.as_deref(),
        };
        let mut slots: Vec<Option<PlanDecision>> = decisions.into_iter().map(Some).collect();
        let explain = model.explain_tree(&physical, &mut slots);
        let plan = self.plan_cache.insert(
            self.config.dialect,
            sql,
            version,
            CachedPlan {
                logical,
                physical,
                explain,
            },
        );
        Ok(Compiled {
            plan,
            outcome: CacheOutcome::Miss,
            parse_span,
            plan_span: plan_t.finish(),
        })
    }

    /// Parse, plan, optimize and execute a query.
    ///
    /// Runs against the pinned committed snapshot — the master lock is
    /// never held across execution, so loads/DDL proceed concurrently.
    pub fn query(&self, sql: &str) -> Result<Vec<Value>> {
        self.heal_poisoned()?;
        self.check_faults()?;
        let db = self.pinned();
        let compiled = self.compiled(sql, &db)?;
        let (rows, _) = Executor::new(&db).run_with_kernels(
            &compiled.plan.physical,
            &self.config.exec,
            Some(&self.kernels),
        )?;
        Ok(rows)
    }

    /// Like [`Engine::query`], but also reports where the time went as an
    /// `execute` span with `parse`/`plan`/`exec` children. The `plan` child
    /// carries the chosen access path, whether an index was used, and
    /// whether the plan came from the cache; the `exec` child carries the
    /// worker parallelism and one `morsel[i]` child per morsel.
    pub fn query_traced(&self, sql: &str) -> Result<(Vec<Value>, Span)> {
        self.heal_poisoned()?;
        self.check_faults()?;
        let started = Instant::now();
        let db = self.pinned();
        let Compiled {
            plan,
            outcome,
            parse_span,
            mut plan_span,
        } = self.compiled(sql, &db)?;

        let display = plan.physical.display();
        // Scan leaves render last in the plan tree; that line is the
        // access path.
        let access_path = display.lines().last().unwrap_or("").trim().to_string();
        let index_used = display.contains("IndexScan") || display.contains("PrimaryIndexCount");
        plan_span.set_metric(
            "optimizer_passes",
            self.config.personality.optimizer_passes as i64,
        );
        plan_span.set_metric("index_used", i64::from(index_used));
        plan_span.set_note("access_path", access_path);
        plan_span.set_note("cache", outcome.as_str());
        plan_span.set_metric("cache_hit", i64::from(outcome.is_hit()));
        plan_span.set_metric("cache_lookup", 1);

        let mut exec_t = SpanTimer::start("exec");
        let (rows, report) = Executor::new(&db).run_with_kernels(
            &plan.physical,
            &self.config.exec,
            Some(&self.kernels),
        )?;
        exec_t.span_mut().set_metric("rows_out", rows.len() as i64);
        exec_t
            .span_mut()
            .set_metric("parallelism", report.parallelism as i64);
        if self.config.exec.vectorized {
            // `fallback:<cause>` = vectorization was on but this plan
            // shape (or its expressions) compiled to no batch program, so
            // the row path ran; the cause names the operator or feature
            // that declined.
            let note = if report.vectorized {
                "true".to_string()
            } else {
                match report.fallback {
                    Some(cause) => format!("fallback:{cause}"),
                    None => "fallback".to_string(),
                }
            };
            exec_t.span_mut().set_note("vectorized", note);
        }
        if report.vectorized {
            exec_t
                .span_mut()
                .set_metric("batches", report.batches as i64);
            exec_t
                .span_mut()
                .set_metric("batch_rows", report.batch_rows as i64);
            // Which kernel tier ran: `specialized` = promoted null-fast /
            // fused kernels, `generic` = the per-lane tag-checked
            // interpreter (including warm-up runs before promotion).
            exec_t.span_mut().set_note(
                "kernel",
                if report.specialized {
                    "specialized"
                } else {
                    "generic"
                },
            );
            exec_t
                .span_mut()
                .set_metric("kernel_promotions", self.kernels.promotions() as i64);
            // Dictionary build health across this query's batches:
            // `dict_columns` counts per-batch columns that finished
            // dictionary-encoded, `dict_demoted` those that overflowed
            // `DICT_CAP` and fell back to generic value lanes.
            if report.dict_columns + report.dict_demoted > 0 {
                if report.dict_demoted > 0 {
                    exec_t.span_mut().set_note("dict", "demoted");
                }
                exec_t
                    .span_mut()
                    .set_metric("dict_columns", report.dict_columns as i64);
                exec_t
                    .span_mut()
                    .set_metric("dict_demoted", report.dict_demoted as i64);
            }
            exec_t
                .span_mut()
                .push_child(Span::new("compile(expr)").with_duration(report.compile_time));
        }
        for (i, elapsed) in report.morsel_times.iter().enumerate() {
            exec_t
                .span_mut()
                .push_child(Span::new(format!("morsel[{i}]")).with_duration(*elapsed));
        }
        let exec_span = exec_t.finish();

        let span = Span::new("execute")
            .with_duration(started.elapsed())
            .with_note("dialect", format!("{:?}", self.config.dialect))
            .with_child(parse_span)
            .with_child(plan_span)
            .with_child(exec_span);
        Ok((rows, span))
    }

    /// Compile query text to an optimized logical plan (runs the full
    /// optimizer-pass count of this engine's personality — the paper's
    /// query-preparation overhead lives here — unless the plan cache
    /// already holds the compiled query).
    pub fn compile_to_logical(&self, sql: &str) -> Result<LogicalPlan> {
        self.heal_poisoned()?;
        let db = self.pinned();
        Ok(self.compiled(sql, &db)?.plan.logical.clone())
    }

    /// Plan and execute a pre-built logical plan (used by the cluster layer).
    pub fn execute_logical(&self, logical: &LogicalPlan) -> Result<Vec<Value>> {
        self.heal_poisoned()?;
        let db = self.pinned();
        let physical = plan_physical(logical, &db, &self.planner_options(&db))?;
        let (rows, _) = Executor::new(&db).run_with_kernels(
            &physical,
            &self.config.exec,
            Some(&self.kernels),
        )?;
        Ok(rows)
    }

    /// Return the physical plan chosen for `sql`, as an EXPLAIN-style tree.
    pub fn explain(&self, sql: &str) -> Result<String> {
        self.heal_poisoned()?;
        let db = self.pinned();
        Ok(self.compiled(sql, &db)?.plan.physical.display())
    }

    /// Structured explain: the chosen plan as a tree of operators with
    /// estimated rows/cost, the personality flags consulted at each one,
    /// and the alternatives weighed (and rejected) at each planner
    /// decision point.
    pub fn explain_report(&self, sql: &str) -> Result<ExplainReport> {
        self.heal_poisoned()?;
        let db = self.pinned();
        let compiled = self.compiled(sql, &db)?;
        let mut report = ExplainReport::for_plan(self.config.personality.name, sql);
        report.root = Some(compiled.plan.explain.clone());
        Ok(report)
    }

    /// Compile to a physical plan without executing (exposed for tests).
    pub fn compile_to_physical(&self, sql: &str) -> Result<PhysicalPlan> {
        self.heal_poisoned()?;
        let db = self.pinned();
        Ok(self.compiled(sql, &db)?.plan.physical.clone())
    }

    /// Plan-cache hit/miss tallies since construction.
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.plan_cache.stats()
    }

    /// Number of plans currently cached.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.len()
    }

    /// Index point-probe used by the cluster layer's cross-shard joins:
    /// records of `dataset` whose `attribute` equals `key`.
    pub fn probe_index(
        &self,
        namespace: &str,
        dataset: &str,
        attribute: &str,
        key: &Value,
    ) -> Result<Vec<Record>> {
        self.heal_poisoned()?;
        let db = self.pinned();
        let table = db.dataset(namespace, dataset)?;
        match table.index_on(attribute) {
            Some(ix) => Ok(ix
                .lookup(key)
                .into_iter()
                .filter_map(|rid| table.get(rid).cloned())
                .collect()),
            None => Ok(table
                .heap()
                .scan()
                .filter(|(_, r)| {
                    polyframe_datamodel::sql_eq(&r.get_or_missing(attribute), key).is_true()
                })
                .map(|(_, r)| r.clone())
                .collect()),
        }
    }

    /// All (known) keys of an index in sorted order — the index-only key
    /// extraction the cluster layer's repartition join uses.
    pub fn index_keys(
        &self,
        namespace: &str,
        dataset: &str,
        attribute: &str,
    ) -> Result<Vec<Value>> {
        self.heal_poisoned()?;
        let db = self.pinned();
        let table = db.dataset(namespace, dataset)?;
        match table.index_on(attribute) {
            Some(ix) => Ok(ix
                .scan(
                    &polyframe_storage::ScanRange::all(),
                    polyframe_storage::Direction::Forward,
                )
                .map(|(k, _)| k.clone())
                .filter(|k| !k.is_unknown())
                .collect()),
            None => {
                let mut keys: Vec<Value> = table
                    .heap()
                    .scan()
                    .map(|(_, r)| r.get_or_missing(attribute))
                    .filter(|k| !k.is_unknown())
                    .collect();
                keys.sort_by(polyframe_datamodel::cmp_total);
                Ok(keys)
            }
        }
    }

    /// Count of index entries matching `key` (index-only cross-shard probe).
    pub fn probe_index_count(
        &self,
        namespace: &str,
        dataset: &str,
        attribute: &str,
        key: &Value,
    ) -> Result<usize> {
        self.heal_poisoned()?;
        let db = self.pinned();
        let table = db.dataset(namespace, dataset)?;
        match table.index_on(attribute) {
            Some(ix) => Ok(ix.lookup(key).len()),
            None => Ok(table
                .heap()
                .scan()
                .filter(|(_, r)| {
                    polyframe_datamodel::sql_eq(&r.get_or_missing(attribute), key).is_true()
                })
                .count()),
        }
    }
}

/// Map a WAL failure outside any crash-recovery context (i.e. during
/// recovery itself, where no fault sites are drawn).
fn wal_err(e: WalError) -> EngineError {
    match e {
        WalError::Crashed { site } => EngineError::transient(format!("process crashed at {site}")),
        WalError::Corruption(m) => EngineError::Corruption { message: m },
    }
}

/// Apply one logged op to the catalog. Infallible for ops that went
/// through the validated durable path; a failure here means the log
/// references state it never created — corruption, not a user error.
fn apply_op(db: &mut Database, op: DurableOp, personality: &Personality) -> Result<()> {
    match op {
        DurableOp::Create {
            namespace,
            name,
            key,
        } => {
            let options = TableOptions {
                primary_key: key,
                secondary_null_policy: personality.secondary_null_policy(),
            };
            db.create_dataset(&namespace, &name, options);
        }
        DurableOp::Ingest {
            namespace,
            name,
            records,
        } => {
            db.dataset_mut(&namespace, &name)
                .map_err(|_| EngineError::Corruption {
                    message: format!("log ingests into unknown dataset {namespace}.{name}"),
                })?
                .insert_all(records);
            // Loads can flip `Index::is_complete`, which changes which
            // physical plan is *correct* — invalidate cached plans.
            db.bump_version();
        }
        DurableOp::Index {
            namespace,
            name,
            attribute,
        } => {
            db.dataset_mut(&namespace, &name)
                .map_err(|_| EngineError::Corruption {
                    message: format!("log indexes unknown dataset {namespace}.{name}"),
                })?
                .create_index(&attribute);
            db.bump_version();
        }
    }
    Ok(())
}

/// Compact the catalog into an op list that replays to identical state:
/// per dataset (sorted for determinism) a `Create`, the secondary-index
/// DDL, then one `Ingest` of the heap in scan order. Creating indexes
/// before the ingest feeds the B+trees the same key sequence as the
/// original history did (heap order), so the rebuilt trees match.
fn snapshot_ops(db: &Database) -> Vec<DurableOp> {
    let mut names: Vec<(String, String)> = db
        .dataset_names()
        .map(|(ns, ds)| (ns.to_string(), ds.to_string()))
        .collect();
    names.sort();
    let mut ops = Vec::new();
    for (namespace, name) in names {
        let Ok(table) = db.dataset(&namespace, &name) else {
            continue;
        };
        ops.push(DurableOp::Create {
            namespace: namespace.clone(),
            name: name.clone(),
            key: table.primary_key().map(str::to_string),
        });
        for ix in table
            .indexes()
            .iter()
            .filter(|ix| ix.kind() == IndexKind::Secondary)
        {
            ops.push(DurableOp::Index {
                namespace: namespace.clone(),
                name: name.clone(),
                attribute: ix.attribute().to_string(),
            });
        }
        ops.push(DurableOp::Ingest {
            namespace,
            name,
            records: table.heap().scan().map(|(_, r)| r.clone()).collect(),
        });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyframe_datamodel::record;

    fn users_engine(config: EngineConfig) -> Engine {
        let engine = Engine::new(config);
        engine.create_dataset("Test", "Users", Some("id")).unwrap();
        let langs = ["en", "fr", "en", "de", "en"];
        engine
            .load(
                "Test",
                "Users",
                (0..50i64).map(|i| {
                    record! {
                        "id" => i,
                        "name" => format!("user{i}"),
                        "address" => format!("{i} main st"),
                        "lang" => langs[(i % 5) as usize],
                        "age" => 20 + (i % 30),
                    }
                }),
            )
            .unwrap();
        engine
    }

    #[test]
    fn sqlpp_end_to_end() {
        let e = users_engine(EngineConfig::asterixdb());
        let rows = e.query("SELECT VALUE COUNT(*) FROM Test.Users").unwrap();
        assert_eq!(rows, vec![Value::Int(50)]);

        let rows = e
            .query(
                "SELECT t.name, t.address FROM (SELECT VALUE t FROM (SELECT VALUE t FROM Test.Users t) t WHERE t.lang = \"en\") t LIMIT 10;",
            )
            .unwrap();
        assert_eq!(rows.len(), 10);
        assert!(rows[0].get_path("name").as_str().is_some());
        assert!(rows[0].get_path("lang").is_missing());
    }

    #[test]
    fn sql_end_to_end() {
        let e = users_engine(EngineConfig::postgres());
        let rows = e
            .query("SELECT COUNT(*) FROM (SELECT * FROM Test.Users) t")
            .unwrap();
        assert_eq!(rows[0].get_path("count"), Value::Int(50));

        let rows = e
            .query(
                "SELECT t.name FROM (SELECT * FROM (SELECT * FROM Test.Users t) t WHERE t.lang = 'en') t LIMIT 3",
            )
            .unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn aggregates_and_group_by() {
        let e = users_engine(EngineConfig::postgres());
        let rows = e
            .query("SELECT MAX(\"age\") FROM (SELECT age FROM (SELECT * FROM Test.Users) t) t")
            .unwrap();
        assert_eq!(rows[0].get_path("max"), Value::Int(49));

        let rows = e
            .query("SELECT \"lang\", COUNT(\"lang\") AS cnt FROM (SELECT * FROM Test.Users) t GROUP BY \"lang\"")
            .unwrap();
        assert_eq!(rows.len(), 3);
        let en = rows
            .iter()
            .find(|r| r.get_path("lang") == Value::str("en"))
            .unwrap();
        assert_eq!(en.get_path("cnt"), Value::Int(30));
    }

    #[test]
    fn order_by_and_limit() {
        let e = users_engine(EngineConfig::postgres());
        let rows = e
            .query("SELECT * FROM (SELECT * FROM Test.Users) t ORDER BY id DESC LIMIT 5")
            .unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].get_path("id"), Value::Int(49));
        assert_eq!(rows[4].get_path("id"), Value::Int(45));
    }

    #[test]
    fn join_count() {
        let e = users_engine(EngineConfig::asterixdb());
        let rows = e
            .query(
                "SELECT VALUE COUNT(*) FROM (SELECT l, r FROM Test.Users l JOIN Test.Users r ON l.id = r.id) t",
            )
            .unwrap();
        assert_eq!(rows, vec![Value::Int(50)]);
    }

    #[test]
    fn explain_shows_plan_choice() {
        let e = users_engine(EngineConfig::asterixdb());
        let plan = e.explain("SELECT VALUE COUNT(*) FROM Test.Users").unwrap();
        assert!(plan.contains("PrimaryIndexCount"), "plan: {plan}");

        let pg = users_engine(EngineConfig::postgres());
        let plan = pg
            .explain("SELECT COUNT(*) FROM (SELECT * FROM Test.Users) t")
            .unwrap();
        assert!(plan.contains("SeqScan"), "plan: {plan}");
    }

    #[test]
    fn probe_index() {
        let e = users_engine(EngineConfig::postgres());
        let recs = e
            .probe_index("Test", "Users", "id", &Value::Int(7))
            .unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(
            e.probe_index_count("Test", "Users", "lang", &Value::str("en"))
                .unwrap(),
            30
        );
    }

    #[test]
    fn unknown_dataset_error() {
        let e = Engine::new(EngineConfig::postgres());
        assert!(e.query("SELECT * FROM nothing").is_err());
    }
}
