//! Engine error type.

use std::fmt;

/// Errors surfaced by the SQL/SQL++ engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Lexical error (bad character, unterminated string, ...).
    Lex {
        /// Byte offset of the failure.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// Syntax error from the parser.
    Parse {
        /// Human-readable description.
        message: String,
    },
    /// Semantic error while building the logical plan (unknown dataset,
    /// unresolvable alias, misplaced aggregate, ...).
    Plan {
        /// Human-readable description.
        message: String,
    },
    /// Runtime error during execution.
    Exec {
        /// Human-readable description.
        message: String,
    },
    /// The referenced dataset does not exist.
    UnknownDataset {
        /// Namespace that was searched.
        namespace: String,
        /// The missing dataset's name.
        dataset: String,
    },
    /// A transient (retryable) backend condition: a dropped connection,
    /// a shard timeout, or an injected fault. Retrying may succeed.
    Transient {
        /// Human-readable description.
        message: String,
    },
    /// The engine's write-ahead log or snapshot failed its integrity
    /// check. Non-retryable: the durable state itself is damaged.
    Corruption {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Lex { offset, message } => {
                write!(f, "lexical error at byte {offset}: {message}")
            }
            EngineError::Parse { message } => write!(f, "syntax error: {message}"),
            EngineError::Plan { message } => write!(f, "planning error: {message}"),
            EngineError::Exec { message } => write!(f, "execution error: {message}"),
            EngineError::UnknownDataset { namespace, dataset } => {
                write!(f, "unknown dataset: {namespace}.{dataset}")
            }
            EngineError::Transient { message } => write!(f, "{message}"),
            EngineError::Corruption { message } => write!(f, "log corruption: {message}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl EngineError {
    /// Shorthand constructor for planning errors.
    pub fn plan(message: impl Into<String>) -> EngineError {
        EngineError::Plan {
            message: message.into(),
        }
    }

    /// Shorthand constructor for execution errors.
    pub fn exec(message: impl Into<String>) -> EngineError {
        EngineError::Exec {
            message: message.into(),
        }
    }

    /// Shorthand constructor for parse errors.
    pub fn parse(message: impl Into<String>) -> EngineError {
        EngineError::Parse {
            message: message.into(),
        }
    }

    /// Shorthand constructor for transient (retryable) errors.
    pub fn transient(message: impl Into<String>) -> EngineError {
        EngineError::Transient {
            message: message.into(),
        }
    }

    /// Whether retrying the failed operation may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, EngineError::Transient { .. })
    }

    /// Whether this error reports damaged durable state.
    pub fn is_corruption(&self) -> bool {
        matches!(self, EngineError::Corruption { .. })
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
