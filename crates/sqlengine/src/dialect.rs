//! SQL vs SQL++ dialect switches.

/// The two query languages one engine instance can speak.
///
/// The grammar differences the PolyFrame-generated queries exercise:
///
/// * `SELECT VALUE expr` exists only in SQL++ and produces *bare* values
///   rather than single-column records.
/// * In SQL, double quotes delimit identifiers (`"twentyPercent"`); in
///   SQL++ they delimit strings, and backticks delimit identifiers.
/// * SQL++ has `IS UNKNOWN`/`IS MISSING` in addition to `IS NULL`; plain
///   SQL only has `IS NULL` (absent fields cannot occur in a relational
///   row, so `IS NULL` covers the "unknown" case).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dialect {
    /// Standard SQL (the PostgreSQL / Greenplum surface).
    Sql,
    /// SQL++ (the AsterixDB surface).
    SqlPlusPlus,
}

impl Dialect {
    /// Whether `SELECT VALUE` is accepted.
    pub fn supports_select_value(self) -> bool {
        matches!(self, Dialect::SqlPlusPlus)
    }

    /// Whether a double-quoted token is an identifier (true for SQL) or a
    /// string literal (SQL++).
    pub fn double_quote_is_identifier(self) -> bool {
        matches!(self, Dialect::Sql)
    }

    /// Whether `IS MISSING` / `IS UNKNOWN` are accepted.
    pub fn supports_missing(self) -> bool {
        matches!(self, Dialect::SqlPlusPlus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dialect_flags() {
        assert!(Dialect::SqlPlusPlus.supports_select_value());
        assert!(!Dialect::Sql.supports_select_value());
        assert!(Dialect::Sql.double_quote_is_identifier());
        assert!(!Dialect::SqlPlusPlus.double_quote_is_identifier());
        assert!(Dialect::SqlPlusPlus.supports_missing());
        assert!(!Dialect::Sql.supports_missing());
    }
}
