//! Broader SQL/SQL++ engine coverage beyond the PolyFrame-generated query
//! shapes: DISTINCT, LEFT JOIN, arithmetic projections, string functions,
//! three-valued WHERE semantics, LIMIT interactions and error paths.

use polyframe_datamodel::{record, Value};
use polyframe_sqlengine::{Dialect, Engine, EngineConfig, EngineError};

fn engine() -> Engine {
    let e = Engine::new(EngineConfig::postgres());
    e.create_dataset("public", "t", Some("id")).unwrap();
    e.load(
        "public",
        "t",
        (0..20i64).map(|i| {
            let mut r = record! {
                "id" => i,
                "grp" => i % 3,
                "name" => format!("n{}", i % 4),
            };
            if i % 5 != 0 {
                r.insert("opt", i * 10);
            }
            r
        }),
    )
    .unwrap();
    e
}

#[test]
fn distinct_eliminates_duplicates() {
    let e = engine();
    let rows = e
        .query("SELECT DISTINCT grp FROM (SELECT * FROM t) x")
        .unwrap();
    assert_eq!(rows.len(), 3);
}

#[test]
fn left_join_keeps_unmatched_rows() {
    let e = engine();
    e.create_dataset("public", "small", Some("id")).unwrap();
    e.load(
        "public",
        "small",
        (0..5i64).map(|i| record! {"id" => i, "tag" => format!("tag{i}")}),
    )
    .unwrap();
    let rows = e
        .query("SELECT COUNT(*) FROM (SELECT l.*, r.* FROM (SELECT * FROM t) l LEFT JOIN (SELECT * FROM small) r ON l.id = r.id) x")
        .unwrap();
    assert_eq!(rows[0].get_path("count"), Value::Int(20));
}

#[test]
fn arithmetic_in_projection_and_where() {
    let e = engine();
    let rows = e
        .query("SELECT x.id * 2 + 1 AS odd FROM (SELECT * FROM t) x WHERE x.id < 3")
        .unwrap();
    let odds: Vec<i64> = rows
        .iter()
        .map(|r| r.get_path("odd").as_i64().unwrap())
        .collect();
    assert_eq!(odds, vec![1, 3, 5]);

    let rows = e
        .query("SELECT COUNT(*) FROM (SELECT t.* FROM (SELECT * FROM t) t WHERE t.id % 2 = 0) x")
        .unwrap();
    assert_eq!(rows[0].get_path("count"), Value::Int(10));
}

#[test]
fn string_functions() {
    let e = engine();
    let rows = e
        .query("SELECT UPPER(\"name\") AS u, LOWER(\"name\") AS l FROM (SELECT * FROM t) x LIMIT 1")
        .unwrap();
    assert_eq!(rows[0].get_path("u"), Value::str("N0"));
    assert_eq!(rows[0].get_path("l"), Value::str("n0"));
}

#[test]
fn where_three_valued_logic_drops_unknowns() {
    let e = engine();
    // `opt` is absent on multiples of 5: comparisons are unknown -> dropped.
    let rows = e
        .query("SELECT COUNT(*) FROM (SELECT t.* FROM (SELECT * FROM t) t WHERE t.\"opt\" >= 0) x")
        .unwrap();
    assert_eq!(rows[0].get_path("count"), Value::Int(16));
    // IS NULL picks up exactly the absent ones.
    let rows = e
        .query(
            "SELECT COUNT(*) FROM (SELECT t.* FROM (SELECT * FROM t) t WHERE t.\"opt\" IS NULL) x",
        )
        .unwrap();
    assert_eq!(rows[0].get_path("count"), Value::Int(4));
    // OR with one unknown side still passes when the other side is true.
    let rows = e
        .query("SELECT COUNT(*) FROM (SELECT t.* FROM (SELECT * FROM t) t WHERE t.\"opt\" >= 0 OR t.grp = 0) x")
        .unwrap();
    // 16 rows with known `opt`, plus the unknown-opt rows {0,5,10,15}
    // whose grp is 0 — that is ids 0 and 15 — for 18 total.
    assert_eq!(rows[0].get_path("count"), Value::Int(18));
}

#[test]
fn group_by_with_multiple_aggregates() {
    let e = engine();
    let rows = e
        .query(
            "SELECT grp, COUNT(grp) AS n, MAX(\"id\") AS mx, AVG(\"id\") AS avg FROM (SELECT * FROM t) x GROUP BY grp",
        )
        .unwrap();
    assert_eq!(rows.len(), 3);
    let g0 = rows
        .iter()
        .find(|r| r.get_path("grp") == Value::Int(0))
        .unwrap();
    assert_eq!(g0.get_path("n"), Value::Int(7));
    assert_eq!(g0.get_path("mx"), Value::Int(18));
}

#[test]
fn sum_and_stddev() {
    let e = engine();
    let rows = e
        .query("SELECT SUM(\"id\") AS s, STDDEV(\"id\") AS sd FROM (SELECT * FROM t) x")
        .unwrap();
    assert_eq!(rows[0].get_path("s"), Value::Int(190));
    let sd = rows[0].get_path("sd").as_f64().unwrap();
    // Population stddev of 0..19.
    let expected = ((0..20).map(|i| (i as f64 - 9.5).powi(2)).sum::<f64>() / 20.0).sqrt();
    assert!((sd - expected).abs() < 1e-9);
}

#[test]
fn limit_zero_and_overlarge() {
    let e = engine();
    assert!(e
        .query("SELECT * FROM (SELECT * FROM t) x LIMIT 0")
        .unwrap()
        .is_empty());
    assert_eq!(
        e.query("SELECT * FROM (SELECT * FROM t) x LIMIT 999")
            .unwrap()
            .len(),
        20
    );
}

#[test]
fn order_by_multiple_keys() {
    let e = engine();
    let rows = e
        .query("SELECT t.* FROM (SELECT * FROM t) t ORDER BY t.grp ASC, t.id DESC LIMIT 3")
        .unwrap();
    let pairs: Vec<(i64, i64)> = rows
        .iter()
        .map(|r| {
            (
                r.get_path("grp").as_i64().unwrap(),
                r.get_path("id").as_i64().unwrap(),
            )
        })
        .collect();
    assert_eq!(pairs, vec![(0, 18), (0, 15), (0, 12)]);
}

#[test]
fn empty_dataset_aggregates() {
    let e = Engine::new(EngineConfig::postgres());
    e.create_dataset("public", "empty", None).unwrap();
    let rows = e
        .query("SELECT COUNT(*) FROM (SELECT * FROM empty) x")
        .unwrap();
    assert_eq!(rows[0].get_path("count"), Value::Int(0));
    let rows = e
        .query("SELECT MAX(\"id\") FROM (SELECT * FROM empty) x")
        .unwrap();
    assert_eq!(rows[0].get_path("max"), Value::Null);
}

#[test]
fn error_paths() {
    let e = engine();
    assert!(matches!(
        e.query("SELECT * FROM ghosts"),
        Err(EngineError::UnknownDataset { .. })
    ));
    assert!(matches!(
        e.query("SELECT FROM t"),
        Err(EngineError::Parse { .. })
    ));
    assert!(matches!(
        e.query("SELECT NOSUCHFN(x) FROM t"),
        Err(EngineError::Plan { .. })
    ));
    // SQL++-only syntax rejected in SQL dialect.
    assert!(e.query("SELECT VALUE t FROM t t").is_err());
}

#[test]
fn sqlpp_dialect_distinctions() {
    let e = Engine::new(EngineConfig::asterixdb());
    assert_eq!(e.config().dialect, Dialect::SqlPlusPlus);
    e.create_dataset("Default", "d", None).unwrap();
    e.load(
        "Default",
        "d",
        vec![
            record! {"a" => 1i64, "b" => Value::Null},
            record! {"a" => 2i64}, // b missing
        ],
    )
    .unwrap();
    // IS MISSING vs IS NULL vs IS UNKNOWN all differ in SQL++.
    let count = |q: &str| -> i64 { e.query(q).unwrap()[0].as_i64().unwrap() };
    assert_eq!(
        count("SELECT VALUE COUNT(*) FROM (SELECT VALUE t FROM d t WHERE t.b IS MISSING) t"),
        1
    );
    assert_eq!(
        count("SELECT VALUE COUNT(*) FROM (SELECT VALUE t FROM d t WHERE t.b IS UNKNOWN) t"),
        2
    );
    // Double quotes are strings in SQL++.
    assert_eq!(
        count("SELECT VALUE COUNT(*) FROM (SELECT VALUE t FROM d t WHERE \"x\" = \"x\") t"),
        2
    );
}

#[test]
fn nested_field_navigation() {
    let e = Engine::new(EngineConfig::postgres());
    e.create_dataset("public", "nested", None).unwrap();
    e.load(
        "public",
        "nested",
        vec![record! {
            "id" => 1i64,
            "address" => Value::Obj(record! {"city" => "Irvine"}),
        }],
    )
    .unwrap();
    let rows = e
        .query("SELECT t.* FROM (SELECT * FROM nested) t WHERE address.city = 'Irvine'")
        .unwrap();
    assert_eq!(rows.len(), 1);
}

#[test]
fn index_and_seqscan_agree() {
    // The planner's index path must return exactly what a forced scan does.
    let with_idx = engine();
    with_idx.create_index("public", "t", "grp").unwrap();
    let without = Engine::new(EngineConfig {
        use_indexes: false,
        ..EngineConfig::postgres()
    });
    without.create_dataset("public", "t", Some("id")).unwrap();
    without
        .load(
            "public",
            "t",
            (0..20i64).map(|i| {
                let mut r = record! {"id" => i, "grp" => i % 3, "name" => format!("n{}", i % 4)};
                if i % 5 != 0 {
                    r.insert("opt", i * 10);
                }
                r
            }),
        )
        .unwrap();
    for q in [
        "SELECT COUNT(*) FROM (SELECT t.* FROM (SELECT * FROM t) t WHERE t.grp = 1) x",
        "SELECT t.* FROM (SELECT * FROM t) t WHERE t.grp = 2 ORDER BY t.id ASC LIMIT 4",
    ] {
        assert_eq!(with_idx.query(q).unwrap(), without.query(q).unwrap(), "{q}");
    }
}
