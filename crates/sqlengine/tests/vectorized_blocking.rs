//! Acceptance suite for vectorized blocking operators: hash joins,
//! DISTINCT, early-exit LIMIT and final-aggregate merges must run on the
//! batch path (`vectorized=true` in the exec trace) and stay
//! **byte-identical** to the row-at-a-time reference, and LIMIT pipelines
//! must actually stop early (fewer batches than the scan domain holds).

use polyframe_datamodel::{to_json_string, Value};
use polyframe_sqlengine::{Engine, EngineConfig, ExecOptions};
use polyframe_wisconsin::{generate, WisconsinConfig};

const N: usize = 3_000;
const NS: &str = "Bench";
const DS: &str = "wisconsin";
const BATCH_ROWS: usize = 256;

fn load(engine: &Engine) {
    engine.create_dataset(NS, DS, Some("unique2")).unwrap();
    engine
        .load(NS, DS, generate(&WisconsinConfig::new(N)))
        .unwrap();
}

/// The row-at-a-time reference, a single-threaded vectorized engine, and a
/// multi-worker vectorized engine over the same seeded data.
fn trio() -> (Engine, Engine, Engine) {
    let rowwise = Engine::new(EngineConfig::postgres().with_exec(ExecOptions::rowwise()));
    let vectorized = Engine::new(EngineConfig::postgres().with_exec(ExecOptions {
        workers: 1,
        batch_rows: BATCH_ROWS,
        ..ExecOptions::default()
    }));
    let parallel = Engine::new(EngineConfig::postgres().with_exec(ExecOptions {
        workers: 4,
        morsel_rows: 512,
        batch_rows: BATCH_ROWS,
        ..ExecOptions::default()
    }));
    load(&rowwise);
    load(&vectorized);
    load(&parallel);
    (rowwise, vectorized, parallel)
}

fn ndjson(rows: &[Value]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&to_json_string(r));
        out.push('\n');
    }
    out
}

/// Assert byte-identity across all three configs and that both vectorized
/// engines actually ran the batch path.
fn assert_vectorized_identical(trio: &(Engine, Engine, Engine), sql: &str) {
    let (rowwise, vectorized, parallel) = trio;
    let reference = ndjson(&rowwise.query(sql).unwrap());
    for (name, engine) in [("vectorized", vectorized), ("parallel", parallel)] {
        let (rows, span) = engine.query_traced(sql).unwrap();
        assert_eq!(
            ndjson(&rows),
            reference,
            "{name} diverged from rowwise: {sql}"
        );
        let exec = span.find("exec").unwrap();
        assert_eq!(
            exec.note("vectorized"),
            Some("true"),
            "{name} fell back to the row path: {sql}"
        );
    }
}

const JOIN_AGG: &str = "SELECT SUM(t.\"unique2\") AS s FROM \
     (SELECT l.*, r.* FROM (SELECT * FROM Bench.wisconsin) l \
      INNER JOIN (SELECT * FROM Bench.wisconsin) r ON l.\"unique1\" = r.\"unique1\") t \
     WHERE t.\"onePercent\" < 50";

#[test]
fn hash_join_filter_aggregate_runs_vectorized() {
    let engines = trio();
    assert_vectorized_identical(&engines, JOIN_AGG);
}

#[test]
fn hash_join_collect_runs_vectorized() {
    let engines = trio();
    // Unfiltered join output: exercises the merged-star row emission.
    let sql = "SELECT t.* FROM \
         (SELECT l.*, r.* FROM (SELECT * FROM Bench.wisconsin) l \
          INNER JOIN (SELECT * FROM Bench.wisconsin) r ON l.\"ten\" = r.\"unique1\") t \
         WHERE t.\"two\" = 0";
    assert_vectorized_identical(&engines, sql);
}

#[test]
fn left_join_misses_run_vectorized() {
    let engines = trio();
    // `unique1` ranges over [0, N); joining `ten` (0..=9) against it never
    // misses, so join `ten` against `onePercent * unique1` shapes instead:
    // left rows with no match must survive with null build fields.
    let sql = "SELECT COUNT(*) AS c FROM \
         (SELECT l.*, r.* FROM (SELECT * FROM Bench.wisconsin) l \
          LEFT JOIN (SELECT r.* FROM (SELECT * FROM Bench.wisconsin) r WHERE r.\"unique1\" < 5) r \
          ON l.\"ten\" = r.\"unique1\") t";
    assert_vectorized_identical(&engines, sql);
}

#[test]
fn distinct_runs_vectorized() {
    let engines = trio();
    for sql in [
        "SELECT DISTINCT \"ten\" FROM (SELECT * FROM Bench.wisconsin) t",
        "SELECT DISTINCT \"two\", \"four\" FROM (SELECT * FROM Bench.wisconsin) t",
    ] {
        assert_vectorized_identical(&engines, sql);
    }
}

#[test]
fn group_by_over_join_runs_vectorized() {
    let engines = trio();
    let sql = "SELECT \"four\", COUNT(\"four\") AS c FROM \
         (SELECT l.*, r.* FROM (SELECT * FROM Bench.wisconsin) l \
          INNER JOIN (SELECT * FROM Bench.wisconsin) r ON l.\"unique1\" = r.\"unique2\") t \
         GROUP BY \"four\"";
    assert_vectorized_identical(&engines, sql);
}

#[test]
fn limit_stops_early_on_the_batch_path() {
    let engines = trio();
    let sql = "SELECT t.* FROM (SELECT * FROM Bench.wisconsin) t WHERE t.\"two\" = 0 LIMIT 10";
    assert_vectorized_identical(&engines, sql);

    // The single-worker vectorized engine reports how many batches it
    // actually processed; a 10-row limit over a 50%-selective filter
    // settles within the first batch or two, nowhere near the full scan.
    let (rows, span) = engines.1.query_traced(sql).unwrap();
    assert_eq!(rows.len(), 10);
    let exec = span.find("exec").unwrap();
    let batches = exec.metric("batches").unwrap();
    let full_domain = N.div_ceil(BATCH_ROWS) as i64;
    assert!(
        batches < full_domain,
        "limit did not stop early: {batches} of {full_domain} batches ran"
    );
}

#[test]
fn limit_over_join_stops_early() {
    let engines = trio();
    // Every probe row matches exactly once: 25 events need ~1 batch.
    let sql = "SELECT t.* FROM \
         (SELECT l.*, r.* FROM (SELECT * FROM Bench.wisconsin) l \
          INNER JOIN (SELECT * FROM Bench.wisconsin) r ON l.\"unique1\" = r.\"unique1\") t \
         LIMIT 25";
    assert_vectorized_identical(&engines, sql);
    let (rows, span) = engines.1.query_traced(sql).unwrap();
    assert_eq!(rows.len(), 25);
    let exec = span.find("exec").unwrap();
    let batches = exec.metric("batches").unwrap();
    let full_domain = N.div_ceil(BATCH_ROWS) as i64;
    assert!(
        batches < full_domain,
        "join limit did not stop early: {batches} of {full_domain} batches ran"
    );
}

#[test]
fn index_nl_join_runs_vectorized() {
    let engines = trio();
    // An index on the build side turns the join into index nested-loop.
    for e in [&engines.0, &engines.1, &engines.2] {
        e.create_index(NS, DS, "ten").unwrap();
    }
    let sql = "SELECT COUNT(*) AS c FROM \
         (SELECT l.*, r.* FROM (SELECT * FROM Bench.wisconsin) l \
          INNER JOIN (SELECT * FROM Bench.wisconsin) r ON l.\"two\" = r.\"ten\") t";
    assert_vectorized_identical(&engines, sql);
}

#[test]
fn fallback_note_names_the_cause() {
    let engines = trio();
    // `SELECT VALUE` pipelines are outside the batch compiler's
    // whitelist: the trace must name the cause, not just say "fallback".
    let e = Engine::new(EngineConfig::asterixdb().with_exec(ExecOptions {
        workers: 1,
        ..ExecOptions::default()
    }));
    load(&e);
    // A `SELECT VALUE` feeding an aggregate leaves the batch compiler's
    // whitelist (the aggregate's input rows are scalars, not records).
    let (_, span) = e
        .query_traced("SELECT SUM(t) AS s FROM (SELECT VALUE t.unique1 FROM (SELECT VALUE t FROM Bench.wisconsin t) t) t")
        .unwrap();
    let exec = span.find("exec").unwrap();
    let note = exec.note("vectorized").unwrap();
    assert!(
        note.starts_with("fallback:"),
        "expected a fallback cause, got {note:?}"
    );
    drop(engines);
}
