//! Determinism suite for morsel-driven parallel execution: every plan shape
//! the parallel path accepts must produce **byte-identical** results to
//! serial execution over seeded Wisconsin data — scans, filters,
//! projections, scalar and grouped aggregates, and sorts (including ties,
//! where first-morsel-wins must equal the serial stable order).

use polyframe_datamodel::{to_json_string, Value};
use polyframe_sqlengine::{Engine, EngineConfig, ExecOptions};
use polyframe_wisconsin::{generate, WisconsinConfig};

const N: usize = 3_000;
const NS: &str = "Bench";
const DS: &str = "wisconsin";

/// Small morsels so even this laptop-sized dataset splits into many
/// (`N / 256 ≈ 12` per scan), exercising the merge paths properly.
const MORSEL_ROWS: usize = 256;

fn load(engine: &Engine) {
    engine.create_dataset(NS, DS, Some("unique2")).unwrap();
    engine
        .load(NS, DS, generate(&WisconsinConfig::new(N)))
        .unwrap();
}

/// The same data behind a row-at-a-time serial engine (the reference) and
/// a 4-worker parallel engine.
fn pair(config: fn() -> EngineConfig) -> (Engine, Engine) {
    let serial = Engine::new(config().with_exec(ExecOptions::rowwise()));
    let parallel = Engine::new(config().with_exec(ExecOptions {
        workers: 4,
        morsel_rows: MORSEL_ROWS,
        ..ExecOptions::default()
    }));
    load(&serial);
    load(&parallel);
    (serial, parallel)
}

/// Render rows as NDJSON so "identical" means byte-identical, not merely
/// structurally equal.
fn ndjson(rows: &[Value]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&to_json_string(r));
        out.push('\n');
    }
    out
}

fn assert_identical(serial: &Engine, parallel: &Engine, sql: &str) {
    let a = serial.query(sql).unwrap();
    let b = parallel.query(sql).unwrap();
    assert_eq!(
        ndjson(&a),
        ndjson(&b),
        "parallel diverged from serial: {sql}"
    );
}

#[test]
fn full_scan_is_deterministic() {
    let (s, p) = pair(EngineConfig::postgres);
    assert_identical(&s, &p, "SELECT * FROM Bench.wisconsin");
}

#[test]
fn filtered_scans_are_deterministic() {
    let (s, p) = pair(EngineConfig::postgres);
    for sql in [
        "SELECT t.* FROM (SELECT * FROM Bench.wisconsin) t WHERE t.\"onePercent\" < 7",
        "SELECT t.* FROM (SELECT * FROM Bench.wisconsin) t WHERE t.\"two\" = 1",
        // Empty result set.
        "SELECT t.* FROM (SELECT * FROM Bench.wisconsin) t WHERE t.\"unique1\" < 0",
    ] {
        assert_identical(&s, &p, sql);
    }
}

#[test]
fn projections_are_deterministic() {
    let (s, p) = pair(EngineConfig::postgres);
    assert_identical(
        &s,
        &p,
        "SELECT t.\"unique1\", t.\"stringu1\" FROM (SELECT * FROM Bench.wisconsin) t",
    );
}

#[test]
fn scalar_aggregates_are_deterministic() {
    let (s, p) = pair(EngineConfig::postgres);
    for sql in [
        "SELECT COUNT(*) FROM (SELECT * FROM Bench.wisconsin) t",
        "SELECT SUM(\"unique1\") FROM (SELECT * FROM Bench.wisconsin) t",
        "SELECT MIN(\"stringu1\") FROM (SELECT * FROM Bench.wisconsin) t",
        "SELECT MAX(\"unique1\") FROM (SELECT * FROM Bench.wisconsin) t",
        "SELECT AVG(\"ten\") FROM (SELECT * FROM Bench.wisconsin) t",
        // `tenPercent` is absent from every tenth record: COUNT(attr) must
        // skip missing values identically on both paths.
        "SELECT COUNT(\"tenPercent\") FROM (SELECT * FROM Bench.wisconsin) t",
        // Aggregate over an empty input: one row with a null aggregate.
        "SELECT SUM(\"unique1\") FROM (SELECT t.* FROM (SELECT * FROM Bench.wisconsin) t WHERE t.\"unique1\" < 0) t",
    ] {
        assert_identical(&s, &p, sql);
    }
}

#[test]
fn grouped_aggregates_are_deterministic() {
    let (s, p) = pair(EngineConfig::postgres);
    for sql in [
        "SELECT \"ten\", SUM(\"unique1\") AS s FROM (SELECT * FROM Bench.wisconsin) t GROUP BY \"ten\"",
        "SELECT \"twenty\", COUNT(\"twenty\") AS cnt FROM (SELECT * FROM Bench.wisconsin) t GROUP BY \"twenty\"",
        "SELECT \"four\", MAX(\"unique1\") AS m FROM (SELECT * FROM Bench.wisconsin) t GROUP BY \"four\"",
        // A missing group key forms its own group on both paths.
        "SELECT \"tenPercent\", COUNT(\"tenPercent\") AS cnt FROM (SELECT * FROM Bench.wisconsin) t GROUP BY \"tenPercent\"",
    ] {
        assert_identical(&s, &p, sql);
    }
}

#[test]
fn sorts_are_deterministic() {
    let (s, p) = pair(EngineConfig::postgres);
    for sql in [
        // Unique sort key.
        "SELECT t.* FROM (SELECT * FROM Bench.wisconsin) t ORDER BY t.\"unique1\"",
        "SELECT t.* FROM (SELECT * FROM Bench.wisconsin) t ORDER BY t.\"stringu1\" DESC",
        // Massive ties: the k-way merge's chunk-order tiebreak must
        // reproduce the serial stable sort exactly.
        "SELECT t.* FROM (SELECT * FROM Bench.wisconsin) t ORDER BY t.\"ten\"",
        // Top-k through the sort+limit path.
        "SELECT t.* FROM (SELECT * FROM Bench.wisconsin) t ORDER BY t.\"unique1\" DESC LIMIT 25",
    ] {
        assert_identical(&s, &p, sql);
    }
}

#[test]
fn index_rid_chunks_are_deterministic() {
    let (s, p) = pair(EngineConfig::postgres);
    for e in [&s, &p] {
        e.create_index(NS, DS, "onePercent").unwrap();
    }
    // Selective enough (~5% of rows) that the cost-based planner keeps
    // the index over a sequential scan.
    let sql = "SELECT t.* FROM (SELECT * FROM Bench.wisconsin) t WHERE t.\"onePercent\" <= 4";
    // Both engines must actually take the rid-list path for this to test
    // IndexScan morsels.
    assert!(p.explain(sql).unwrap().contains("IndexScan"));
    assert_identical(&s, &p, sql);
}

#[test]
fn sqlpp_dialect_is_deterministic() {
    let (s, p) = pair(EngineConfig::asterixdb);
    for sql in [
        "SELECT VALUE t FROM (SELECT VALUE t FROM Bench.wisconsin t) t WHERE t.ten = 3",
        "SELECT SUM(unique1) FROM (SELECT VALUE t FROM Bench.wisconsin t) t",
        "SELECT VALUE t FROM (SELECT VALUE t FROM Bench.wisconsin t) t ORDER BY t.twenty",
    ] {
        assert_identical(&s, &p, sql);
    }
}

#[test]
fn parallel_execution_actually_engages() {
    let (s, p) = pair(EngineConfig::postgres);
    let sql = "SELECT SUM(\"unique1\") FROM (SELECT * FROM Bench.wisconsin) t";

    let (_, span) = p.query_traced(sql).unwrap();
    let exec = span.find("exec").unwrap();
    let workers = exec.metric("parallelism").unwrap();
    assert!(workers >= 2, "expected parallel execution, got {workers}");
    let morsels = exec
        .children()
        .iter()
        .filter(|c| c.name().starts_with("morsel["))
        .count();
    assert!(
        morsels >= N / MORSEL_ROWS,
        "expected ≥{} morsel spans, got {morsels}",
        N / MORSEL_ROWS
    );

    let (_, span) = s.query_traced(sql).unwrap();
    let exec = span.find("exec").unwrap();
    assert_eq!(exec.metric("parallelism"), Some(1));
    assert!(exec.children().is_empty());
}

#[test]
fn tiny_tables_stay_sequential_under_stats_budget() {
    // 300 rows split into two morsels of 256, but the statistics snapshot
    // reports the rows fill only one *whole* morsel — the worker budget
    // keeps the scan on the single-threaded path instead of paying
    // multi-worker setup for a table this small.
    let tiny = Engine::new(EngineConfig::postgres().with_exec(ExecOptions {
        workers: 4,
        morsel_rows: MORSEL_ROWS,
        ..ExecOptions::default()
    }));
    tiny.create_dataset(NS, DS, Some("unique2")).unwrap();
    tiny.load(NS, DS, generate(&WisconsinConfig::new(300)))
        .unwrap();

    let sql = "SELECT SUM(\"unique1\") FROM (SELECT * FROM Bench.wisconsin) t";
    let (rows, span) = tiny.query_traced(sql).unwrap();
    let exec = span.find("exec").unwrap();
    assert_eq!(
        exec.metric("parallelism"),
        Some(1),
        "300 rows must not engage the worker pool"
    );

    // The budget is a scheduling decision only: answers match a serial
    // reference byte for byte.
    let serial = Engine::new(EngineConfig::postgres().with_exec(ExecOptions::rowwise()));
    serial.create_dataset(NS, DS, Some("unique2")).unwrap();
    serial
        .load(NS, DS, generate(&WisconsinConfig::new(300)))
        .unwrap();
    assert_eq!(ndjson(&rows), ndjson(&serial.query(sql).unwrap()));
}
