//! Cost-based planning invariants.
//!
//! Three properties pin the statistics subsystem's contract:
//!
//! 1. The **no-stats fallback** is shape-ranked, not first-match: among
//!    legal indexes it prefers primary-key equality, then secondary
//!    equality, then ranges — regardless of conjunct order.
//! 2. With statistics, the planner picks by estimated cost and the
//!    structured explain report surfaces the **rejected** alternatives
//!    with their costs (index selection and hash-join build side).
//! 3. A seeded property sweep: across random data states and all four
//!    engine personalities, turning statistics on may only change the
//!    *plan* — results stay byte-identical, and every chosen operator
//!    remains legal under the active personality flags.

use polyframe_datamodel::{to_json_string, Value};
use polyframe_observe::ExplainNode;
use polyframe_sqlengine::{Engine, EngineConfig, Personality};
use polyframe_wisconsin::{generate, WisconsinConfig};

fn engine_with(config: EngineConfig, rows: usize, index_attrs: &[&str]) -> Engine {
    let e = Engine::new(config);
    let ns = e.config().default_namespace.clone();
    e.create_dataset(&ns, "data", Some("unique2")).unwrap();
    e.load(&ns, "data", generate(&WisconsinConfig::new(rows)))
        .unwrap();
    for attr in index_attrs {
        e.create_index(&ns, "data", attr).unwrap();
    }
    e
}

// --- 1. shape-ranked no-stats fallback -------------------------------------

#[test]
fn no_stats_fallback_prefers_primary_key_equality() {
    // `two` is indexed and appears first in the predicate; the old
    // first-match rule picked it. The shape rule ranks primary-key
    // equality above secondary equality no matter the conjunct order.
    let e = engine_with(EngineConfig::postgres().with_stats(false), 500, &["two"]);
    let plan = e
        .explain(
            "SELECT t.* FROM (SELECT * FROM data) t WHERE t.\"two\" = 0 AND t.\"unique2\" = 42",
        )
        .unwrap();
    assert!(plan.contains("IndexScan"), "{plan}");
    assert!(plan.contains("(unique2)"), "{plan}");
    assert!(!plan.contains("(two)"), "{plan}");
}

#[test]
fn no_stats_fallback_prefers_equality_over_range() {
    // A range on the first-declared index loses to an equality on a
    // later one: equality lookups bound the fetched rows far tighter.
    let e = engine_with(
        EngineConfig::postgres().with_stats(false),
        500,
        &["ten", "onePercent"],
    );
    let plan = e
        .explain(
            "SELECT t.* FROM (SELECT * FROM data) t WHERE t.\"ten\" >= 2 AND t.\"onePercent\" = 3",
        )
        .unwrap();
    assert!(plan.contains("IndexScan"), "{plan}");
    assert!(plan.contains("(onePercent)"), "{plan}");
    assert!(!plan.contains("(ten)"), "{plan}");
}

// --- 2. cost-based choices surface their rejected alternatives -------------

#[test]
fn stats_pick_the_selective_index_and_surface_rejections() {
    let e = engine_with(EngineConfig::postgres(), 5_000, &["two", "onePercent"]);
    let sql = "SELECT t.* FROM (SELECT * FROM data) t WHERE t.\"two\" = 0 AND t.\"onePercent\" = 3";
    let report = e.explain_report(sql).unwrap();
    let scan = report.find("IndexScan").unwrap();
    assert!(
        scan.detail.contains("(onePercent)"),
        "{}",
        report.plan_text()
    );
    let chosen = scan.alternatives.iter().find(|a| a.chosen).unwrap();
    assert_eq!(chosen.label, "IndexScan(onePercent=)");
    // The 50%-selective index the rule would have taken is reported as
    // rejected, with a cost, and that cost exceeds the winner's.
    let rejected = scan
        .rejected()
        .find(|a| a.label == "IndexScan(two=)")
        .unwrap();
    assert!(
        rejected.est_cost > chosen.est_cost,
        "{}",
        report.plan_text()
    );
}

#[test]
fn hash_join_build_side_follows_the_smaller_table() {
    // Two tables joined on a non-indexed unique key; when their sizes
    // flip, the build side flips with them (and the rejected build side
    // keeps its estimated cost in the report).
    for (big_rows, small_rows, build) in [(4_000, 200, "l"), (200, 4_000, "r")] {
        let e = Engine::new(EngineConfig::postgres());
        let ns = e.config().default_namespace.clone();
        e.create_dataset(&ns, "lhs", Some("unique2")).unwrap();
        e.load(&ns, "lhs", generate(&WisconsinConfig::new(small_rows)))
            .unwrap();
        e.create_dataset(&ns, "rhs", Some("unique2")).unwrap();
        e.load(&ns, "rhs", generate(&WisconsinConfig::new(big_rows)))
            .unwrap();
        let sql = "SELECT SUM(t.\"unique2\") AS s FROM \
             (SELECT l.*, r.* FROM (SELECT * FROM lhs) l \
              INNER JOIN (SELECT * FROM rhs) r ON l.\"unique1\" = r.\"unique1\") t";
        let report = e.explain_report(sql).unwrap();
        let join = report.find("HashJoin").unwrap();
        let chosen = join.alternatives.iter().find(|a| a.chosen).unwrap();
        assert_eq!(
            chosen.label,
            format!("HashJoin(build={build})"),
            "{}",
            report.plan_text()
        );
        let rejected = join.rejected().next().unwrap();
        assert!(
            rejected.est_cost > chosen.est_cost,
            "{}",
            report.plan_text()
        );
    }
}

// --- 3. seeded sweep: stats change plans, never results or legality --------

/// Tiny deterministic xorshift so the sweep needs no external RNG crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A PostgreSQL-dialect engine whose personality has every optional
/// index feature disabled — the fourth sweep personality, checking that
/// statistics never resurrect a flag-gated plan.
fn locked_down() -> EngineConfig {
    let mut config = EngineConfig::postgres();
    config.personality = Personality {
        name: "lockdown",
        index_only_scans: false,
        backward_index_scans: false,
        nulls_in_indexes: false,
        count_via_primary_index: false,
        index_only_join: false,
        ..config.personality
    };
    config
}

/// Which personality flag admits each flag-gated operator.
fn operator_legal(operator: &str, detail: &str, p: &Personality) -> bool {
    match operator {
        "PrimaryIndexCount" => p.count_via_primary_index,
        "IndexMinMax" => p.index_only_scans,
        "IndexOnlyCount" if detail.contains("unknown keys") => {
            p.index_only_scans && p.nulls_in_indexes
        }
        "IndexOnlyCount" => p.index_only_scans,
        "IndexOrderedScan" => p.backward_index_scans,
        "IndexUnknownScan" => p.nulls_in_indexes,
        "IndexOnlyJoinCount" => p.index_only_join,
        _ => true,
    }
}

fn assert_legal(node: &ExplainNode, p: &Personality) {
    assert!(
        operator_legal(&node.operator, &node.detail, p),
        "{} chose illegal operator {} {}",
        p.name,
        node.operator,
        node.detail
    );
    // The flags the report says were consulted must all be enabled —
    // an operator may not ride on a flag the personality lacks.
    for flag in &node.flags {
        let set = match flag.as_str() {
            "index_only_scans" => p.index_only_scans,
            "backward_index_scans" => p.backward_index_scans,
            "nulls_in_indexes" => p.nulls_in_indexes,
            "count_via_primary_index" => p.count_via_primary_index,
            "index_only_join" => p.index_only_join,
            other => panic!("unknown flag {other} in explain report"),
        };
        assert!(set, "{} consulted unset flag {flag}", p.name);
    }
    for child in &node.children {
        assert_legal(child, p);
    }
}

fn ndjson(rows: &[Value]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&to_json_string(r));
        out.push('\n');
    }
    out
}

/// The sweep's query suite in both dialects: scans, selective filters,
/// aggregates (flag-gated fast paths where legal), top-k, unknown-key
/// counts — every plan family the personality flags gate.
fn sweep_queries(sqlpp: bool) -> Vec<&'static str> {
    if sqlpp {
        vec![
            "SELECT VALUE COUNT(*) FROM data",
            "SELECT VALUE t FROM (SELECT VALUE t FROM data t) t WHERE t.onePercent = 3",
            "SELECT VALUE t FROM (SELECT VALUE t FROM data t) t WHERE t.two = 0 AND t.onePercent = 3",
            "SELECT MAX(unique1) FROM (SELECT VALUE t FROM data t) t",
            "SELECT VALUE t FROM (SELECT VALUE t FROM data t) t ORDER BY t.unique1 DESC LIMIT 5",
            "SELECT VALUE COUNT(*) FROM (SELECT VALUE t FROM (SELECT VALUE t FROM data t) t WHERE tenPercent IS UNKNOWN) t",
        ]
    } else {
        vec![
            "SELECT COUNT(*) FROM (SELECT * FROM data) t",
            "SELECT t.* FROM (SELECT * FROM data) t WHERE t.\"onePercent\" = 3",
            "SELECT t.* FROM (SELECT * FROM data) t WHERE t.\"two\" = 0 AND t.\"onePercent\" = 3",
            "SELECT MAX(\"unique1\") FROM (SELECT * FROM data) t",
            "SELECT t.* FROM (SELECT * FROM data) t ORDER BY t.\"unique1\" DESC LIMIT 5",
            "SELECT COUNT(*) FROM (SELECT t.* FROM (SELECT * FROM data) t WHERE t.\"tenPercent\" IS NULL) t",
        ]
    }
}

#[test]
fn sweep_stats_never_change_results_and_plans_stay_legal() {
    type ConfigFn = fn() -> EngineConfig;
    let personalities: [(&str, ConfigFn); 4] = [
        ("asterixdb", EngineConfig::asterixdb),
        ("postgres", EngineConfig::postgres),
        ("greenplum", EngineConfig::greenplum),
        ("lockdown", locked_down),
    ];
    for seed in 1..=6u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let rows = 300 + rng.below(900) as usize;
        // Randomize the stats state: optionally split the load in two so
        // the second batch runs through the incremental/amortized path,
        // and optionally index the low-cardinality columns.
        let split = rng.below(2) == 1;
        let mut index_attrs = vec!["unique1", "ten"];
        if rng.below(2) == 1 {
            index_attrs.push("onePercent");
        }
        if rng.below(2) == 1 {
            index_attrs.push("tenPercent");
        }
        for (name, config) in personalities {
            let build = |use_stats: bool| {
                let e = Engine::new(config().with_stats(use_stats));
                let ns = e.config().default_namespace.clone();
                e.create_dataset(&ns, "data", Some("unique2")).unwrap();
                let records = generate(&WisconsinConfig::new(rows));
                if split {
                    let mid = records.len() / 2;
                    e.load(&ns, "data", records[..mid].to_vec()).unwrap();
                    for attr in &index_attrs {
                        e.create_index(&ns, "data", attr).unwrap();
                    }
                    e.load(&ns, "data", records[mid..].to_vec()).unwrap();
                } else {
                    e.load(&ns, "data", records).unwrap();
                    for attr in &index_attrs {
                        e.create_index(&ns, "data", attr).unwrap();
                    }
                }
                e
            };
            let with_stats = build(true);
            let without = build(false);
            let sqlpp = name == "asterixdb";
            for sql in sweep_queries(sqlpp) {
                let a = with_stats.query(sql).unwrap();
                let b = without.query(sql).unwrap();
                assert_eq!(
                    ndjson(&a),
                    ndjson(&b),
                    "stats changed the result: seed={seed} {name}: {sql}"
                );
                for engine in [&with_stats, &without] {
                    let report = engine.explain_report(sql).unwrap();
                    let root = report.root.as_ref().unwrap();
                    assert_legal(root, &engine.config().personality);
                }
            }
        }
    }
}
