//! Plan-cache behaviour: repeated query text is answered from the cache,
//! DDL and bulk loads invalidate stale plans (a stale plan is a
//! *correctness* bug once an index appears or loses completeness), and the
//! cache is observable through stats and the query trace.

use polyframe_datamodel::{record, Value};
use polyframe_sqlengine::{Engine, EngineConfig};

const NS: &str = "Test";
const DS: &str = "t";

fn engine() -> Engine {
    let e = Engine::new(EngineConfig::postgres());
    e.create_dataset(NS, DS, Some("id")).unwrap();
    e.load(
        NS,
        DS,
        (0..100i64).map(|i| record! { "id" => i, "ten" => i % 10 }),
    )
    .unwrap();
    e
}

#[test]
fn repeated_query_hits_cache() {
    let e = engine();
    let sql = "SELECT COUNT(*) FROM (SELECT * FROM Test.t) t";
    assert_eq!(e.query(sql).unwrap()[0].get_path("count"), Value::Int(100));
    assert_eq!(e.query(sql).unwrap()[0].get_path("count"), Value::Int(100));
    let stats = e.plan_cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    assert_eq!(e.plan_cache_len(), 1);
    assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
}

#[test]
fn all_compile_entry_points_share_one_cache() {
    let e = engine();
    let sql = "SELECT t.* FROM (SELECT * FROM Test.t) t WHERE t.\"ten\" = 3";
    // explain, compile_to_logical, compile_to_physical and query all route
    // through the same compile path: one miss, then hits.
    e.explain(sql).unwrap();
    e.compile_to_logical(sql).unwrap();
    e.compile_to_physical(sql).unwrap();
    e.query(sql).unwrap();
    let stats = e.plan_cache_stats();
    assert_eq!((stats.hits, stats.misses), (3, 1));
    assert_eq!(e.plan_cache_len(), 1);
}

#[test]
fn traced_hit_reports_cache_and_skips_parse() {
    let e = engine();
    let sql = "SELECT COUNT(*) FROM (SELECT * FROM Test.t) t";

    let (_, cold) = e.query_traced(sql).unwrap();
    let plan = cold.find("plan").unwrap();
    assert_eq!(plan.note("cache"), Some("miss"));
    assert_eq!(plan.metric("cache_hit"), Some(0));
    assert_eq!(plan.metric("cache_lookup"), Some(1));

    let (_, warm) = e.query_traced(sql).unwrap();
    let plan = warm.find("plan").unwrap();
    assert_eq!(plan.note("cache"), Some("hit"));
    assert_eq!(plan.metric("cache_hit"), Some(1));
    // Parse was skipped entirely; the span survives (zero time) so the
    // trace shape stays stable for stage-attribution consumers.
    let parse = warm.find("parse").unwrap();
    assert_eq!(parse.duration(), std::time::Duration::ZERO);
    assert!(parse.metric("query_len").unwrap() > 0);
}

#[test]
fn create_index_invalidates_cached_plan() {
    let e = engine();
    let sql = "SELECT t.* FROM (SELECT * FROM Test.t) t WHERE t.\"ten\" = 3";
    // Warm the cache with the index-less plan.
    assert!(e.explain(sql).unwrap().contains("SeqScan"));
    assert_eq!(e.query(sql).unwrap().len(), 10);

    e.create_index(NS, DS, "ten").unwrap();

    // A stale cache would still serve the SeqScan plan; the version bump
    // forces a re-plan that discovers the new index.
    assert!(e.explain(sql).unwrap().contains("IndexScan"));
    assert_eq!(e.query(sql).unwrap().len(), 10);
}

#[test]
fn load_invalidates_cached_plan() {
    let e = engine();
    let sql = "SELECT COUNT(*) FROM (SELECT * FROM Test.t) t";
    assert_eq!(e.query(sql).unwrap()[0].get_path("count"), Value::Int(100));

    // Loads can flip index completeness, which changes plan *correctness* —
    // they must invalidate, not just DDL.
    e.load(
        NS,
        DS,
        (100..150i64).map(|i| record! { "id" => i, "ten" => i % 10 }),
    )
    .unwrap();

    assert_eq!(e.query(sql).unwrap()[0].get_path("count"), Value::Int(150));
    let stats = e.plan_cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 2));
}

#[test]
fn dialects_key_separate_entries() {
    // The same query text under different dialects must not collide.
    let sql = "SELECT VALUE COUNT(*) FROM Test.t";
    let e = Engine::new(EngineConfig::asterixdb());
    e.create_dataset(NS, DS, Some("id")).unwrap();
    e.load(NS, DS, (0..10i64).map(|i| record! { "id" => i }))
        .unwrap();
    e.query(sql).unwrap();
    e.query(sql).unwrap();
    assert_eq!(e.plan_cache_stats().hits, 1);

    let pg = Engine::new(EngineConfig::postgres());
    pg.create_dataset(NS, DS, Some("id")).unwrap();
    pg.load(NS, DS, (0..10i64).map(|i| record! { "id" => i }))
        .unwrap();
    // Postgres parses this dialect-specific text differently (and rejects
    // it) — its cache stays independent either way.
    let _ = pg.query(sql);
    assert_eq!(pg.plan_cache_stats().hits, 0);
}

#[test]
fn recovery_invalidates_cached_plans() {
    use polyframe_storage::{CheckpointPolicy, LogMedia};
    let e = Engine::new(EngineConfig::postgres());
    e.enable_durability(LogMedia::new(), CheckpointPolicy::every(8))
        .unwrap();
    e.create_dataset(NS, DS, Some("id")).unwrap();
    e.load(
        NS,
        DS,
        (0..100i64).map(|i| record! { "id" => i, "ten" => i % 10 }),
    )
    .unwrap();
    let sql = "SELECT COUNT(*) FROM (SELECT * FROM Test.t) t";
    assert_eq!(e.query(sql).unwrap()[0].get_path("count"), Value::Int(100));
    assert_eq!(e.query(sql).unwrap()[0].get_path("count"), Value::Int(100));
    assert_eq!(
        (e.plan_cache_stats().hits, e.plan_cache_stats().misses),
        (1, 1)
    );

    // Simulated restart: wipe volatile state, rebuild from the log. The
    // catalog version advances past its pre-crash value, so a cached
    // plan keyed to the old version can never be served across restart.
    e.recover().unwrap();
    assert_eq!(e.query(sql).unwrap()[0].get_path("count"), Value::Int(100));
    let stats = e.plan_cache_stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (1, 2),
        "the first post-recovery lookup must miss"
    );
}
