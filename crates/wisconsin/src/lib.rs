#![warn(missing_docs)]

//! # polyframe-wisconsin
//!
//! Generator for the scalable Wisconsin benchmark dataset (Table II of the
//! PolyFrame paper, after DeWitt's original specification), extended with
//! the paper's modification: **missing values** in the `tenPercent`
//! attribute so that expression 13 (`isna` counting) has something to find.
//!
//! * `unique1` — unique values in `0..n`, randomly permuted;
//! * `unique2` — unique, sequential (the declared key);
//! * `two`/`four`/`ten`/`twenty`/`onePercent`/... — `unique1 mod k`
//!   selectivity helpers;
//! * `stringu1`/`stringu2` — 52-character strings derived from
//!   `unique1`/`unique2` (seven significant leading characters, padded with
//!   `x`), per the classic template;
//! * `string4` — cyclic `AAAA`/`HHHH`/`OOOO`/`VVVV`;
//! * `tenPercent` — `unique1 mod 10`, but **absent** from one record in
//!   `missing_every` (default 10).
//!
//! Sizes follow the paper's Table IV proportions (XS : S : M : L : XL =
//! 2 : 5 : 10 : 15 : 20) behind a scale factor, so laptop-scale runs keep
//! the same relative shapes as the paper's 1–10 GB files.

use polyframe_datamodel::{to_json_string, Record, Value};
use polyframe_observe::Rng;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct WisconsinConfig {
    /// Number of records.
    pub num_records: usize,
    /// RNG seed for the `unique1` permutation.
    pub seed: u64,
    /// Every `missing_every`-th record (by `unique1`) omits `tenPercent`
    /// entirely (0 disables missing values).
    pub missing_every: usize,
}

impl WisconsinConfig {
    /// Standard configuration for `n` records.
    pub fn new(num_records: usize) -> WisconsinConfig {
        WisconsinConfig {
            num_records,
            seed: 0x5EED,
            missing_every: 10,
        }
    }
}

/// The paper's single-node dataset presets (Table IV), plus the `Empty`
/// baseline used for expressions 2 and 10 in Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizePreset {
    /// Zero records (query-preparation overhead baseline).
    Empty,
    /// 0.5M records / 1 GB in the paper.
    Xs,
    /// 1.25M records / 2.5 GB.
    S,
    /// 2.5M records / 5 GB.
    M,
    /// 3.75M records / 7.5 GB.
    L,
    /// 5M records / 10 GB.
    Xl,
}

impl SizePreset {
    /// All presets in ascending order (excluding `Empty`).
    pub const SCALED: [SizePreset; 5] = [
        SizePreset::Xs,
        SizePreset::S,
        SizePreset::M,
        SizePreset::L,
        SizePreset::Xl,
    ];

    /// Paper-relative weight (XS = 2 ... XL = 20, i.e. 0.5M..5M records).
    pub fn weight(self) -> usize {
        match self {
            SizePreset::Empty => 0,
            SizePreset::Xs => 2,
            SizePreset::S => 5,
            SizePreset::M => 10,
            SizePreset::L => 15,
            SizePreset::Xl => 20,
        }
    }

    /// Record count at a given scale: `xs_records` is the record count of
    /// the smallest non-empty preset (XS). The paper used XS = 500_000.
    pub fn records(self, xs_records: usize) -> usize {
        self.weight() * xs_records / 2
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            SizePreset::Empty => "Empty",
            SizePreset::Xs => "XS",
            SizePreset::S => "S",
            SizePreset::M => "M",
            SizePreset::L => "L",
            SizePreset::Xl => "XL",
        }
    }
}

/// Build the classic Wisconsin 52-character string for `n`: seven
/// significant characters (base-26, A–Z) followed by 45 `x` fill chars.
pub fn wisconsin_string(n: usize) -> String {
    let mut sig = [b'A'; 7];
    let mut rest = n;
    for slot in (0..7).rev() {
        sig[slot] = b'A' + (rest % 26) as u8;
        rest /= 26;
    }
    let mut s = String::with_capacity(52);
    s.push_str(std::str::from_utf8(&sig).unwrap());
    for _ in 0..45 {
        s.push('x');
    }
    s
}

/// The cyclic `string4` value for record `i`.
pub fn string4(i: usize) -> &'static str {
    match i % 4 {
        0 => "AAAAxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx",
        1 => "HHHHxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx",
        2 => "OOOOxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx",
        _ => "VVVVxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx",
    }
}

/// Build one record. `unique1` is the permuted value for row `unique2`.
fn make_record(unique1: usize, unique2: usize, missing_every: usize) -> Record {
    let u1 = unique1 as i64;
    let mut r = Record::with_capacity(16);
    r.insert("unique1", u1);
    r.insert("unique2", unique2 as i64);
    r.insert("two", u1 % 2);
    r.insert("four", u1 % 4);
    r.insert("ten", u1 % 10);
    r.insert("twenty", u1 % 20);
    r.insert("onePercent", u1 % 100);
    if missing_every == 0 || !unique1.is_multiple_of(missing_every) {
        r.insert("tenPercent", u1 % 10);
    }
    r.insert("twentyPercent", u1 % 5);
    r.insert("fiftyPercent", u1 % 2);
    r.insert("unique3", u1);
    r.insert("evenOnePercent", (u1 % 100) * 2);
    r.insert("oddOnePercent", (u1 % 100) * 2 + 1);
    r.insert("stringu1", wisconsin_string(unique1));
    r.insert("stringu2", wisconsin_string(unique2));
    r.insert("string4", string4(unique2));
    r
}

/// Generate the dataset as records.
pub fn generate(config: &WisconsinConfig) -> Vec<Record> {
    let mut unique1: Vec<usize> = (0..config.num_records).collect();
    let mut rng = Rng::seed_from_u64(config.seed);
    rng.shuffle(&mut unique1);
    unique1
        .into_iter()
        .enumerate()
        .map(|(unique2, u1)| make_record(u1, unique2, config.missing_every))
        .collect()
}

/// Generate the dataset as newline-delimited JSON (the file format the
/// paper's loaders consumed).
pub fn generate_json(config: &WisconsinConfig) -> String {
    let records = generate(config);
    let mut out = String::with_capacity(records.len() * 400);
    for r in records {
        out.push_str(&to_json_string(&Value::Obj(r)));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn unique1_is_a_permutation() {
        let recs = generate(&WisconsinConfig::new(1000));
        let u1: HashSet<i64> = recs
            .iter()
            .map(|r| r.get_or_missing("unique1").as_i64().unwrap())
            .collect();
        assert_eq!(u1.len(), 1000);
        assert_eq!(*u1.iter().min().unwrap(), 0);
        assert_eq!(*u1.iter().max().unwrap(), 999);
        // And it is actually shuffled.
        let first_ten: Vec<i64> = recs[..10]
            .iter()
            .map(|r| r.get_or_missing("unique1").as_i64().unwrap())
            .collect();
        assert_ne!(first_ten, (0..10).collect::<Vec<i64>>());
    }

    #[test]
    fn unique2_is_sequential() {
        let recs = generate(&WisconsinConfig::new(100));
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.get_or_missing("unique2").as_i64(), Some(i as i64));
        }
    }

    #[test]
    fn modulo_attributes_consistent() {
        let recs = generate(&WisconsinConfig::new(500));
        for r in &recs {
            let u1 = r.get_or_missing("unique1").as_i64().unwrap();
            assert_eq!(r.get_or_missing("two").as_i64(), Some(u1 % 2));
            assert_eq!(r.get_or_missing("four").as_i64(), Some(u1 % 4));
            assert_eq!(r.get_or_missing("ten").as_i64(), Some(u1 % 10));
            assert_eq!(r.get_or_missing("twenty").as_i64(), Some(u1 % 20));
            assert_eq!(r.get_or_missing("onePercent").as_i64(), Some(u1 % 100));
            assert_eq!(r.get_or_missing("twentyPercent").as_i64(), Some(u1 % 5));
            assert_eq!(r.get_or_missing("unique3").as_i64(), Some(u1));
            assert_eq!(
                r.get_or_missing("oddOnePercent").as_i64(),
                Some((u1 % 100) * 2 + 1)
            );
        }
    }

    #[test]
    fn ten_percent_missing_rate() {
        let recs = generate(&WisconsinConfig::new(1000));
        let missing = recs.iter().filter(|r| !r.contains("tenPercent")).count();
        assert_eq!(missing, 100); // exactly unique1 % 10 == 0
        let none_missing = generate(&WisconsinConfig {
            missing_every: 0,
            ..WisconsinConfig::new(100)
        });
        assert!(none_missing.iter().all(|r| r.contains("tenPercent")));
    }

    #[test]
    fn strings_follow_template() {
        assert_eq!(wisconsin_string(0).len(), 52);
        assert!(wisconsin_string(0).starts_with("AAAAAAA"));
        assert!(wisconsin_string(1).starts_with("AAAAAAB"));
        assert!(wisconsin_string(26).starts_with("AAAAABA"));
        assert!(wisconsin_string(0).ends_with("xxx"));
        assert_eq!(string4(0).len(), 52);
        assert!(string4(1).starts_with("HHHH"));
        assert!(string4(5).starts_with("HHHH"));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = generate(&WisconsinConfig::new(200));
        let b = generate(&WisconsinConfig::new(200));
        assert_eq!(a, b);
    }

    #[test]
    fn presets_scale() {
        assert_eq!(SizePreset::Xs.records(20_000), 20_000);
        assert_eq!(SizePreset::S.records(20_000), 50_000);
        assert_eq!(SizePreset::M.records(20_000), 100_000);
        assert_eq!(SizePreset::L.records(20_000), 150_000);
        assert_eq!(SizePreset::Xl.records(20_000), 200_000);
        assert_eq!(SizePreset::Empty.records(20_000), 0);
        // Paper scale: XS = 0.5M.
        assert_eq!(SizePreset::Xl.records(500_000), 5_000_000);
    }

    #[test]
    fn json_roundtrip() {
        let json = generate_json(&WisconsinConfig::new(10));
        let vals = polyframe_datamodel::parse_json_stream(&json).unwrap();
        assert_eq!(vals.len(), 10);
        assert_eq!(vals[0].get_path("stringu1").as_str().unwrap().len(), 52);
    }
}
